// Cooperative request cancellation.
//
// A CancelToken is the one-way "stop working" signal a serving layer hands
// to a compile request: the owner arms it (explicitly or via a deadline)
// and the flow engine / interpreter poll it at safe points, unwinding with
// CancelledError. Polling sites never block and never check the clock more
// than once per poll, so tokens are cheap enough to consult from the
// interpreter's hot loop (every few thousand steps).
//
// Deep layers (the interpreter, analyses) do not take a token parameter;
// they poll the *ambient* token installed thread-locally by CancelScope.
// The flow engine installs the context's token around the prologue and
// around every branch-path job, so cancellation follows the work onto pool
// threads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "support/error.hpp"

namespace psaflow {

/// Thrown from a polling site once its token is cancelled. Derives from
/// Error so existing catch-all failure paths keep working, but serving
/// code catches it first to classify the failure as "cancelled" rather
/// than "crashed".
class CancelledError : public Error {
public:
    using Error::Error;
};

class CancelToken {
public:
    /// Explicit cancellation (idempotent, thread-safe).
    void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

    /// Arm a wall-clock deadline `budget` from now. A non-positive budget
    /// makes the token expire immediately.
    void set_deadline_after(std::chrono::nanoseconds budget) noexcept {
        set_deadline(std::chrono::steady_clock::now() + budget);
    }

    void set_deadline(std::chrono::steady_clock::time_point when) noexcept {
        deadline_ns_.store(when.time_since_epoch().count(),
                           std::memory_order_relaxed);
    }

    [[nodiscard]] bool has_deadline() const noexcept {
        return deadline_ns_.load(std::memory_order_relaxed) != 0;
    }

    /// True once cancel() was called or the deadline passed.
    [[nodiscard]] bool cancelled() const noexcept {
        if (cancelled_.load(std::memory_order_relaxed)) return true;
        const std::int64_t deadline =
            deadline_ns_.load(std::memory_order_relaxed);
        return deadline != 0 &&
               std::chrono::steady_clock::now().time_since_epoch().count() >=
                   deadline;
    }

    /// Why the token fired: "cancelled" or "deadline exceeded". Only
    /// meaningful after cancelled() returned true.
    [[nodiscard]] const char* reason() const noexcept {
        return cancelled_.load(std::memory_order_relaxed)
                   ? "cancelled"
                   : "deadline exceeded";
    }

private:
    std::atomic<bool> cancelled_{false};
    std::atomic<std::int64_t> deadline_ns_{0}; ///< steady clock; 0 = none
};

/// Throw CancelledError if `token` (nullable) has fired.
void poll_cancellation(const CancelToken* token);

/// The calling thread's ambient token (nullptr when none is installed).
[[nodiscard]] const CancelToken* current_cancel_token() noexcept;

/// Poll the ambient token. The interpreter's periodic check.
inline void poll_cancellation() { poll_cancellation(current_cancel_token()); }

/// RAII install of `token` as the calling thread's ambient token for the
/// scope's lifetime; restores the previous ambient token on exit. A null
/// token is allowed (the scope then shadows any outer token with "none").
class CancelScope {
public:
    explicit CancelScope(const CancelToken* token) noexcept;
    ~CancelScope();

    CancelScope(const CancelScope&) = delete;
    CancelScope& operator=(const CancelScope&) = delete;

private:
    const CancelToken* previous_;
};

} // namespace psaflow
