// Task tracing and metrics.
//
// The flow engine, the DSE engines and the interpreter report into a
// process-wide registry: per-task *spans* (name, category, thread, wall
// clock, work units) and named *counters* (interpreter steps, profile-cache
// hits/misses, ...). psaflowc exports the registry as JSON (--trace-out);
// the fig5/fig6 harnesses print a summary. Span collection can be disabled
// with PSAFLOW_TRACE=0; counters are always live (they are a handful of
// relaxed atomics per run, and tests assert on them).
//
// JSON schema (stable; see README "Tracing and the profile cache"):
//   {
//     "spans": [
//       {"name": str, "category": str, "thread": int,
//        "start_us": int, "duration_us": int, "work_units": num}
//     ],
//     "counters": {"<name>": int, ...}
//   }
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace psaflow::trace {

struct Span {
    std::string name;     ///< e.g. "task:identify-hotspot-loops"
    std::string category; ///< "flow" | "task" | "dse" | "interp" | ...
    std::uint64_t thread = 0;      ///< small per-thread ordinal, stable per run
    std::uint64_t start_us = 0;    ///< offset from registry creation/clear
    std::uint64_t duration_us = 0; ///< wall-clock microseconds
    double work_units = 0.0;       ///< domain cost (interp cost units, steps)
};

class Registry {
public:
    /// A private registry (empty, span clock starting now). The serving
    /// layer creates one per request so concurrent clients' metrics cannot
    /// bleed into each other; install it with ScopedRegistry.
    Registry();

    [[nodiscard]] static Registry& global();

    /// The calling thread's recording sink: the innermost ScopedRegistry,
    /// or global() when none is installed. Every producer (spans, flow/
    /// interp/cache counters) records through current(), so one request's
    /// work — including branch-path jobs, which re-install their parent's
    /// sink on the pool thread — lands in that request's registry.
    [[nodiscard]] static Registry& current();

    /// Span collection toggle (counters stay on). Initialised from the
    /// PSAFLOW_TRACE environment variable ("0" disables).
    void set_enabled(bool on);
    [[nodiscard]] bool enabled() const;

    /// Drop all spans and zero all counters; restarts the span clock.
    void clear();

    void add_span(Span span);
    [[nodiscard]] std::vector<Span> spans() const;

    /// Add `delta` to the named counter (creates it at zero).
    void count(const std::string& name, std::uint64_t delta);
    [[nodiscard]] std::uint64_t counter(const std::string& name) const;
    [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;

    /// Microseconds since creation/clear (the span time base).
    [[nodiscard]] std::uint64_t now_us() const;

    /// Serialise spans + counters using the schema above.
    [[nodiscard]] std::string to_json() const;

    /// Fold `other` into this registry: counters add, spans append with
    /// their start offsets re-based onto this registry's span clock. The
    /// batch driver and the daemon merge each request's private registry
    /// into global() so process-wide totals (--trace-out) still accumulate.
    void merge_from(const Registry& other);

private:
    mutable std::mutex mu_;
    bool enabled_ = true;
    std::int64_t epoch_ns_ = 0;
    std::vector<Span> spans_;
    std::map<std::string, std::uint64_t> counters_;
};

/// RAII span: measures construction-to-destruction wall clock and registers
/// the span on destruction (no-op when span collection is disabled).
class ScopedSpan {
public:
    ScopedSpan(std::string name, std::string category);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /// Attach a domain work measure (interpreter cost units, DSE points).
    void set_work_units(double units) { work_units_ = units; }

private:
    Registry* registry_ = nullptr; ///< sink captured at construction
    bool active_ = false;
    std::string name_;
    std::string category_;
    std::uint64_t start_us_ = 0;
    double work_units_ = 0.0;
};

/// RAII install of `registry` as the calling thread's recording sink
/// (Registry::current()); restores the previous sink on destruction.
class ScopedRegistry {
public:
    explicit ScopedRegistry(Registry& registry) noexcept;
    ~ScopedRegistry();

    ScopedRegistry(const ScopedRegistry&) = delete;
    ScopedRegistry& operator=(const ScopedRegistry&) = delete;

private:
    Registry* previous_;
};

} // namespace psaflow::trace
