// Task tracing and metrics.
//
// The flow engine, the DSE engines and the interpreter report into a
// process-wide registry: per-task *spans* (name, category, thread, wall
// clock, work units) and named *counters* (interpreter steps, profile-cache
// hits/misses, ...). psaflowc exports the registry as JSON (--trace-out);
// the fig5/fig6 harnesses print a summary. Span collection can be disabled
// with PSAFLOW_TRACE=0; counters are always live (they are a handful of
// relaxed atomics per run, and tests assert on them).
//
// Spans are *causal*: every span carries a process-unique id and the id of
// its parent — the span that was active on the recording thread when it
// opened. The active span follows work across threads: TaskGroup::run
// captures the submitter's active span, so a branch-path job running on a
// pool thread parents under the flow span that forked it, and every
// request's spans form one rooted tree. obs/chrome_trace renders that tree
// as Chrome trace-event JSON (`psaflowc --trace-format chrome`).
//
// JSON schema (version 2; see README "Observability"):
//   {
//     "schema_version": 2,
//     "spans": [
//       {"name": str, "category": str, "id": int, "parent": int,
//        "thread": int, "start_us": int, "duration_us": int,
//        "work_units": num}
//     ],
//     "counters": {"<name>": int, ...}
//   }
// Version history: v1 had no schema_version field and no id/parent.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace psaflow::trace {

struct Span {
    std::string name;     ///< e.g. "task:identify-hotspot-loops"
    std::string category; ///< "flow" | "task" | "dse" | "interp:tree" | "interp:vm" | ...
    std::uint64_t id = 0;          ///< process-unique span id (never 0)
    std::uint64_t parent = 0;      ///< enclosing span's id; 0 = a root
    std::uint64_t thread = 0;      ///< small per-thread ordinal, stable per run
    std::uint64_t start_us = 0;    ///< offset from registry creation/clear
    std::uint64_t duration_us = 0; ///< wall-clock microseconds
    double work_units = 0.0;       ///< domain cost (interp cost units, steps)
};

class Registry {
public:
    /// A private registry (empty, span clock starting now). The serving
    /// layer creates one per request so concurrent clients' metrics cannot
    /// bleed into each other; install it with ScopedRegistry.
    Registry();

    [[nodiscard]] static Registry& global();

    /// The calling thread's recording sink: the innermost ScopedRegistry,
    /// or global() when none is installed. Every producer (spans, flow/
    /// interp/cache counters) records through current(), so one request's
    /// work — including branch-path jobs, which re-install their parent's
    /// sink on the pool thread — lands in that request's registry.
    [[nodiscard]] static Registry& current();

    /// Span collection toggle (counters stay on). Initialised from the
    /// PSAFLOW_TRACE environment variable ("0" disables).
    void set_enabled(bool on);
    [[nodiscard]] bool enabled() const;

    /// Drop all spans and zero all counters; restarts the span clock.
    void clear();

    void add_span(Span span);
    [[nodiscard]] std::vector<Span> spans() const;

    /// Add `delta` to the named counter (creates it at zero).
    void count(const std::string& name, std::uint64_t delta);
    [[nodiscard]] std::uint64_t counter(const std::string& name) const;
    [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;

    /// Microseconds since creation/clear (the span time base).
    [[nodiscard]] std::uint64_t now_us() const;

    /// Serialise spans + counters using the schema above.
    [[nodiscard]] std::string to_json() const;

    /// Fold `other` into this registry: counters add, spans append with
    /// their start offsets re-based onto this registry's span clock and
    /// their thread ordinals remapped onto fresh tracks (two registries may
    /// have recorded unrelated work from the same pool threads; without the
    /// remap a merged Chrome trace would interleave them on one track).
    /// Within one process span ids are unique, so parent links usually
    /// survive unchanged; but a cross-process merge (two shards both count
    /// ids from 1) can collide, so colliding incoming ids are remapped onto
    /// fresh process-unique ids, with parent links that referenced a
    /// remapped id rewritten to follow it. A parent id that exists only in
    /// this registry is a cross-registry link and survives unchanged. The
    /// batch driver and the daemon merge each request's private registry
    /// into global() so process-wide totals (--trace-out) still accumulate.
    void merge_from(const Registry& other);

private:
    mutable std::mutex mu_;
    bool enabled_ = true;
    std::int64_t epoch_ns_ = 0;
    std::uint64_t max_thread_ = 0; ///< highest track ordinal present
    std::vector<Span> spans_;
    std::map<std::string, std::uint64_t> counters_;
};

/// The id of the span currently open on the calling thread (0 when none):
/// the parent a newly opened span will link to. Capture it before handing
/// work to another thread and restore it there with ScopedParent.
[[nodiscard]] std::uint64_t current_span_id();

/// A process-unique span id for spans that ride the wire (cross-process
/// trace propagation): 32 bits of per-process salt above a 20-bit
/// sequence, with bit 52 set. Never 0, exact in a JSON double (< 2^53),
/// and unlike the sequential ids ScopedSpan mints — which every process
/// counts from 1 — two processes can only collide on a 2^-32 salt
/// coincidence. The serving layer uses these for the synthetic hop spans
/// it injects into responses (serve/wire_trace.hpp).
[[nodiscard]] std::uint64_t wire_span_id();

/// The distributed trace id adopted by the calling thread (0 = none).
/// The serving layer installs the request's trace id (ScopedTraceId)
/// around traced work so deeper layers — e.g. the remote-CAS client —
/// can forward it onward without threading it through every signature.
[[nodiscard]] std::uint64_t current_trace_id();

/// RAII install of `trace_id` as the calling thread's distributed trace
/// id (current_trace_id()); restores the previous id on destruction.
class ScopedTraceId {
public:
    explicit ScopedTraceId(std::uint64_t trace_id) noexcept;
    ~ScopedTraceId();

    ScopedTraceId(const ScopedTraceId&) = delete;
    ScopedTraceId& operator=(const ScopedTraceId&) = delete;

private:
    std::uint64_t previous_;
};

/// RAII span: measures construction-to-destruction wall clock and registers
/// the span on destruction (no-op when span collection is disabled). While
/// alive it is the calling thread's active span (current_span_id()).
class ScopedSpan {
public:
    ScopedSpan(std::string name, std::string category);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /// Attach a domain work measure (interpreter cost units, DSE points).
    void set_work_units(double units) { work_units_ = units; }

    /// This span's process-unique id (0 when span collection is disabled).
    [[nodiscard]] std::uint64_t id() const { return id_; }

private:
    Registry* registry_ = nullptr; ///< sink captured at construction
    bool active_ = false;
    std::string name_;
    std::string category_;
    std::uint64_t id_ = 0;
    std::uint64_t parent_ = 0;
    std::uint64_t start_us_ = 0;
    double work_units_ = 0.0;
};

/// RAII install of `registry` as the calling thread's recording sink
/// (Registry::current()); restores the previous sink on destruction.
class ScopedRegistry {
public:
    explicit ScopedRegistry(Registry& registry) noexcept;
    ~ScopedRegistry();

    ScopedRegistry(const ScopedRegistry&) = delete;
    ScopedRegistry& operator=(const ScopedRegistry&) = delete;

private:
    Registry* previous_;
};

/// RAII install of `parent_span` as the calling thread's active span:
/// spans opened underneath link to it. Used when work hops threads (the
/// thread pool installs the submitter's active span around every job).
class ScopedParent {
public:
    explicit ScopedParent(std::uint64_t parent_span) noexcept;
    ~ScopedParent();

    ScopedParent(const ScopedParent&) = delete;
    ScopedParent& operator=(const ScopedParent&) = delete;

private:
    std::uint64_t previous_;
};

} // namespace psaflow::trace
