#include "support/string_util.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace psaflow {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view trim(std::string_view text) {
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
    return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

int count_loc(std::string_view text) {
    int loc = 0;
    for (const auto& line : split(text, '\n')) {
        const std::string_view body = trim(line);
        if (body.empty()) continue;
        if (starts_with(body, "//")) continue; // comment-only line
        ++loc;
    }
    return loc;
}

std::string indent_lines(std::string_view text, int spaces) {
    const std::string pad(static_cast<std::size_t>(spaces), ' ');
    std::string out;
    auto lines = split(text, '\n');
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (!lines[i].empty()) out += pad;
        out += lines[i];
        if (i + 1 < lines.size()) out += '\n';
    }
    return out;
}

std::string format_compact(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", digits, value);
    return buf;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string text, std::string_view from,
                        std::string_view to) {
    if (from.empty()) return text;
    std::size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

std::optional<double> parse_double(std::string_view text) {
    const std::string buf(trim(text));
    if (buf.empty()) return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) return std::nullopt;
    if (errno == ERANGE || !std::isfinite(value)) return std::nullopt;
    return value;
}

std::optional<long long> parse_int(std::string_view text) {
    const std::string buf(trim(text));
    if (buf.empty()) return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(buf.c_str(), &end, 10);
    if (end != buf.c_str() + buf.size()) return std::nullopt;
    if (errno == ERANGE) return std::nullopt;
    return value;
}

} // namespace psaflow
