#include "support/string_util.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace psaflow {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view trim(std::string_view text) {
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
    return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

int count_loc(std::string_view text) {
    int loc = 0;
    for (const auto& line : split(text, '\n')) {
        const std::string_view body = trim(line);
        if (body.empty()) continue;
        if (starts_with(body, "//")) continue; // comment-only line
        ++loc;
    }
    return loc;
}

std::string indent_lines(std::string_view text, int spaces) {
    const std::string pad(static_cast<std::size_t>(spaces), ' ');
    std::string out;
    auto lines = split(text, '\n');
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (!lines[i].empty()) out += pad;
        out += lines[i];
        if (i + 1 < lines.size()) out += '\n';
    }
    return out;
}

std::string format_compact(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", digits, value);
    return buf;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string text, std::string_view from,
                        std::string_view to) {
    if (from.empty()) return text;
    std::size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

std::optional<double> parse_double(std::string_view text) {
    const std::string buf(trim(text));
    if (buf.empty()) return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) return std::nullopt;
    if (errno == ERANGE || !std::isfinite(value)) return std::nullopt;
    return value;
}

std::optional<long long> parse_int(std::string_view text) {
    const std::string buf(trim(text));
    if (buf.empty()) return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(buf.c_str(), &end, 10);
    if (end != buf.c_str() + buf.size()) return std::nullopt;
    if (errno == ERANGE) return std::nullopt;
    return value;
}

namespace {
constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int base64_index(char c) {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
}
} // namespace

std::string base64_encode(std::string_view bytes) {
    std::string out;
    out.reserve((bytes.size() + 2) / 3 * 4);
    std::size_t i = 0;
    for (; i + 3 <= bytes.size(); i += 3) {
        const std::uint32_t n =
            static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
                << 16 |
            static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes[i + 1]))
                << 8 |
            static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes[i + 2]));
        out.push_back(kBase64Alphabet[(n >> 18) & 63]);
        out.push_back(kBase64Alphabet[(n >> 12) & 63]);
        out.push_back(kBase64Alphabet[(n >> 6) & 63]);
        out.push_back(kBase64Alphabet[n & 63]);
    }
    const std::size_t rest = bytes.size() - i;
    if (rest == 1) {
        const std::uint32_t n =
            static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
            << 16;
        out.push_back(kBase64Alphabet[(n >> 18) & 63]);
        out.push_back(kBase64Alphabet[(n >> 12) & 63]);
        out.push_back('=');
        out.push_back('=');
    } else if (rest == 2) {
        const std::uint32_t n =
            static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
                << 16 |
            static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes[i + 1]))
                << 8;
        out.push_back(kBase64Alphabet[(n >> 18) & 63]);
        out.push_back(kBase64Alphabet[(n >> 12) & 63]);
        out.push_back(kBase64Alphabet[(n >> 6) & 63]);
        out.push_back('=');
    }
    return out;
}

std::optional<std::string> base64_decode(std::string_view text) {
    if (text.size() % 4 != 0) return std::nullopt;
    std::string out;
    out.reserve(text.size() / 4 * 3);
    for (std::size_t i = 0; i < text.size(); i += 4) {
        int vals[4];
        int pad = 0;
        for (int j = 0; j < 4; ++j) {
            const char c = text[i + j];
            if (c == '=') {
                // Padding is only legal in the last group's final positions.
                if (i + 4 != text.size() || j < 2) return std::nullopt;
                vals[j] = 0;
                ++pad;
            } else {
                if (pad > 0) return std::nullopt; // data after '='
                vals[j] = base64_index(c);
                if (vals[j] < 0) return std::nullopt;
            }
        }
        const std::uint32_t n = static_cast<std::uint32_t>(vals[0]) << 18 |
                                static_cast<std::uint32_t>(vals[1]) << 12 |
                                static_cast<std::uint32_t>(vals[2]) << 6 |
                                static_cast<std::uint32_t>(vals[3]);
        out.push_back(static_cast<char>((n >> 16) & 0xff));
        if (pad < 2) out.push_back(static_cast<char>((n >> 8) & 0xff));
        if (pad < 1) out.push_back(static_cast<char>(n & 0xff));
    }
    return out;
}

std::string hex_u64(std::uint64_t value) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kHex[value & 0xf];
        value >>= 4;
    }
    return out;
}

std::optional<std::uint64_t> parse_hex_u64(std::string_view text) {
    if (text.size() != 16) return std::nullopt;
    std::uint64_t value = 0;
    for (char c : text) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else return std::nullopt;
        value = value << 4 | static_cast<std::uint64_t>(digit);
    }
    return value;
}

} // namespace psaflow
