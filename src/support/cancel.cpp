#include "support/cancel.hpp"

namespace psaflow {

namespace {
thread_local const CancelToken* tl_token = nullptr;
} // namespace

void poll_cancellation(const CancelToken* token) {
    if (token != nullptr && token->cancelled())
        throw CancelledError(std::string("request ") + token->reason());
}

const CancelToken* current_cancel_token() noexcept { return tl_token; }

CancelScope::CancelScope(const CancelToken* token) noexcept
    : previous_(tl_token) {
    tl_token = token;
}

CancelScope::~CancelScope() { tl_token = previous_; }

} // namespace psaflow
