// Source positions for HLC source text. Every token and AST node carries one
// so diagnostics, query results and instrumentation edits can be reported in
// terms of the user's original source.
#pragma once

#include <cstdint>
#include <string>

namespace psaflow {

/// A (line, column) position in an HLC source buffer. Lines and columns are
/// 1-based; a default-constructed location (0,0) means "unknown".
struct SrcLoc {
    std::uint32_t line = 0;
    std::uint32_t col  = 0;

    [[nodiscard]] bool known() const { return line != 0; }

    friend bool operator==(const SrcLoc&, const SrcLoc&) = default;
};

/// Render "line:col" (or "?" when unknown) for diagnostics.
[[nodiscard]] inline std::string to_string(SrcLoc loc) {
    if (!loc.known()) return "?";
    return std::to_string(loc.line) + ":" + std::to_string(loc.col);
}

} // namespace psaflow
