#include "support/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "support/trace.hpp"

namespace psaflow {

int ThreadPool::default_jobs() {
    if (const char* env = std::getenv("PSAFLOW_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1) return static_cast<int>(std::min(parsed, 256L));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool(default_jobs());
    return pool;
}

ThreadPool::ThreadPool(int threads) {
    if (threads <= 0) threads = default_jobs();
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
    std::vector<std::thread> workers;
    {
        std::lock_guard lock(mu_);
        stop_ = true;
        // Claim the workers under the lock so concurrent shutdown calls
        // cannot double-join.
        workers.swap(workers_);
    }
    cv_.notify_all();
    for (std::thread& w : workers) w.join();
    // Belt and braces: a submitter racing the stop flag may have pushed
    // after the workers drained on their way out — run the leftovers here
    // so no job is silently dropped.
    while (try_run_one()) {
    }
}

bool ThreadPool::stopped() const {
    std::lock_guard lock(mu_);
    return stop_;
}

void ThreadPool::worker_loop() {
    for (;;) {
        Job job;
        {
            std::unique_lock lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty()) return;
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job.fn();
    }
}

bool ThreadPool::try_run_one() {
    Job job;
    {
        std::lock_guard lock(mu_);
        if (queue_.empty()) return false;
        job = std::move(queue_.front());
        queue_.pop_front();
    }
    job.fn();
    return true;
}

void TaskGroup::run(std::function<void()> fn) {
    std::size_t index;
    {
        std::lock_guard lock(mu_);
        index = submitted_++;
    }
    // Capture the submitter's trace context: a job may run on any pool
    // thread (or inline during a helping wait), and it must record into the
    // same registry — and parent its spans under the same active span — as
    // the code that forked it. This is what keeps one request's spans a
    // single rooted tree across fork/join.
    trace::Registry* sink = &trace::Registry::current();
    const std::uint64_t parent_span = trace::current_span_id();
    std::function<void()> wrapped =
        [this, index, sink, parent_span, fn = std::move(fn)]() noexcept {
            trace::ScopedRegistry registry_scope(*sink);
            trace::ScopedParent parent_scope(parent_span);
            std::exception_ptr error;
            try {
                fn();
            } catch (...) {
                error = std::current_exception();
            }
            finish_one(index, error);
        };
    {
        std::unique_lock lock(pool_.mu_);
        if (!pool_.stop_) {
            pool_.queue_.push_back(ThreadPool::Job{std::move(wrapped)});
            lock.unlock();
            pool_.cv_.notify_one();
            return;
        }
    }
    // The pool is shutting down (or gone quiet): run the job inline so it
    // is neither dropped nor left to deadlock a wait() on a dead pool.
    wrapped();
}

void TaskGroup::finish_one(std::size_t index,
                           std::exception_ptr error) noexcept {
    std::lock_guard lock(mu_);
    if (error != nullptr && index < first_error_index_) {
        first_error_index_ = index;
        first_error_ = error;
    }
    ++completed_;
    done_cv_.notify_all();
}

void TaskGroup::wait_no_throw() noexcept {
    for (;;) {
        {
            std::unique_lock lock(mu_);
            if (completed_ == submitted_) return;
        }
        if (pool_.try_run_one()) continue;
        // Queue drained but some of our jobs still run on workers: sleep
        // until one finishes (or a nested job refills the queue — finish
        // notifications wake us either way, and we re-poll the queue).
        std::unique_lock lock(mu_);
        if (completed_ == submitted_) return;
        done_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
}

void TaskGroup::wait() {
    wait_no_throw();
    std::lock_guard lock(mu_);
    if (first_error_ != nullptr) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        first_error_index_ = SIZE_MAX;
        std::rethrow_exception(error);
    }
}

} // namespace psaflow
