#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace psaflow::json {

Value Value::null() { return Value{}; }

Value Value::boolean(bool v) {
    Value out;
    out.kind = Kind::Bool;
    out.bool_value = v;
    return out;
}

Value Value::number(double v) {
    Value out;
    out.kind = Kind::Number;
    out.number_value = v;
    return out;
}

Value Value::string(std::string v) {
    Value out;
    out.kind = Kind::String;
    out.string_value = std::move(v);
    return out;
}

Value Value::array() {
    Value out;
    out.kind = Kind::Array;
    return out;
}

Value Value::object() {
    Value out;
    out.kind = Kind::Object;
    return out;
}

Value& Value::set(std::string key, Value v) {
    ensure(kind == Kind::Object, "json::Value::set on a non-object");
    for (auto& [name, value] : members) {
        if (name == key) {
            value = std::move(v);
            return *this;
        }
    }
    members.emplace_back(std::move(key), std::move(v));
    return *this;
}

Value& Value::push(Value v) {
    ensure(kind == Kind::Array, "json::Value::push on a non-array");
    elements.push_back(std::move(v));
    return *this;
}

const Value* Value::find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [name, value] : members) {
        if (name == key) return &value;
    }
    return nullptr;
}

std::string Value::string_or(std::string def) const {
    return kind == Kind::String ? string_value : std::move(def);
}

double Value::number_or(double def) const {
    return kind == Kind::Number ? number_value : def;
}

bool Value::bool_or(bool def) const {
    return kind == Kind::Bool ? bool_value : def;
}

namespace {

class Parser {
public:
    Parser(std::string_view text, std::string* error)
        : text_(text), error_(error) {}

    std::optional<Value> run() {
        skip_ws();
        Value out;
        if (!parse_value(out)) return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) {
            set_error("trailing characters after JSON document");
            return std::nullopt;
        }
        return out;
    }

private:
    void set_error(const std::string& message) {
        if (error_ != nullptr && error_->empty())
            *error_ = message + " at byte " + std::to_string(pos_);
    }

    [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const { return text_[pos_]; }

    void skip_ws() {
        while (!at_end() && (peek() == ' ' || peek() == '\t' ||
                             peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    bool expect(char c) {
        if (at_end() || peek() != c) {
            set_error(std::string("expected '") + c + "'");
            return false;
        }
        ++pos_;
        return true;
    }

    bool parse_value(Value& out) {
        if (at_end()) {
            set_error("unexpected end of input");
            return false;
        }
        switch (peek()) {
            case '{': return parse_object(out);
            case '[': return parse_array(out);
            case '"': {
                out.kind = Value::Kind::String;
                return parse_string(out.string_value);
            }
            case 't': return parse_literal("true", out, Value::Kind::Bool,
                                           /*bool_value=*/true);
            case 'f': return parse_literal("false", out, Value::Kind::Bool,
                                           /*bool_value=*/false);
            case 'n': return parse_literal("null", out, Value::Kind::Null,
                                           /*bool_value=*/false);
            default: return parse_number(out);
        }
    }

    bool parse_literal(std::string_view word, Value& out, Value::Kind kind,
                       bool bool_value) {
        if (text_.substr(pos_, word.size()) != word) {
            set_error("invalid literal");
            return false;
        }
        pos_ += word.size();
        out.kind = kind;
        out.bool_value = bool_value;
        return true;
    }

    bool parse_number(Value& out) {
        const std::size_t start = pos_;
        if (!at_end() && peek() == '-') ++pos_;
        while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                             peek() == '.' || peek() == 'e' || peek() == 'E' ||
                             peek() == '+' || peek() == '-'))
            ++pos_;
        if (pos_ == start) {
            set_error("invalid value");
            return false;
        }
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            pos_ = start;
            set_error("invalid number");
            return false;
        }
        out.kind = Value::Kind::Number;
        out.number_value = value;
        return true;
    }

    bool parse_string(std::string& out) {
        if (!expect('"')) return false;
        out.clear();
        while (true) {
            if (at_end()) {
                set_error("unterminated string");
                return false;
            }
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (at_end()) {
                set_error("unterminated escape");
                return false;
            }
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        if (at_end()) {
                            set_error("truncated \\u escape");
                            return false;
                        }
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else {
                            set_error("invalid \\u escape");
                            return false;
                        }
                    }
                    // Minimal UTF-8 encode of the BMP code point.
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(
                            static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                }
                default: set_error("invalid escape"); return false;
            }
        }
    }

    bool parse_array(Value& out) {
        if (!expect('[')) return false;
        out.kind = Value::Kind::Array;
        skip_ws();
        if (!at_end() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Value element;
            skip_ws();
            if (!parse_value(element)) return false;
            out.elements.push_back(std::move(element));
            skip_ws();
            if (at_end()) {
                set_error("unterminated array");
                return false;
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    bool parse_object(Value& out) {
        if (!expect('{')) return false;
        out.kind = Value::Kind::Object;
        skip_ws();
        if (!at_end() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            std::string key;
            if (!parse_string(key)) return false;
            skip_ws();
            if (!expect(':')) return false;
            skip_ws();
            Value value;
            if (!parse_value(value)) return false;
            out.members.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (at_end()) {
                set_error("unterminated object");
                return false;
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            return expect('}');
        }
    }

    std::string_view text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
    if (error != nullptr) error->clear();
    return Parser(text, error).run();
}

namespace {

void dump_string(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void dump_number(std::string& out, double v) {
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        out += std::to_string(static_cast<long long>(v));
        return;
    }
    std::ostringstream os;
    os.precision(17);
    os << v;
    out += os.str();
}

void dump_value(std::string& out, const Value& value) {
    switch (value.kind) {
        case Value::Kind::Null: out += "null"; break;
        case Value::Kind::Bool: out += value.bool_value ? "true" : "false"; break;
        case Value::Kind::Number: dump_number(out, value.number_value); break;
        case Value::Kind::String: dump_string(out, value.string_value); break;
        case Value::Kind::Array: {
            out += '[';
            for (std::size_t i = 0; i < value.elements.size(); ++i) {
                if (i > 0) out += ',';
                dump_value(out, value.elements[i]);
            }
            out += ']';
            break;
        }
        case Value::Kind::Object: {
            out += '{';
            for (std::size_t i = 0; i < value.members.size(); ++i) {
                if (i > 0) out += ',';
                dump_string(out, value.members[i].first);
                out += ':';
                dump_value(out, value.members[i].second);
            }
            out += '}';
            break;
        }
    }
}

} // namespace

std::string dump(const Value& value) {
    std::string out;
    dump_value(out, value);
    return out;
}

} // namespace psaflow::json
