// Small string helpers used by the printer, report tables and code emitters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace psaflow {

/// Split `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Join `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Number of non-blank, non-comment lines in `text` — the LOC metric used
/// by Table I. A line is blank if it contains only whitespace; lines whose
/// first token is `//` are comments.
[[nodiscard]] int count_loc(std::string_view text);

/// Indent every non-empty line of `text` by `spaces` spaces.
[[nodiscard]] std::string indent_lines(std::string_view text, int spaces);

/// Render `value` with `digits` significant decimal digits, trimming
/// trailing zeros ("12.5", "0.0042", "751").
[[nodiscard]] std::string format_compact(double value, int digits = 4);

/// True if `text` starts with / ends with the given prefix or suffix.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Replace all occurrences of `from` with `to` in `text`.
[[nodiscard]] std::string replace_all(std::string text, std::string_view from,
                                      std::string_view to);

/// Checked numeric parsing for CLI flags: the whole (trimmed) string must
/// be consumed and the value must be finite / in range, else nullopt.
/// Unlike std::stod/stoll these never throw.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);
[[nodiscard]] std::optional<long long> parse_int(std::string_view text);

/// Standard base64 (RFC 4648, with padding): how binary CAS payloads ride
/// inside JSON wire frames. decode returns nullopt on any non-base64
/// input — a remote peer's bytes are untrusted.
[[nodiscard]] std::string base64_encode(std::string_view bytes);
[[nodiscard]] std::optional<std::string> base64_decode(std::string_view text);

/// Fixed-width lowercase hex for 64-bit CAS keys ("00c3a2..."), and its
/// strict inverse (exactly 16 hex digits, else nullopt).
[[nodiscard]] std::string hex_u64(std::uint64_t value);
[[nodiscard]] std::optional<std::uint64_t> parse_hex_u64(std::string_view text);

} // namespace psaflow
