// A small fixed-size thread-pool executor with cooperative fork/join.
//
// The flow engine runs independent design-flow branches as parallel jobs.
// Branches nest (target branch A forks into device branches B/C), so a job
// waiting for its children must not park a pool thread: TaskGroup::wait()
// *helps* — it pops and executes pending jobs from the shared queue until
// its own group has drained. This keeps nested fork/join deadlock-free with
// any pool size, including a pool of one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psaflow {

class ThreadPool {
public:
    /// A pool with `threads` workers. `threads == 0` means default_jobs().
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Worker count configured for this process: the PSAFLOW_JOBS
    /// environment variable if set (clamped to [1, 256]), otherwise
    /// std::thread::hardware_concurrency().
    [[nodiscard]] static int default_jobs();

    /// The process-wide pool, created on first use with default_jobs()
    /// workers. Callers that want strictly sequential execution simply do
    /// not submit to it.
    [[nodiscard]] static ThreadPool& shared();

    [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

    /// Stop the workers and drain the queue. Safe to call concurrently with
    /// TaskGroup::run: jobs enqueued before the stop flag is visible are
    /// executed by the exiting workers or by the drain below, and jobs
    /// submitted after it run inline on the submitting thread — no job is
    /// ever dropped and no waiter can deadlock on a dead pool. Idempotent;
    /// the destructor calls it.
    void shutdown();

    /// True once shutdown has begun; submissions now run inline.
    [[nodiscard]] bool stopped() const;

private:
    friend class TaskGroup;

    struct Job {
        std::function<void()> fn;
    };

    void worker_loop();
    /// Pop one job if available; returns false when the queue is empty.
    bool try_run_one();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Job> queue_;
    std::vector<std::thread> workers_;
    bool stop_ = false;
};

/// A batch of jobs submitted to a pool; `wait()` blocks (helping) until all
/// jobs of this group have finished. Exceptions thrown by jobs are captured;
/// the first one (in submission order) is rethrown from wait(). Each job
/// inherits the submitter's trace context (recording sink and active span),
/// so spans recorded inside a job parent under the span that forked it.
class TaskGroup {
public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    ~TaskGroup() {
        // A group must not outlive its pending jobs (they capture `this`).
        wait_no_throw();
    }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueue `fn` on the pool.
    void run(std::function<void()> fn);

    /// Help execute queued jobs until every job of this group is done, then
    /// rethrow the first captured exception, if any.
    void wait();

private:
    void wait_no_throw() noexcept;
    void finish_one(std::size_t index, std::exception_ptr error) noexcept;

    ThreadPool& pool_;
    std::mutex mu_;
    std::condition_variable done_cv_;
    std::size_t submitted_ = 0;
    std::size_t completed_ = 0;
    /// Lowest submission index that failed, and its exception.
    std::size_t first_error_index_ = SIZE_MAX;
    std::exception_ptr first_error_;
};

} // namespace psaflow
