#include "support/cli.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "support/string_util.hpp"

namespace psaflow::cli {

OptionParser::OptionParser(std::string program,
                           std::vector<std::string> synopsis)
    : program_(std::move(program)), synopsis_(std::move(synopsis)) {}

void OptionParser::flag(const std::string& name, const std::string& help,
                        bool* out) {
    Option opt;
    opt.name = name;
    opt.help = help;
    opt.takes_value = false;
    opt.apply = [out](const char*) -> std::optional<std::string> {
        *out = true;
        return std::nullopt;
    };
    options_.push_back(std::move(opt));
}

void OptionParser::str(const std::string& name, const std::string& value_name,
                       const std::string& help, std::string* out) {
    Option opt;
    opt.name = name;
    opt.value_name = value_name;
    opt.help = help;
    opt.apply = [out](const char* raw) -> std::optional<std::string> {
        *out = raw;
        return std::nullopt;
    };
    options_.push_back(std::move(opt));
}

void OptionParser::multi(const std::string& name,
                         const std::string& value_name,
                         const std::string& help,
                         std::vector<std::string>* out) {
    Option opt;
    opt.name = name;
    opt.value_name = value_name;
    opt.help = help;
    opt.apply = [out](const char* raw) -> std::optional<std::string> {
        out->emplace_back(raw);
        return std::nullopt;
    };
    options_.push_back(std::move(opt));
}

void OptionParser::integer(const std::string& name,
                           const std::string& value_name,
                           const std::string& help, long long* out,
                           std::optional<long long> min,
                           std::optional<long long> max) {
    Option opt;
    opt.name = name;
    opt.value_name = value_name;
    opt.help = help;
    opt.apply = [name, out, min,
                 max](const char* raw) -> std::optional<std::string> {
        const auto value = parse_int(raw);
        if (!value)
            return "invalid integer '" + std::string(raw) + "' for " + name;
        if (min && *value < *min)
            return name + " must be >= " + std::to_string(*min);
        if (max && *value > *max)
            return name + " must be <= " + std::to_string(*max);
        *out = *value;
        return std::nullopt;
    };
    options_.push_back(std::move(opt));
}

void OptionParser::real(const std::string& name, const std::string& value_name,
                        const std::string& help, double* out) {
    Option opt;
    opt.name = name;
    opt.value_name = value_name;
    opt.help = help;
    opt.apply = [name, out](const char* raw) -> std::optional<std::string> {
        const auto value = parse_double(raw);
        if (!value)
            return "invalid number '" + std::string(raw) + "' for " + name;
        *out = *value;
        return std::nullopt;
    };
    options_.push_back(std::move(opt));
}

bool OptionParser::fail(const std::string& message) const {
    std::cerr << message << "\n" << usage();
    return false;
}

bool OptionParser::parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cerr << usage();
            return false;
        }
        const Option* match = nullptr;
        for (const Option& opt : options_) {
            if (opt.name == arg) {
                match = &opt;
                break;
            }
        }
        if (match == nullptr) return fail("unknown option '" + arg + "'");
        const char* value = nullptr;
        if (match->takes_value) {
            if (i + 1 >= argc) return fail("missing value for " + arg);
            value = argv[++i];
        }
        if (auto error = match->apply(value)) return fail(*error);
    }
    return true;
}

std::string OptionParser::usage() const {
    std::ostringstream os;
    const std::string prefix = "usage: " + program_ + " ";
    const std::string cont(prefix.size() - program_.size() - 1, ' ');
    if (synopsis_.empty()) {
        os << prefix << "[options]\n";
    } else {
        for (std::size_t i = 0; i < synopsis_.size(); ++i)
            os << (i == 0 ? prefix : cont + program_ + " ") << synopsis_[i]
               << "\n";
    }
    std::size_t width = 0;
    for (const Option& opt : options_) {
        std::size_t w = opt.name.size();
        if (!opt.value_name.empty()) w += 1 + opt.value_name.size();
        width = std::max(width, w);
    }
    os << "options:\n";
    for (const Option& opt : options_) {
        std::string left = opt.name;
        if (!opt.value_name.empty()) left += " " + opt.value_name;
        os << "  " << left << std::string(width - left.size() + 2, ' ')
           << opt.help << "\n";
    }
    return std::move(os).str();
}

void OptionParser::choice(const std::string& name,
                          const std::string& value_name,
                          const std::string& help, std::string* out,
                          std::vector<std::string> allowed) {
    Option opt;
    opt.name = name;
    opt.value_name = value_name;
    opt.help = help;
    opt.apply = [name, out, allowed = std::move(allowed)](
                    const char* raw) -> std::optional<std::string> {
        if (std::find(allowed.begin(), allowed.end(), raw) ==
            allowed.end()) {
            std::string joined;
            for (const std::string& a : allowed) {
                if (!joined.empty()) joined += "|";
                joined += a;
            }
            return name + " must be one of: " + joined;
        }
        *out = raw;
        return std::nullopt;
    };
    options_.push_back(std::move(opt));
}

void add_flow_flags(OptionParser& parser, FlowFlags& flags) {
    parser.integer("--jobs", "<n>",
                   "worker threads for branch paths (0 = PSAFLOW_JOBS / "
                   "hardware)",
                   &flags.jobs, /*min=*/0);
    parser.str("--trace-out", "<file.json>",
               "write the task trace registry as JSON", &flags.trace_out);
    parser.str("--cache-dir", "<dir>",
               "persistent content-addressed cache root (default: "
               "PSAFLOW_CACHE_DIR; unset disables disk caching)",
               &flags.cache_dir);
    parser.integer("--cache-max-mb", "<mb>",
                   "disk cache size cap in MiB (0 = PSAFLOW_CACHE_MAX_MB / "
                   "256)",
                   &flags.cache_max_mb, /*min=*/0);
    parser.choice("--interp", "<engine>",
                  "interpreter engine: tree|vm (default: PSAFLOW_INTERP, "
                  "else vm)",
                  &flags.interp, {"tree", "vm"});
}

} // namespace psaflow::cli
