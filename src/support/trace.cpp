#include "support/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

namespace psaflow::trace {

namespace {

std::int64_t steady_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Small stable ordinal for the calling thread (1, 2, 3, ... in first-use
/// order) — friendlier in reports than std::thread::id hashes.
std::uint64_t thread_ordinal() {
    static std::atomic<std::uint64_t> next{1};
    thread_local std::uint64_t mine = next.fetch_add(1);
    return mine;
}

/// Process-unique span id. Ids being unique across every registry is what
/// lets merge_from keep parent links intact without a remap pass.
std::uint64_t next_span_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1);
}

/// JSON string escaping for span names (quotes, backslashes, control chars).
void append_escaped(std::string& out, const std::string& text) {
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

std::string format_work_units(double units) {
    // Counters-as-doubles: print integral values without an exponent, keep
    // the rest in shortest-round-trip form.
    std::ostringstream os;
    if (std::isfinite(units) && units == std::floor(units) &&
        std::abs(units) < 1e15) {
        os << static_cast<long long>(units);
    } else {
        os.precision(17);
        os << units;
    }
    return os.str();
}

thread_local Registry* tl_registry = nullptr;
thread_local std::uint64_t tl_active_span = 0;
thread_local std::uint64_t tl_trace_id = 0;

} // namespace

Registry::Registry() {
    epoch_ns_ = steady_ns();
    if (const char* env = std::getenv("PSAFLOW_TRACE"))
        enabled_ = std::string(env) != "0";
}

Registry& Registry::global() {
    static Registry registry;
    return registry;
}

Registry& Registry::current() {
    return tl_registry != nullptr ? *tl_registry : global();
}

ScopedRegistry::ScopedRegistry(Registry& registry) noexcept
    : previous_(tl_registry) {
    tl_registry = &registry;
}

ScopedRegistry::~ScopedRegistry() { tl_registry = previous_; }

std::uint64_t current_span_id() { return tl_active_span; }

std::uint64_t wire_span_id() {
    // Per-process salt: finalised mix of the start clock and the pid, so
    // two shards launched the same nanosecond still differ.
    static const std::uint64_t salt = [] {
        std::uint64_t mix = static_cast<std::uint64_t>(steady_ns()) ^
                            (static_cast<std::uint64_t>(::getpid()) << 32);
        mix += 0x9e3779b97f4a7c15ULL;
        mix = (mix ^ (mix >> 30)) * 0xbf58476d1ce4e5b9ULL;
        mix = (mix ^ (mix >> 27)) * 0x94d049bb133111ebULL;
        return mix ^ (mix >> 31);
    }();
    static std::atomic<std::uint64_t> next{1};
    const std::uint64_t seq = next.fetch_add(1);
    return (1ull << 52) | ((salt & 0xffffffffULL) << 20) | (seq & 0xfffffULL);
}

std::uint64_t current_trace_id() { return tl_trace_id; }

ScopedTraceId::ScopedTraceId(std::uint64_t trace_id) noexcept
    : previous_(tl_trace_id) {
    tl_trace_id = trace_id;
}

ScopedTraceId::~ScopedTraceId() { tl_trace_id = previous_; }

ScopedParent::ScopedParent(std::uint64_t parent_span) noexcept
    : previous_(tl_active_span) {
    tl_active_span = parent_span;
}

ScopedParent::~ScopedParent() { tl_active_span = previous_; }

void Registry::set_enabled(bool on) {
    std::lock_guard lock(mu_);
    enabled_ = on;
}

bool Registry::enabled() const {
    std::lock_guard lock(mu_);
    return enabled_;
}

void Registry::clear() {
    std::lock_guard lock(mu_);
    spans_.clear();
    counters_.clear();
    max_thread_ = 0;
    epoch_ns_ = steady_ns();
}

void Registry::add_span(Span span) {
    std::lock_guard lock(mu_);
    if (!enabled_) return;
    max_thread_ = std::max(max_thread_, span.thread);
    spans_.push_back(std::move(span));
}

std::vector<Span> Registry::spans() const {
    std::lock_guard lock(mu_);
    return spans_;
}

void Registry::count(const std::string& name, std::uint64_t delta) {
    std::lock_guard lock(mu_);
    counters_[name] += delta;
}

std::uint64_t Registry::counter(const std::string& name) const {
    std::lock_guard lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> Registry::counters() const {
    std::lock_guard lock(mu_);
    return counters_;
}

std::uint64_t Registry::now_us() const {
    std::int64_t epoch;
    {
        std::lock_guard lock(mu_);
        epoch = epoch_ns_;
    }
    const std::int64_t delta = steady_ns() - epoch;
    return delta <= 0 ? 0 : static_cast<std::uint64_t>(delta / 1000);
}

void Registry::merge_from(const Registry& other) {
    std::vector<Span> spans;
    std::map<std::string, std::uint64_t> counters;
    std::int64_t other_epoch;
    {
        std::lock_guard lock(other.mu_);
        spans = other.spans_;
        counters = other.counters_;
        other_epoch = other.epoch_ns_;
    }
    std::lock_guard lock(mu_);
    // Re-base span starts: `other` started its clock later than (or at)
    // this registry's epoch; shift by the epoch delta so merged spans sit
    // on this registry's timeline.
    const std::int64_t delta_us = (other_epoch - epoch_ns_) / 1000;
    // Remap the source's thread ordinals onto tracks this registry has not
    // used yet (sorted, so the assignment is deterministic for a given
    // source registry).
    std::map<std::uint64_t, std::uint64_t> track;
    for (const Span& span : spans) track.emplace(span.thread, 0);
    for (auto& [from, to] : track) to = ++max_thread_;
    // Cross-process id-collision remap (see header): an incoming id that
    // this registry already holds gets a fresh process-unique id; parent
    // links that referenced a remapped incoming id follow it (a parent a
    // source span recorded refers to the source's span, not ours).
    std::set<std::uint64_t> mine;
    for (const Span& span : spans_) mine.insert(span.id);
    std::set<std::uint64_t> incoming;
    for (const Span& span : spans) incoming.insert(span.id);
    std::map<std::uint64_t, std::uint64_t> id_remap;
    for (const Span& span : spans) {
        if (mine.count(span.id) == 0 || id_remap.count(span.id) != 0)
            continue;
        std::uint64_t fresh = next_span_id();
        while (mine.count(fresh) != 0 || incoming.count(fresh) != 0)
            fresh = next_span_id();
        id_remap.emplace(span.id, fresh);
    }
    for (Span& span : spans) {
        const std::int64_t start =
            static_cast<std::int64_t>(span.start_us) + delta_us;
        span.start_us = start > 0 ? static_cast<std::uint64_t>(start) : 0;
        span.thread = track[span.thread];
        if (auto it = id_remap.find(span.id); it != id_remap.end())
            span.id = it->second;
        if (auto it = id_remap.find(span.parent); it != id_remap.end())
            span.parent = it->second;
        spans_.push_back(std::move(span));
    }
    for (const auto& [name, value] : counters) counters_[name] += value;
}

std::string Registry::to_json() const {
    std::vector<Span> spans;
    std::map<std::string, std::uint64_t> counters;
    {
        std::lock_guard lock(mu_);
        spans = spans_;
        counters = counters_;
    }

    std::string out = "{\n  \"schema_version\": 2,\n  \"spans\": [";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const Span& s = spans[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"name\": \"";
        append_escaped(out, s.name);
        out += "\", \"category\": \"";
        append_escaped(out, s.category);
        out += "\", \"id\": " + std::to_string(s.id);
        out += ", \"parent\": " + std::to_string(s.parent);
        out += ", \"thread\": " + std::to_string(s.thread);
        out += ", \"start_us\": " + std::to_string(s.start_us);
        out += ", \"duration_us\": " + std::to_string(s.duration_us);
        out += ", \"work_units\": " + format_work_units(s.work_units);
        out += "}";
    }
    out += spans.empty() ? "],\n" : "\n  ],\n";
    out += "  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        append_escaped(out, name);
        out += "\": " + std::to_string(value);
    }
    out += counters.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
    : registry_(&Registry::current()), name_(std::move(name)),
      category_(std::move(category)) {
    active_ = registry_->enabled();
    if (active_) {
        start_us_ = registry_->now_us();
        id_ = next_span_id();
        parent_ = tl_active_span;
        tl_active_span = id_;
    }
}

ScopedSpan::~ScopedSpan() {
    if (!active_) return;
    tl_active_span = parent_;
    Registry& reg = *registry_;
    Span span;
    span.name = std::move(name_);
    span.category = std::move(category_);
    span.id = id_;
    span.parent = parent_;
    span.thread = thread_ordinal();
    span.start_us = start_us_;
    const std::uint64_t end = reg.now_us();
    span.duration_us = end > start_us_ ? end - start_us_ : 0;
    span.work_units = work_units_;
    reg.add_span(std::move(span));
}

} // namespace psaflow::trace
