#include "support/cas/cas.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>

#include "obs/log.hpp"
#include "support/trace.hpp"

namespace psaflow::cas {

namespace fs = std::filesystem;

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

// ----------------------------------------------------------------- Hasher --

Hasher& Hasher::bytes(const void* data, std::size_t size) {
    u64(size);
    h_ = fnv1a(data, size, h_);
    return *this;
}

Hasher& Hasher::str(std::string_view s) { return bytes(s.data(), s.size()); }

Hasher& Hasher::u64(std::uint64_t v) {
    h_ = fnv1a(&v, sizeof v, h_);
    return *this;
}

Hasher& Hasher::real(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return u64(bits);
}

// ---------------------------------------------------------- Writer/Reader --

void Writer::u32(std::uint32_t v) {
    out_.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void Writer::u64(std::uint64_t v) {
    out_.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void Writer::real(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void Writer::str(std::string_view s) {
    u64(s.size());
    out_.append(s.data(), s.size());
}

bool Reader::take(void* out, std::size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
        failed_ = true;
        return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
}

std::uint32_t Reader::u32() {
    std::uint32_t v = 0;
    take(&v, sizeof v);
    return v;
}

std::uint64_t Reader::u64() {
    std::uint64_t v = 0;
    take(&v, sizeof v);
    return v;
}

double Reader::real() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string Reader::str() {
    const std::uint64_t n = u64();
    if (failed_ || data_.size() - pos_ < n) {
        failed_ = true;
        return {};
    }
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
}

// --------------------------------------------------------------- CasStore --

namespace {

constexpr char kMagic[8] = {'P', 'S', 'A', 'C', 'A', 'S', '\x01', '\n'};

struct EntryHeader {
    char magic[8];
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t key;
    std::uint64_t payload_size;
    std::uint64_t payload_checksum;
};
static_assert(sizeof(EntryHeader) == 40, "entry header layout");

std::string hex16(std::uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

std::optional<std::uint64_t> parse_hex16(std::string_view s) {
    if (s.size() != 16) return std::nullopt;
    std::uint64_t v = 0;
    for (char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else return std::nullopt;
    }
    return v;
}

void count(const char* name, std::uint64_t delta) {
    trace::Registry::current().count(name, delta);
}

} // namespace

CasStore::CasStore(fs::path root, std::uint64_t max_bytes)
    : root_(std::move(root)),
      max_bytes_(max_bytes == 0 ? kDefaultMaxBytes : max_bytes) {
    std::error_code ec;
    fs::create_directories(root_, ec);
    scan_existing();
}

fs::path CasStore::entry_path(std::uint64_t key) const {
    const std::string hex = hex16(key);
    return root_ / hex.substr(0, 2) / (hex.substr(2) + ".cas");
}

void CasStore::scan_existing() {
    // Seed the LRU index from what is already on disk, oldest mtime first,
    // so a reopened store evicts in (approximate) historical access order.
    struct Found {
        std::uint64_t key;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Found> found;
    std::error_code ec;
    for (const auto& shard : fs::directory_iterator(root_, ec)) {
        if (!shard.is_directory(ec)) continue;
        const std::string prefix = shard.path().filename().string();
        if (prefix.size() != 2) continue;
        for (const auto& file : fs::directory_iterator(shard.path(), ec)) {
            if (!file.is_regular_file(ec)) continue;
            if (file.path().extension() != ".cas") continue;
            const auto key = parse_hex16(prefix + file.path().stem().string());
            if (!key) continue;
            Found f;
            f.key = *key;
            f.bytes = file.file_size(ec);
            if (ec) continue;
            f.mtime = file.last_write_time(ec);
            if (ec) f.mtime = fs::file_time_type::min();
            found.push_back(f);
        }
    }
    std::sort(found.begin(), found.end(),
              [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
    for (const Found& f : found) {
        lru_.push_back(IndexEntry{f.key, f.bytes});
        index_[f.key] = std::prev(lru_.end());
        total_bytes_ += f.bytes;
    }
}

void CasStore::touch_locked(std::uint64_t key, std::uint64_t bytes) {
    auto it = index_.find(key);
    if (it != index_.end()) {
        total_bytes_ -= it->second->bytes;
        lru_.erase(it->second);
    }
    lru_.push_back(IndexEntry{key, bytes});
    index_[key] = std::prev(lru_.end());
    total_bytes_ += bytes;
}

void CasStore::erase_locked(std::uint64_t key) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    total_bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
}

void CasStore::remove_entry_file(std::uint64_t key) {
    std::error_code ec;
    fs::remove(entry_path(key), ec);
}

void CasStore::evict_to_cap_locked() {
    // Never evict the most-recently-touched entry (the one a put just
    // published): an oversized single payload is kept rather than looping.
    while (total_bytes_ > max_bytes_ && lru_.size() > 1) {
        const IndexEntry victim = lru_.front();
        erase_locked(victim.key);
        remove_entry_file(victim.key);
        ++stats_.evictions;
        count("cas.evictions", 1);
    }
}

std::optional<std::string> CasStore::get(std::uint64_t key) {
    if (auto local = get_local(key); local.has_value()) return local;

    // Local miss: consult the remote tier, outside every store lock (the
    // fetch is a network round-trip). A remote hit is written through to
    // the local disk tier so the next read is local — and deliberately not
    // republished upstream.
    RemoteFetch fetch;
    {
        std::lock_guard lock(remote_mu_);
        fetch = remote_fetch_;
    }
    if (!fetch) return std::nullopt;
    std::optional<std::string> remote = fetch(key);
    {
        std::lock_guard lock(mu_);
        if (remote.has_value()) {
            ++stats_.remote_hits;
            count("cas.remote_hits", 1);
        } else {
            ++stats_.remote_misses;
            count("cas.remote_misses", 1);
        }
    }
    if (!remote.has_value()) return std::nullopt;
    put_local(key, *remote);
    return remote;
}

std::optional<std::string> CasStore::get_local(std::uint64_t key) {
    std::lock_guard lock(mu_);
    const fs::path path = entry_path(key);

    std::string blob;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            ++stats_.misses;
            count("cas.misses", 1);
            // The file may have been removed behind our back (another
            // process evicted it); drop any stale index entry.
            erase_locked(key);
            return std::nullopt;
        }
        std::ostringstream os;
        os << in.rdbuf();
        blob = std::move(os).str();
    }

    auto corrupt_miss = [&]() -> std::optional<std::string> {
        ++stats_.corrupt;
        ++stats_.misses;
        count("cas.corrupt", 1);
        count("cas.misses", 1);
        // Not silent: an operator seeing repeated corruption wants the
        // path, not just a counter tick.
        obs::warn("cas", "corrupt cache entry evicted",
                  {{"path", path.string()},
                   {"bytes", std::to_string(blob.size())}});
        erase_locked(key);
        remove_entry_file(key);
        return std::nullopt;
    };

    if (blob.size() < sizeof(EntryHeader)) return corrupt_miss();
    EntryHeader header;
    std::memcpy(&header, blob.data(), sizeof header);
    if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0)
        return corrupt_miss();
    if (header.version != kFormatVersion) return corrupt_miss();
    if (header.key != key) return corrupt_miss();
    if (blob.size() - sizeof(EntryHeader) != header.payload_size)
        return corrupt_miss();
    std::string payload = blob.substr(sizeof(EntryHeader));
    if (fnv1a(payload.data(), payload.size()) != header.payload_checksum)
        return corrupt_miss();

    touch_locked(key, blob.size());
    // Refresh mtime so a future process's scan sees this entry as recent.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);

    ++stats_.hits;
    count("cas.hits", 1);
    return payload;
}

void CasStore::put(std::uint64_t key, std::string_view payload) {
    put_local(key, payload);

    RemotePublish publish;
    {
        std::lock_guard lock(remote_mu_);
        publish = remote_publish_;
    }
    if (!publish) return;
    if (publish(key, payload)) {
        std::lock_guard lock(mu_);
        ++stats_.remote_puts;
        count("cas.remote_puts", 1);
    }
}

void CasStore::put_local(std::uint64_t key, std::string_view payload) {
    std::lock_guard lock(mu_);

    EntryHeader header{};
    std::memcpy(header.magic, kMagic, sizeof kMagic);
    header.version = kFormatVersion;
    header.key = key;
    header.payload_size = payload.size();
    header.payload_checksum = fnv1a(payload.data(), payload.size());

    const fs::path path = entry_path(key);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);

    // Unique temp name per store instance; the final rename is atomic, so
    // two racing writers of the same key both succeed and (being content-
    // addressed) publish identical bytes.
    const fs::path tmp =
        path.parent_path() /
        (".tmp-" + hex16(key) + "-" + std::to_string(++tmp_counter_));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return; // unwritable cache dir: silently skip persisting
        out.write(reinterpret_cast<const char*>(&header), sizeof header);
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        if (!out) {
            out.close();
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return;
    }

    touch_locked(key, sizeof header + payload.size());
    ++stats_.writes;
    count("cas.writes", 1);
    evict_to_cap_locked();
}

void CasStore::clear() {
    std::lock_guard lock(mu_);
    for (const IndexEntry& entry : lru_) remove_entry_file(entry.key);
    lru_.clear();
    index_.clear();
    total_bytes_ = 0;
}

CasStats CasStore::stats() const {
    std::lock_guard lock(mu_);
    return stats_;
}

std::uint64_t CasStore::size_bytes() const {
    std::lock_guard lock(mu_);
    return total_bytes_;
}

std::uint64_t CasStore::max_bytes() const {
    std::lock_guard lock(mu_);
    return max_bytes_;
}

void CasStore::set_max_bytes(std::uint64_t max_bytes) {
    std::lock_guard lock(mu_);
    max_bytes_ = max_bytes == 0 ? kDefaultMaxBytes : max_bytes;
    evict_to_cap_locked();
}

void CasStore::set_remote(RemoteFetch fetch, RemotePublish publish) {
    std::lock_guard lock(remote_mu_);
    remote_fetch_ = std::move(fetch);
    remote_publish_ = std::move(publish);
}

bool CasStore::has_remote() const {
    std::lock_guard lock(remote_mu_);
    return static_cast<bool>(remote_fetch_);
}

// ------------------------------------------------------------ global store --

namespace {

struct GlobalStore {
    std::mutex mu;
    bool initialised = false;
    std::unique_ptr<CasStore> store;
};

GlobalStore& global_store() {
    static GlobalStore g;
    return g;
}

std::uint64_t env_max_bytes() {
    if (const char* env = std::getenv("PSAFLOW_CACHE_MAX_MB")) {
        char* end = nullptr;
        const unsigned long long mb = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0' && mb > 0) return mb << 20;
    }
    return CasStore::kDefaultMaxBytes;
}

} // namespace

CasStore* store() {
    GlobalStore& g = global_store();
    std::lock_guard lock(g.mu);
    if (!g.initialised) {
        g.initialised = true;
        if (const char* dir = std::getenv("PSAFLOW_CACHE_DIR")) {
            if (dir[0] != '\0')
                g.store = std::make_unique<CasStore>(dir, env_max_bytes());
        }
    }
    return g.store.get();
}

void configure(const std::string& dir, std::uint64_t max_bytes) {
    GlobalStore& g = global_store();
    std::lock_guard lock(g.mu);
    g.initialised = true;
    if (dir.empty()) {
        g.store.reset();
        return;
    }
    const std::uint64_t cap = max_bytes == 0 ? env_max_bytes() : max_bytes;
    if (g.store != nullptr && g.store->root() == std::filesystem::path(dir)) {
        g.store->set_max_bytes(cap);
        return;
    }
    g.store = std::make_unique<CasStore>(dir, cap);
}

void configure_remote(RemoteFetch fetch, RemotePublish publish) {
    if (CasStore* s = store())
        s->set_remote(std::move(fetch), std::move(publish));
}

} // namespace psaflow::cas
