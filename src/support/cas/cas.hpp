// Disk-backed content-addressed artifact store.
//
// PSA-flows are reusable by design: the same codified flow is re-run across
// applications and revisions, and most task executions (interpreter
// profiles, analyses, per-path design artifacts) are byte-identical across
// runs. PR 1's in-memory profile cache only amortises within one process;
// this store persists memoized results on disk so every later `psaflowc`
// invocation — and every request of a `--batch` manifest — starts warm.
//
// Layout and guarantees:
//   * Entries live under `<root>/<2-hex>/<14-hex>.cas`, sharded by the top
//     byte of the 64-bit content key so no directory grows unbounded.
//   * Writes go to a temp file in the shard directory and are published
//     with an atomic rename: readers never observe a half-written entry,
//     and concurrent writers of the same key are harmless (content-
//     addressed entries with equal keys have equal payloads).
//   * Every entry is framed with a magic tag, format version, its own key
//     and an FNV-1a payload checksum. A truncated, bit-flipped or
//     version-mismatched entry is treated as a miss: it is counted under
//     `corrupt`, deleted, and the caller recomputes.
//   * The store is LRU size-capped: when the total payload+header size
//     exceeds `max_bytes`, least-recently-used entries are evicted (reads
//     refresh recency; on open, recency is seeded from file mtimes).
//   * hit/miss/write/evict/corrupt counts are kept per store and mirrored
//     into the trace registry as "cas.hits", "cas.misses", "cas.writes",
//     "cas.evictions", "cas.corrupt".
//
// Cache keys are built with `Hasher`, seeded with `engine_version()` so a
// key never aliases across incompatible engine revisions, plus a domain
// tag ("interp-profile", "design-artifact", ...) and the canonical content
// (module print, task id, task params). `Writer`/`Reader` serialise
// payloads with bit-exact doubles, which is what lets a warm run reproduce
// a cold run's FlowResult byte for byte.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace psaflow::cas {

/// Version string hashed into every cache key. Bump when any memoized
/// computation (interpreter, analyses, emitters, perf models) changes
/// observable output: old entries then miss by key and age out via LRU.
[[nodiscard]] constexpr std::string_view engine_version() {
    return "psaflow-engine-1";
}

/// FNV-1a over arbitrary bytes.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t size,
                                  std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Incremental FNV-1a key builder. Each ingest is length-prefixed so
/// concatenation ambiguities ("ab"+"c" vs "a"+"bc") cannot alias keys.
class Hasher {
public:
    Hasher() { str(engine_version()); }

    Hasher& bytes(const void* data, std::size_t size);
    Hasher& str(std::string_view s);
    Hasher& u64(std::uint64_t v);
    Hasher& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
    Hasher& boolean(bool v) { return u64(v ? 1 : 0); }
    /// Bit-pattern hash: distinguishes -0.0/0.0 and NaN payloads, exactly
    /// right for "same inputs" memoization.
    Hasher& real(double v);

    [[nodiscard]] std::uint64_t digest() const { return h_; }

private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Binary payload writer with bit-exact doubles (fixed little-endian-style
/// byte order via memcpy on the host; the cache is a per-machine artifact).
class Writer {
public:
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void boolean(bool v) { u32(v ? 1 : 0); }
    void real(double v); ///< serialised as the 64-bit pattern
    void str(std::string_view s);

    [[nodiscard]] const std::string& payload() const { return out_; }
    [[nodiscard]] std::string take() { return std::move(out_); }

private:
    std::string out_;
};

/// Matching reader. Out-of-bounds or malformed reads latch `fail()`;
/// callers check `ok()` (and usually `at_end()`) once after reading.
class Reader {
public:
    explicit Reader(std::string_view payload) : data_(payload) {}

    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] std::int64_t i64() {
        return static_cast<std::int64_t>(u64());
    }
    [[nodiscard]] bool boolean() { return u32() != 0; }
    [[nodiscard]] double real();
    [[nodiscard]] std::string str();

    [[nodiscard]] bool ok() const { return !failed_; }
    [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
    /// ok() and fully consumed — the payload parsed exactly.
    [[nodiscard]] bool complete() const { return ok() && at_end(); }

private:
    bool take(void* out, std::size_t n);

    std::string_view data_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

struct CasStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;
    std::uint64_t evictions = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t remote_hits = 0;   ///< local miss satisfied by the remote tier
    std::uint64_t remote_misses = 0; ///< consulted the remote tier, not there
    std::uint64_t remote_puts = 0;   ///< payloads published to the remote tier
};

/// Hooks onto a remote artifact tier (cluster/remote_cas implements them
/// over the wire). `fetch` returns the payload or nullopt; `publish`
/// returns false on transport failure (best-effort — the local entry is
/// already durable).
using RemoteFetch =
    std::function<std::optional<std::string>(std::uint64_t key)>;
using RemotePublish =
    std::function<bool(std::uint64_t key, std::string_view payload)>;

class CasStore {
public:
    /// On-disk entry format revision (frame layout, not payload schema).
    static constexpr std::uint32_t kFormatVersion = 1;
    static constexpr std::uint64_t kDefaultMaxBytes = 256ull << 20;

    /// Opens (creating directories as needed) a store rooted at `root`.
    /// Existing entries are indexed by scanning the shard directories;
    /// recency is seeded from file modification times.
    explicit CasStore(std::filesystem::path root,
                      std::uint64_t max_bytes = kDefaultMaxBytes);

    /// Checksum-verified read. Corrupt / truncated / version-mismatched
    /// entries are deleted and reported as a miss. With a remote tier
    /// attached, a local miss consults it and a remote hit is written
    /// through to disk — the disk tier is a read-through cache of the
    /// shared tier.
    [[nodiscard]] std::optional<std::string> get(std::uint64_t key);

    /// Local-disk-only read: never consults the remote tier. This is what
    /// the wire `cas_get` handler serves, so a chain of stores can never
    /// recurse through each other.
    [[nodiscard]] std::optional<std::string> get_local(std::uint64_t key);

    /// Atomic (write-temp-then-rename) insert; evicts LRU entries past the
    /// size cap afterwards. Re-putting an existing key refreshes recency.
    /// With a remote tier attached, the payload is also published upstream
    /// (best-effort, outside the store lock).
    void put(std::uint64_t key, std::string_view payload);

    /// Local-disk-only insert (the read-through path and the wire
    /// `cas_put` handler; never republishes upstream).
    void put_local(std::uint64_t key, std::string_view payload);

    /// Attach (or with empty functions, detach) a remote artifact tier.
    void set_remote(RemoteFetch fetch, RemotePublish publish);
    [[nodiscard]] bool has_remote() const;

    /// Evict everything (used by tests and `psaflowc --cache-clear`).
    void clear();

    [[nodiscard]] const std::filesystem::path& root() const { return root_; }
    [[nodiscard]] CasStats stats() const;
    /// Total bytes of indexed entries (headers included).
    [[nodiscard]] std::uint64_t size_bytes() const;
    [[nodiscard]] std::uint64_t max_bytes() const;
    void set_max_bytes(std::uint64_t max_bytes);

private:
    struct IndexEntry {
        std::uint64_t key = 0;
        std::uint64_t bytes = 0;
    };
    /// LRU list, least-recently-used first, with a key -> node map.
    using LruList = std::list<IndexEntry>;

    [[nodiscard]] std::filesystem::path entry_path(std::uint64_t key) const;
    void scan_existing();
    void touch_locked(std::uint64_t key, std::uint64_t bytes);
    void erase_locked(std::uint64_t key);
    void evict_to_cap_locked();
    void remove_entry_file(std::uint64_t key);

    std::filesystem::path root_;
    mutable std::mutex mu_;
    mutable std::mutex remote_mu_; ///< guards the hook pair only
    RemoteFetch remote_fetch_;
    RemotePublish remote_publish_;
    std::uint64_t max_bytes_;
    std::uint64_t total_bytes_ = 0;
    std::uint64_t tmp_counter_ = 0;
    LruList lru_;
    std::unordered_map<std::uint64_t, LruList::iterator> index_;
    CasStats stats_;
};

/// The process-wide store, or nullptr when disk caching is disabled. On
/// first use, initialises itself from the PSAFLOW_CACHE_DIR (root) and
/// PSAFLOW_CACHE_MAX_MB (size cap) environment variables; without
/// PSAFLOW_CACHE_DIR the store stays disabled until `configure()`.
[[nodiscard]] CasStore* store();

/// (Re)configure the process-wide store: empty `dir` disables disk
/// caching, `max_bytes == 0` keeps the env/default cap. Reconfiguring with
/// the store's current root and cap is a no-op (sessions share the warm
/// index).
void configure(const std::string& dir, std::uint64_t max_bytes = 0);

/// Attach a remote artifact tier to the process-wide store (no-op while
/// disk caching is disabled — the disk tier is the remote tier's
/// read-through cache, so there is nowhere to cache into without it).
void configure_remote(RemoteFetch fetch, RemotePublish publish);

} // namespace psaflow::cas
