// A minimal JSON reader and writer for machine-readable tool I/O — the
// reader's first consumer was `psaflowc --batch manifest.json`, and the
// serving layer's wire protocol (serve/protocol) both parses and emits
// documents through it. Deliberately small: UTF-8 pass-through, \uXXXX
// escapes decoded as Latin-1/BMP code points, numbers as double. Parse
// errors carry a byte offset. dump() round-trips through parse(): object
// member order is preserved, integral numbers print without an exponent,
// the rest in shortest-round-trip form.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace psaflow::json {

class Value {
public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool bool_value = false;
    double number_value = 0.0;
    std::string string_value;
    std::vector<Value> elements;                          ///< Array
    std::vector<std::pair<std::string, Value>> members;   ///< Object, ordered

    [[nodiscard]] bool is_null() const { return kind == Kind::Null; }
    [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
    [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
    [[nodiscard]] bool is_string() const { return kind == Kind::String; }
    [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
    [[nodiscard]] bool is_bool() const { return kind == Kind::Bool; }

    // Construction helpers for the write side.
    [[nodiscard]] static Value null();
    [[nodiscard]] static Value boolean(bool v);
    [[nodiscard]] static Value number(double v);
    [[nodiscard]] static Value string(std::string v);
    [[nodiscard]] static Value array();
    [[nodiscard]] static Value object();

    /// Object member insert-or-replace; returns *this for chaining.
    /// Asserts (via Error) when called on a non-object.
    Value& set(std::string key, Value v);
    /// Array append; asserts (via Error) when called on a non-array.
    Value& push(Value v);

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const Value* find(std::string_view key) const;

    // Typed getters with defaults (wrong-kind values yield the default, so
    // manifest readers can treat "absent" and "mistyped" uniformly).
    [[nodiscard]] std::string string_or(std::string def) const;
    [[nodiscard]] double number_or(double def) const;
    [[nodiscard]] bool bool_or(bool def) const;
};

/// Parse one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). On failure returns nullopt and, when `error` is non-null,
/// stores a message with the byte offset of the problem.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error = nullptr);

/// Serialise a document: compact single-line output, member order
/// preserved, strings escaped, NaN/Inf rendered as null (JSON has no
/// spelling for them).
[[nodiscard]] std::string dump(const Value& value);

} // namespace psaflow::json
