#include "support/table.hpp"

#include <algorithm>
#include <sstream>

namespace psaflow {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(Row{std::move(cells), false});
}

void TablePrinter::add_separator() { rows_.push_back(Row{{}, true}); }

void TablePrinter::print(std::ostream& os) const { os << to_string(); }

std::string TablePrinter::to_string() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const Row& row : rows_) {
        if (row.separator) continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto emit_line = [&](const std::vector<std::string>& cells,
                         std::ostringstream& os) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << cells[c]
               << std::string(widths[c] - cells[c].size() + 1, ' ');
        }
        os << "|\n";
    };
    auto emit_rule = [&](std::ostringstream& os) {
        for (std::size_t c = 0; c < widths.size(); ++c)
            os << "+" << std::string(widths[c] + 2, '-');
        os << "+\n";
    };

    std::ostringstream os;
    emit_rule(os);
    emit_line(header_, os);
    emit_rule(os);
    for (const Row& row : rows_) {
        if (row.separator) {
            emit_rule(os);
        } else {
            emit_line(row.cells, os);
        }
    }
    emit_rule(os);
    return os.str();
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

std::string CsvWriter::to_string() const {
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c != 0) os << ',';
            os << escape(cells[c]);
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
    return os.str();
}

} // namespace psaflow
