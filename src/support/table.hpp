// Column-aligned text tables for the benchmark harness output. Every bench
// binary prints the same rows/series the paper's tables and figures report,
// and this printer keeps that output readable and diffable.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace psaflow {

/// Accumulates rows of string cells and renders them with aligned columns.
///
///     TablePrinter t({"Application", "OMP", "HIP 1080"});
///     t.add_row({"N-Body", "30.1x", "337x"});
///     t.print(std::cout);
class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> header);

    /// Append one row. Rows shorter than the header are padded with "".
    void add_row(std::vector<std::string> cells);

    /// Append a horizontal separator line.
    void add_separator();

    void print(std::ostream& os) const;

    [[nodiscard]] std::string to_string() const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
    struct Row {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

/// Minimal CSV emission for machine-readable experiment logs.
class CsvWriter {
public:
    explicit CsvWriter(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Render the full document, quoting cells that contain separators.
    [[nodiscard]] std::string to_string() const;

private:
    static std::string escape(const std::string& cell);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace psaflow
