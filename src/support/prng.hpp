// Deterministic pseudo-random numbers for workload generators. The benchmark
// inputs must be reproducible across runs and platforms, so we use a fixed
// splitmix64 generator rather than std::mt19937's unspecified seeding paths.
#pragma once

#include <cstdint>

namespace psaflow {

/// splitmix64: tiny, fast, well-distributed; used to seed benchmark inputs.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /// Next 64 raw bits.
    std::uint64_t next_u64() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /// Uniform double in [0, 1).
    double next_double() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        return lo + (hi - lo) * next_double();
    }

    /// Uniform integer in [0, n); returns 0 when n == 0 (an empty range has
    /// no valid draw, and `x % 0` is UB). Uses plain modulo reduction: the
    /// bias is < n/2^64, negligible for the small ranges the workload
    /// generators draw, and rejection sampling would change the draw
    /// sequence every deterministic benchmark input depends on.
    std::uint64_t next_below(std::uint64_t n) {
        if (n == 0) return 0;
        return next_u64() % n;
    }

private:
    std::uint64_t state_;
};

} // namespace psaflow
