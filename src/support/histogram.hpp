// Fixed-footprint latency histogram.
//
// Power-of-two buckets over unsigned 64-bit samples (microseconds in the
// serving layer): bucket b holds values whose bit width is b, i.e. the
// range [2^(b-1), 2^b), with bucket 0 reserved for the value 0. That keeps
// the whole histogram at 65 counters regardless of range — cheap enough to
// keep one per flow task in the daemon's metrics plane — while percentile
// estimates stay within a factor of two of the truth, which is what a
// "p99 is ~400ms" serving dashboard needs.
//
// Not internally synchronised: the daemon mutates histograms under its own
// stats mutex, and request-local histograms are single-threaded.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace psaflow {

class Histogram {
public:
    static constexpr int kBuckets = 65; ///< bit_width(uint64) + 1

    void record(std::uint64_t value);
    /// Pointwise sum of two histograms (counts, sum, min/max). Counts and
    /// the sum saturate at UINT64_MAX instead of wrapping — the cluster
    /// metrics fan-in merges histograms whose totals it does not control.
    void merge(const Histogram& other);

    /// Serialised histogram state, as it rides the wire in a shard's
    /// stats document ("buckets" as [floor, count] pairs plus the summary
    /// fields). from_parts rebuilds an equivalent Histogram on the other
    /// side, so a router can merge scraped shard histograms exactly:
    /// merged bucket counts are the arithmetic sums of the parts.
    struct Parts {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
    };
    [[nodiscard]] static Histogram from_parts(const Parts& parts);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] std::uint64_t sum() const { return sum_; }
    /// Smallest / largest recorded sample (0 when empty).
    [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    [[nodiscard]] std::uint64_t max() const { return max_; }
    [[nodiscard]] double mean() const {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /// Upper bound of the bucket containing the p-th percentile (p in
    /// [0, 100]); 0 when empty. Exact for the extremes (clamped to the
    /// recorded min/max), otherwise right to within the bucket's 2x width.
    [[nodiscard]] std::uint64_t percentile(double p) const;

    [[nodiscard]] std::uint64_t bucket_count(int bucket) const {
        return buckets_.at(static_cast<std::size_t>(bucket));
    }
    /// Inclusive lower bound of a bucket's value range.
    [[nodiscard]] static std::uint64_t bucket_floor(int bucket);

    /// Compact JSON: {"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,
    /// "p99":N,"buckets":[[floor,count],...]} with empty buckets elided.
    [[nodiscard]] std::string to_json() const;

private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = UINT64_MAX;
    std::uint64_t max_ = 0;
};

} // namespace psaflow
