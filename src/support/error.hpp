// Error types shared across the library. psaflow reports unrecoverable
// conditions (malformed source, impossible transform preconditions, model
// misuse) by throwing Error; callers that want to probe instead of fail use
// the query/analysis APIs' optional-returning variants.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

#include "support/source_location.hpp"

namespace psaflow {

/// Base exception for all psaflow failures.
class Error : public std::runtime_error {
public:
    explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

/// Lexing/parsing failure, carrying the source position of the offence.
class ParseError : public Error {
public:
    ParseError(SrcLoc loc, const std::string& msg)
        : Error(to_string(loc) + ": " + msg), loc_(loc) {}

    [[nodiscard]] SrcLoc where() const { return loc_; }

private:
    SrcLoc loc_;
};

/// Semantic-analysis failure (undeclared name, type mismatch, ...).
class SemaError : public Error {
public:
    SemaError(SrcLoc loc, const std::string& msg)
        : Error(to_string(loc) + ": " + msg), loc_(loc) {}

    [[nodiscard]] SrcLoc where() const { return loc_; }

private:
    SrcLoc loc_;
};

/// Runtime failure inside the HLC interpreter (out-of-bounds index,
/// division by zero, unbound name, ...).
class InterpError : public Error {
public:
    using Error::Error;
};

/// Throw Error with `msg` unless `cond` holds. Used for preconditions whose
/// violation indicates API misuse rather than a bug in psaflow itself.
inline void ensure(bool cond, const std::string& msg) {
    if (!cond) throw Error(msg);
}

} // namespace psaflow
