#include "support/net.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/string_util.hpp"

namespace psaflow::net {

void Fd::reset(int fd) {
    if (fd_ >= 0) {
        // Retrying close on EINTR is wrong on Linux (the fd is gone either
        // way); a single close is the portable-enough behaviour here.
        ::close(fd_);
    }
    fd_ = fd;
}

bool read_exact(int fd, void* buf, std::size_t size, std::size_t* got) {
    auto* out = static_cast<unsigned char*>(buf);
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::read(fd, out + done, size - done);
        if (n > 0) {
            done += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n == 0) errno = 0; // clean EOF — read(2) leaves errno untouched
        break;
    }
    if (got != nullptr) *got = done;
    return done == size;
}

bool write_exact(int fd, const void* buf, std::size_t size) {
    const auto* data = static_cast<const unsigned char*>(buf);
    std::size_t done = 0;
    while (done < size) {
        ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, data + done, size - done);
        if (n > 0) {
            done += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

const char* to_string(FrameStatus status) {
    switch (status) {
        case FrameStatus::Ok: return "ok";
        case FrameStatus::Eof: return "eof";
        case FrameStatus::Torn: return "torn frame";
        case FrameStatus::TooLarge: return "frame too large";
        case FrameStatus::Error: return "read error";
    }
    return "?";
}

namespace {
void store_u32(unsigned char* out, std::uint32_t v) {
    out[0] = static_cast<unsigned char>(v);
    out[1] = static_cast<unsigned char>(v >> 8);
    out[2] = static_cast<unsigned char>(v >> 16);
    out[3] = static_cast<unsigned char>(v >> 24);
}

std::uint32_t load_u32(const unsigned char* in) {
    return static_cast<std::uint32_t>(in[0]) |
           static_cast<std::uint32_t>(in[1]) << 8 |
           static_cast<std::uint32_t>(in[2]) << 16 |
           static_cast<std::uint32_t>(in[3]) << 24;
}
} // namespace

FrameStatus read_frame(int fd, std::string& payload) {
    unsigned char header[8];
    std::size_t got = 0;
    if (!read_exact(fd, header, sizeof header, &got)) {
        if (got == 0) // errno == 0 marks clean EOF (see read_exact)
            return errno == 0 ? FrameStatus::Eof : FrameStatus::Error;
        return FrameStatus::Torn;
    }
    if (load_u32(header) != kFrameMagic) return FrameStatus::Torn;
    const std::uint32_t length = load_u32(header + 4);
    if (length > kMaxFramePayload) return FrameStatus::TooLarge;
    payload.resize(length);
    if (length > 0 && !read_exact(fd, payload.data(), length))
        return FrameStatus::Torn;
    return FrameStatus::Ok;
}

const char* to_string(WriteStatus status) {
    switch (status) {
        case WriteStatus::Ok: return "ok";
        case WriteStatus::TooLarge: return "frame too large";
        case WriteStatus::Error: return "write error";
    }
    return "?";
}

WriteStatus write_frame_status(int fd, std::string_view payload) {
    if (payload.size() > kMaxFramePayload) return WriteStatus::TooLarge;
    unsigned char header[8];
    store_u32(header, kFrameMagic);
    store_u32(header + 4, static_cast<std::uint32_t>(payload.size()));
    if (!write_exact(fd, header, sizeof header)) return WriteStatus::Error;
    if (!write_exact(fd, payload.data(), payload.size()))
        return WriteStatus::Error;
    return WriteStatus::Ok;
}

namespace {
bool fill_unix_addr(const std::string& path, sockaddr_un& addr,
                    std::string* error) {
    if (path.empty() || path.size() >= sizeof addr.sun_path) {
        if (error != nullptr)
            *error = "socket path '" + path + "' is empty or too long (max " +
                     std::to_string(sizeof addr.sun_path - 1) + " bytes)";
        return false;
    }
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

std::string errno_message(const std::string& what) {
    return what + ": " + std::strerror(errno);
}
} // namespace

std::string Endpoint::describe() const {
    if (kind == Kind::Unix) return "unix:" + path;
    return host + ":" + std::to_string(port);
}

std::optional<Endpoint> parse_endpoint(const std::string& spec,
                                       std::string* error) {
    const auto fail = [&](const std::string& message) -> std::optional<Endpoint> {
        if (error != nullptr) *error = message;
        return std::nullopt;
    };
    if (spec.empty()) return fail("empty endpoint spec");

    std::string rest = spec;
    bool force_tcp = false;
    if (starts_with(rest, "unix:")) {
        Endpoint ep;
        ep.kind = Endpoint::Kind::Unix;
        ep.path = rest.substr(5);
        if (ep.path.empty()) return fail("unix endpoint has an empty path");
        return ep;
    }
    if (starts_with(rest, "tcp:")) {
        force_tcp = true;
        rest = rest.substr(4);
    }

    // A bare "host:port" is TCP only when it looks like one: exactly one
    // ':' splitting a non-empty host (no '/', so relative socket paths with
    // colons stay Unix) from a numeric port.
    const std::size_t colon = rest.rfind(':');
    const bool tcp_shaped = colon != std::string::npos && colon > 0 &&
                            rest.find('/') == std::string::npos &&
                            rest.find(':') == colon;
    if (force_tcp || tcp_shaped) {
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= rest.size())
            return fail("tcp endpoint '" + spec +
                        "' is not of the form host:port");
        const auto port = parse_int(rest.substr(colon + 1));
        if (!port.has_value() || *port < 0 || *port > 65535)
            return fail("tcp endpoint '" + spec + "' has an invalid port");
        Endpoint ep;
        ep.kind = Endpoint::Kind::Tcp;
        ep.host = rest.substr(0, colon);
        ep.port = static_cast<std::uint16_t>(*port);
        return ep;
    }

    Endpoint ep;
    ep.kind = Endpoint::Kind::Unix;
    ep.path = rest;
    return ep;
}

Fd listen_unix(const std::string& path, int backlog, std::string* error) {
    sockaddr_un addr;
    if (!fill_unix_addr(path, addr, error)) return Fd();

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (error != nullptr) *error = errno_message("socket");
        return Fd();
    }
    ::unlink(path.c_str()); // stale socket file from a crashed daemon
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        if (error != nullptr) *error = errno_message("bind '" + path + "'");
        return Fd();
    }
    if (::listen(fd.get(), backlog) != 0) {
        if (error != nullptr) *error = errno_message("listen '" + path + "'");
        return Fd();
    }
    return fd;
}

Fd connect_unix(const std::string& path, std::string* error) {
    sockaddr_un addr;
    if (!fill_unix_addr(path, addr, error)) return Fd();

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (error != nullptr) *error = errno_message("socket");
        return Fd();
    }
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        if (error != nullptr) *error = errno_message("connect '" + path + "'");
        return Fd();
    }
    return fd;
}

namespace {

/// Resolve host:port for socket(2)/bind(2)/connect(2). getaddrinfo handles
/// numeric addresses and names alike; we take the first AF_INET/AF_INET6
/// result (the daemon's serving surface is a LAN, not multi-homing).
struct ResolvedAddr {
    addrinfo* list = nullptr;
    ~ResolvedAddr() {
        if (list != nullptr) ::freeaddrinfo(list);
    }
};

bool resolve_tcp(const std::string& host, std::uint16_t port, bool passive,
                 ResolvedAddr& out, std::string* error) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_protocol = IPPROTO_TCP;
    if (passive) hints.ai_flags = AI_PASSIVE;
    const std::string service = std::to_string(port);
    const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                 service.c_str(), &hints, &out.list);
    if (rc != 0) {
        if (error != nullptr)
            *error = "resolve '" + host + ":" + service +
                     "': " + ::gai_strerror(rc);
        return false;
    }
    return true;
}

} // namespace

Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog,
              std::string* error) {
    ResolvedAddr addr;
    if (!resolve_tcp(host, port, /*passive=*/true, addr, error)) return Fd();
    for (addrinfo* ai = addr.list; ai != nullptr; ai = ai->ai_next) {
        Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!fd.valid()) continue;
        const int one = 1;
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) continue;
        if (::listen(fd.get(), backlog) != 0) continue;
        return fd;
    }
    if (error != nullptr)
        *error = errno_message("listen '" + host + ":" +
                               std::to_string(port) + "'");
    return Fd();
}

Fd connect_tcp(const std::string& host, std::uint16_t port,
               std::string* error) {
    ResolvedAddr addr;
    if (!resolve_tcp(host, port, /*passive=*/false, addr, error)) return Fd();
    for (addrinfo* ai = addr.list; ai != nullptr; ai = ai->ai_next) {
        Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!fd.valid()) continue;
        int rc;
        do {
            rc = ::connect(fd.get(), ai->ai_addr, ai->ai_addrlen);
        } while (rc != 0 && errno == EINTR);
        if (rc != 0) continue;
        const int one = 1;
        ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return fd;
    }
    if (error != nullptr)
        *error = errno_message("connect '" + host + ":" +
                               std::to_string(port) + "'");
    return Fd();
}

Fd listen_endpoint(const Endpoint& ep, int backlog, std::string* error) {
    if (ep.kind == Endpoint::Kind::Unix)
        return listen_unix(ep.path, backlog, error);
    return listen_tcp(ep.host, ep.port, backlog, error);
}

Fd connect_endpoint(const Endpoint& ep, std::string* error) {
    if (ep.kind == Endpoint::Kind::Unix)
        return connect_unix(ep.path, error);
    return connect_tcp(ep.host, ep.port, error);
}

std::uint16_t local_port(int fd) {
    sockaddr_storage storage{};
    socklen_t len = sizeof storage;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&storage), &len) != 0)
        return 0;
    if (storage.ss_family == AF_INET)
        return ntohs(reinterpret_cast<sockaddr_in*>(&storage)->sin_port);
    if (storage.ss_family == AF_INET6)
        return ntohs(reinterpret_cast<sockaddr_in6*>(&storage)->sin6_port);
    return 0;
}

Fd accept_connection(int listen_fd) {
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) return Fd(fd);
        if (errno != EINTR) return Fd();
    }
}

bool socket_pair(Fd& a, Fd& b) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
    a.reset(fds[0]);
    b.reset(fds[1]);
    return true;
}

void set_recv_timeout(int fd, long long ms) {
    timeval tv{};
    if (ms > 0) {
        tv.tv_sec = static_cast<time_t>(ms / 1000);
        tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    }
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

int wait_readable(int fd_a, int fd_b, int timeout_ms) {
    return wait_readable_any({fd_a, fd_b}, timeout_ms);
}

int wait_readable_any(const std::vector<int>& fds, int timeout_ms) {
    std::vector<pollfd> poll_fds;
    poll_fds.reserve(fds.size());
    for (int fd : fds)
        if (fd >= 0) poll_fds.push_back(pollfd{fd, POLLIN, 0});
    if (poll_fds.empty()) return -1;
    for (;;) {
        const int rc = ::poll(poll_fds.data(),
                              static_cast<nfds_t>(poll_fds.size()),
                              timeout_ms);
        if (rc < 0 && errno == EINTR) continue;
        if (rc <= 0) return -1;
        for (const pollfd& pfd : poll_fds) {
            if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                return pfd.fd;
        }
        return -1;
    }
}

} // namespace psaflow::net
