#include "support/net.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace psaflow::net {

void Fd::reset(int fd) {
    if (fd_ >= 0) {
        // Retrying close on EINTR is wrong on Linux (the fd is gone either
        // way); a single close is the portable-enough behaviour here.
        ::close(fd_);
    }
    fd_ = fd;
}

bool read_exact(int fd, void* buf, std::size_t size, std::size_t* got) {
    auto* out = static_cast<unsigned char*>(buf);
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::read(fd, out + done, size - done);
        if (n > 0) {
            done += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n == 0) errno = 0; // clean EOF — read(2) leaves errno untouched
        break;
    }
    if (got != nullptr) *got = done;
    return done == size;
}

bool write_exact(int fd, const void* buf, std::size_t size) {
    const auto* data = static_cast<const unsigned char*>(buf);
    std::size_t done = 0;
    while (done < size) {
        ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, data + done, size - done);
        if (n > 0) {
            done += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

const char* to_string(FrameStatus status) {
    switch (status) {
        case FrameStatus::Ok: return "ok";
        case FrameStatus::Eof: return "eof";
        case FrameStatus::Torn: return "torn frame";
        case FrameStatus::TooLarge: return "frame too large";
        case FrameStatus::Error: return "read error";
    }
    return "?";
}

namespace {
void store_u32(unsigned char* out, std::uint32_t v) {
    out[0] = static_cast<unsigned char>(v);
    out[1] = static_cast<unsigned char>(v >> 8);
    out[2] = static_cast<unsigned char>(v >> 16);
    out[3] = static_cast<unsigned char>(v >> 24);
}

std::uint32_t load_u32(const unsigned char* in) {
    return static_cast<std::uint32_t>(in[0]) |
           static_cast<std::uint32_t>(in[1]) << 8 |
           static_cast<std::uint32_t>(in[2]) << 16 |
           static_cast<std::uint32_t>(in[3]) << 24;
}
} // namespace

FrameStatus read_frame(int fd, std::string& payload) {
    unsigned char header[8];
    std::size_t got = 0;
    if (!read_exact(fd, header, sizeof header, &got)) {
        if (got == 0) // errno == 0 marks clean EOF (see read_exact)
            return errno == 0 ? FrameStatus::Eof : FrameStatus::Error;
        return FrameStatus::Torn;
    }
    if (load_u32(header) != kFrameMagic) return FrameStatus::Torn;
    const std::uint32_t length = load_u32(header + 4);
    if (length > kMaxFramePayload) return FrameStatus::TooLarge;
    payload.resize(length);
    if (length > 0 && !read_exact(fd, payload.data(), length))
        return FrameStatus::Torn;
    return FrameStatus::Ok;
}

bool write_frame(int fd, std::string_view payload) {
    if (payload.size() > kMaxFramePayload) return false;
    unsigned char header[8];
    store_u32(header, kFrameMagic);
    store_u32(header + 4, static_cast<std::uint32_t>(payload.size()));
    return write_exact(fd, header, sizeof header) &&
           write_exact(fd, payload.data(), payload.size());
}

namespace {
bool fill_unix_addr(const std::string& path, sockaddr_un& addr,
                    std::string* error) {
    if (path.empty() || path.size() >= sizeof addr.sun_path) {
        if (error != nullptr)
            *error = "socket path '" + path + "' is empty or too long (max " +
                     std::to_string(sizeof addr.sun_path - 1) + " bytes)";
        return false;
    }
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

std::string errno_message(const std::string& what) {
    return what + ": " + std::strerror(errno);
}
} // namespace

Fd listen_unix(const std::string& path, int backlog, std::string* error) {
    sockaddr_un addr;
    if (!fill_unix_addr(path, addr, error)) return Fd();

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (error != nullptr) *error = errno_message("socket");
        return Fd();
    }
    ::unlink(path.c_str()); // stale socket file from a crashed daemon
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        if (error != nullptr) *error = errno_message("bind '" + path + "'");
        return Fd();
    }
    if (::listen(fd.get(), backlog) != 0) {
        if (error != nullptr) *error = errno_message("listen '" + path + "'");
        return Fd();
    }
    return fd;
}

Fd connect_unix(const std::string& path, std::string* error) {
    sockaddr_un addr;
    if (!fill_unix_addr(path, addr, error)) return Fd();

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (error != nullptr) *error = errno_message("socket");
        return Fd();
    }
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        if (error != nullptr) *error = errno_message("connect '" + path + "'");
        return Fd();
    }
    return fd;
}

Fd accept_connection(int listen_fd) {
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) return Fd(fd);
        if (errno != EINTR) return Fd();
    }
}

bool socket_pair(Fd& a, Fd& b) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
    a.reset(fds[0]);
    b.reset(fds[1]);
    return true;
}

void set_recv_timeout(int fd, long long ms) {
    timeval tv{};
    if (ms > 0) {
        tv.tv_sec = static_cast<time_t>(ms / 1000);
        tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    }
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

int wait_readable(int fd_a, int fd_b, int timeout_ms) {
    pollfd fds[2];
    nfds_t n = 0;
    if (fd_a >= 0) fds[n++] = pollfd{fd_a, POLLIN, 0};
    if (fd_b >= 0) fds[n++] = pollfd{fd_b, POLLIN, 0};
    if (n == 0) return -1;
    for (;;) {
        const int rc = ::poll(fds, n, timeout_ms);
        if (rc < 0 && errno == EINTR) continue;
        if (rc <= 0) return -1;
        for (nfds_t i = 0; i < n; ++i) {
            if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                return fds[i].fd;
        }
        return -1;
    }
}

} // namespace psaflow::net
