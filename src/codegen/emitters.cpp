#include <sstream>

#include "ast/builder.hpp"
#include "ast/clone.hpp"
#include "ast/printer.hpp"
#include "codegen/codegen.hpp"
#include "codegen/emit_util.hpp"
#include "meta/query.hpp"
#include "support/error.hpp"
#include "support/string_util.hpp"
#include "transform/rewrite.hpp"

namespace psaflow::codegen {

using namespace psaflow::ast;

const char* to_string(TargetKind kind) {
    switch (kind) {
        case TargetKind::None: return "reference";
        case TargetKind::CpuOpenMp: return "omp";
        case TargetKind::CpuGpu: return "hip";
        case TargetKind::CpuFpga: return "oneapi";
    }
    return "?";
}

std::string DesignSpec::design_name() const {
    std::string device_tag;
    switch (device) {
        case platform::DeviceId::Epyc7543: device_tag = "epyc"; break;
        case platform::DeviceId::Gtx1080Ti: device_tag = "gtx1080ti"; break;
        case platform::DeviceId::Rtx2080Ti: device_tag = "rtx2080ti"; break;
        case platform::DeviceId::Arria10: device_tag = "arria10"; break;
        case platform::DeviceId::Stratix10: device_tag = "stratix10"; break;
    }
    if (target == TargetKind::None) return app_name + "-reference";
    return app_name + "-" + to_string(target) + "-" + device_tag;
}

namespace {

/// Print the statements of `block` at `depth` without the surrounding
/// braces.
std::string body_stmts(const Block& block, int depth) {
    std::string out;
    for (const auto& s : block.stmts) out += to_source(*s, depth);
    return out;
}

/// "long long px_len, long long py_len" — explicit buffer extents for the
/// generated management code (sized by the data in/out analysis at design
/// generation time; the developer would otherwise write these by hand).
std::string len_params(const Function& kernel) {
    std::string out;
    for (const Param* p : array_params(kernel)) {
        if (!out.empty()) out += ", ";
        out += "long long " + p->name + "_len";
    }
    return out;
}

// ========================================================= OpenMP =========

std::string emit_openmp(const Module& module, const DesignSpec& spec) {
    std::ostringstream os;
    os << banner(spec.app_name + ": OpenMP multi-thread CPU design",
                 {"target: " + std::string(platform::to_string(spec.device)),
                  "num_threads: " + std::to_string(spec.omp_threads) +
                      " (OMP Num. Threads DSE)"});
    os << "#include <cmath>\n";
    os << "#include <omp.h>\n\n";
    os << to_source(module);
    return os.str();
}

// ============================================================ HIP =========

/// Rewrite, inside `block`, every access `arr[j]` (for a staged array and
/// exactly the inner induction variable) into `arr_tile[jt]`.
void stage_tile_accesses(Block& block,
                         const std::vector<std::string>& staged,
                         const std::string& inner_var) {
    for (auto& stmt : block.stmts) {
        transform::for_each_expr_slot(*stmt, [&](ExprPtr& slot) {
            auto* ix = dyn_cast<Index>(slot.get());
            if (ix == nullptr) return;
            const auto* base = dyn_cast<Ident>(ix->base.get());
            const auto* idx = dyn_cast<Ident>(ix->index.get());
            if (base == nullptr || idx == nullptr || idx->name != inner_var)
                return;
            for (const auto& name : staged) {
                if (base->name == name) {
                    slot = build::index(name + "_tile", build::ident("jt"));
                    return;
                }
            }
        });
    }
}

std::string hip_kernel_body(const Function& kernel,
                            const sema::TypeInfo& types,
                            const DesignSpec& spec, const For& outer) {
    std::ostringstream os;
    const std::string& v = outer.var;
    const std::string limit = to_source(*outer.limit);

    os << "    const int " << v
       << " = blockIdx.x * blockDim.x + threadIdx.x;\n";

    auto inner_loops = meta::inner_for_loops(const_cast<For&>(outer));
    const bool tiled = !spec.shared_arrays.empty() && !inner_loops.empty();

    if (!tiled) {
        os << "    if (" << v << " < " << limit << ") {\n";
        os << body_stmts(*outer.body, 2);
        os << "    }\n";
        return os.str();
    }

    // Shared-memory staging of broadcast arrays around the first inner loop
    // (the "Introduce Shared Mem Buf" task).
    const For& inner = *inner_loops.front();
    const std::string& j = inner.var;
    const std::string jlimit = to_source(*inner.limit);
    const int bs = spec.block_size > 0 ? spec.block_size : 256;

    for (const auto& name : spec.shared_arrays) {
        const Type elem = types.var_type(kernel, name).elem;
        os << "    __shared__ " << to_string(elem) << " " << name << "_tile["
           << bs << "];\n";
    }

    // Statements before / after the inner loop.
    std::string pre;
    std::string post;
    bool seen_inner = false;
    for (const auto& s : outer.body->stmts) {
        if (s.get() == static_cast<const Stmt*>(&inner)) {
            seen_inner = true;
            continue;
        }
        (seen_inner ? post : pre) += to_source(*s, 1);
    }
    os << pre;

    os << "    for (int j0 = 0; j0 < " << jlimit << "; j0 += " << bs
       << ") {\n";
    os << "        if (j0 + (int)threadIdx.x < " << jlimit << ") {\n";
    for (const auto& name : spec.shared_arrays) {
        os << "            " << name << "_tile[threadIdx.x] = " << name
           << "[j0 + threadIdx.x];\n";
    }
    os << "        }\n";
    os << "        __syncthreads();\n";
    os << "        const int jt_max = (" << jlimit << " - j0 < " << bs
       << ") ? (" << jlimit << " - j0) : " << bs << ";\n";
    os << "        if (" << v << " < " << limit << ") {\n";
    os << "            for (int jt = 0; jt < jt_max; jt = jt + 1) {\n";

    // Inner body: staged accesses go to the tiles, the induction variable
    // becomes j0 + jt everywhere else.
    BlockPtr inner_body = clone_block(*inner.body);
    stage_tile_accesses(*inner_body, spec.shared_arrays, j);
    auto j_repl = build::add(build::ident("j0"), build::ident("jt"));
    transform::substitute_ident(*inner_body, j, *j_repl);
    os << body_stmts(*inner_body, 4);

    os << "            }\n";
    os << "        }\n";
    os << "        __syncthreads();\n";
    os << "    }\n";
    os << "    if (" << v << " < " << limit << ") {\n";
    os << indent_lines(post, 4) << (post.empty() ? "" : "");
    os << "    }\n";
    return os.str();
}

std::string emit_hip(const Module& module, const sema::TypeInfo& types,
                     const DesignSpec& spec) {
    const Function* kernel = module.find_function(spec.kernel_name);
    ensure(kernel != nullptr, "emit_hip: kernel '" + spec.kernel_name +
                                  "' not found in module");
    const For& outer = kernel_outer_loop(*kernel);

    std::vector<std::string> notes = {
        "target device: " + std::string(platform::to_string(spec.device)),
        "blocksize: " + std::to_string(spec.block_size) + " (blocksize DSE)",
        std::string("pinned host memory: ") +
            (spec.pinned_host_memory ? "yes (hipHostMalloc)" : "no"),
        std::string("single precision: ") +
            (spec.single_precision ? "yes" : "no"),
    };
    if (!spec.shared_arrays.empty())
        notes.push_back("shared-memory staging: " +
                        join(spec.shared_arrays, ", "));

    std::ostringstream os;
    os << banner(spec.app_name + ": HIP CPU+GPU design", notes);
    os << "#include <hip/hip_runtime.h>\n";
    os << "#include <cmath>\n";
    os << "#include <cstdio>\n";
    os << "#include <cstdlib>\n\n";
    os << "#define HIP_CHECK(cmd)                                       \\\n"
          "    do {                                                     \\\n"
          "        hipError_t hip_err_ = (cmd);                         \\\n"
          "        if (hip_err_ != hipSuccess) {                        \\\n"
          "            fprintf(stderr, \"HIP error %s at %s:%d\\n\",    \\\n"
          "                    hipGetErrorString(hip_err_),             \\\n"
          "                    __FILE__, __LINE__);                     \\\n"
          "            exit(EXIT_FAILURE);                              \\\n"
          "        }                                                    \\\n"
          "    } while (0)\n\n";

    if (spec.specialised_math) {
        os << "// Specialised device math (Employ Specialised Math Fns):\n";
        os << "#define expf(x) __expf(x)\n";
        os << "#define logf(x) __logf(x)\n";
        os << "#define powf(x, y) __powf((x), (y))\n\n";
    }

    // ---- device kernel -----------------------------------------------------
    os << "__global__ void " << spec.kernel_name << "_gpu("
       << param_list(*kernel) << ") {\n";
    os << hip_kernel_body(*kernel, types, spec, outer);
    os << "}\n\n";

    // ---- host wrapper --------------------------------------------------
    const auto arrays = array_params(*kernel);
    os << "void " << spec.kernel_name << "(" << len_params(*kernel)
       << (arrays.empty() ? "" : ", ") << param_list(*kernel) << ") {\n";
    for (const Param* p : arrays) {
        const std::string t = to_string(p->type.elem);
        os << "    " << t << "* d_" << p->name << " = nullptr;\n";
        os << "    HIP_CHECK(hipMalloc(&d_" << p->name << ", " << p->name
           << "_len * sizeof(" << t << ")));\n";
    }
    if (spec.pinned_host_memory) {
        os << "    // Host buffers are expected pinned (hipHostMalloc) by "
              "the caller;\n"
           << "    // transfers below then run at full PCIe bandwidth.\n";
    }
    auto staged = [&](const std::vector<std::string>& list,
                      const std::string& name) {
        if (list.empty()) return true; // no analysis: stage everything
        for (const auto& entry : list) {
            if (entry == name) return true;
        }
        return false;
    };
    for (const Param* p : arrays) {
        if (!staged(spec.copy_in, p->name)) {
            os << "    // " << p->name
               << ": write-only on the device, no host->device copy\n";
            continue;
        }
        os << "    HIP_CHECK(hipMemcpy(d_" << p->name << ", " << p->name
           << ", " << p->name << "_len * sizeof(" << to_string(p->type.elem)
           << "), hipMemcpyHostToDevice));\n";
    }
    const int bs = spec.block_size > 0 ? spec.block_size : 256;
    os << "    const int block_size = " << bs << ";\n";
    os << "    const long long grid_size =\n"
       << "        (" << to_source(*outer.limit)
       << " + block_size - 1) / block_size;\n";
    os << "    hipLaunchKernelGGL(" << spec.kernel_name
       << "_gpu, dim3(grid_size), dim3(block_size), 0, 0";
    for (const auto& p : kernel->params) {
        os << ",\n                       "
           << (p->type.is_pointer ? "d_" + p->name : p->name);
    }
    os << ");\n";
    os << "    HIP_CHECK(hipGetLastError());\n";
    os << "    HIP_CHECK(hipDeviceSynchronize());\n";
    for (const Param* p : arrays) {
        if (!staged(spec.copy_out, p->name)) {
            os << "    // " << p->name
               << ": read-only on the device, no device->host copy\n";
            continue;
        }
        os << "    HIP_CHECK(hipMemcpy(" << p->name << ", d_" << p->name
           << ", " << p->name << "_len * sizeof(" << to_string(p->type.elem)
           << "), hipMemcpyDeviceToHost));\n";
    }
    for (const Param* p : arrays) {
        os << "    HIP_CHECK(hipFree(d_" << p->name << "));\n";
    }
    os << "}\n\n";

    os << "// ---- host-side application code "
          "(unchanged reference logic) ----\n";
    os << emit_other_functions(module, spec.kernel_name);
    return os.str();
}

// ========================================================= oneAPI =========

std::string emit_oneapi(const Module& module, const sema::TypeInfo& types,
                        const DesignSpec& spec) {
    (void)types;
    const Function* kernel = module.find_function(spec.kernel_name);
    ensure(kernel != nullptr, "emit_oneapi: kernel '" + spec.kernel_name +
                                  "' not found in module");
    const For& outer = kernel_outer_loop(*kernel);
    const auto arrays = array_params(*kernel);

    std::vector<std::string> notes = {
        "target device: " + std::string(platform::to_string(spec.device)),
        "outer pipeline unroll: " + std::to_string(spec.unroll) +
            " (Unroll Until Overmap DSE)",
        std::string("data transfer: ") +
            (spec.zero_copy ? "zero-copy host memory (USM)"
                            : "SYCL buffers over PCIe"),
        std::string("single precision: ") +
            (spec.single_precision ? "yes" : "no"),
    };
    if (!spec.synthesizable)
        notes.push_back("WARNING: design overmaps the device even at "
                        "unroll 1 — not synthesizable");

    std::ostringstream os;
    os << banner(spec.app_name + ": oneAPI CPU+FPGA design", notes);
    os << "#include <sycl/sycl.hpp>\n";
    os << "#include <sycl/ext/intel/fpga_extensions.hpp>\n";
    os << "#include <cmath>\n";
    os << "#include <cstdio>\n";
    os << "#include <cstdlib>\n\n";
    os << "class " << spec.kernel_name << "_id;\n\n";
    os << "static auto exception_handler = [](sycl::exception_list elist) "
          "{\n"
          "    for (std::exception_ptr const& e : elist) {\n"
          "        try {\n"
          "            std::rethrow_exception(e);\n"
          "        } catch (sycl::exception const& ex) {\n"
          "            fprintf(stderr, \"SYCL exception: %s\\n\", "
          "ex.what());\n"
          "            exit(EXIT_FAILURE);\n"
          "        }\n"
          "    }\n"
          "};\n\n";

    os << "void " << spec.kernel_name << "(" << len_params(*kernel)
       << (arrays.empty() ? "" : ", ") << param_list(*kernel) << ") {\n";
    os << "#if defined(FPGA_EMULATOR)\n";
    os << "    sycl::ext::intel::fpga_emulator_selector selector;\n";
    os << "#else\n";
    os << "    sycl::ext::intel::fpga_selector selector;\n";
    os << "#endif\n";
    os << "    sycl::queue q(selector, exception_handler);\n";

    const int unroll = spec.unroll > 0 ? spec.unroll : 1;
    if (spec.zero_copy) {
        // Stratix10: unified shared memory — the kernel reads host memory
        // in place; no bulk copies.
        os << "\n    // Zero-copy data transfer (USM): host allocations are\n"
              "    // accessed in place by the FPGA; no hipMemcpy-style "
              "staging.\n";
        for (const Param* p : arrays) {
            const std::string t = to_string(p->type.elem);
            os << "    " << t << "* " << p->name
               << "_usm = sycl::malloc_host<" << t << ">(" << p->name
               << "_len, q);\n";
            os << "    for (long long usm_i = 0; usm_i < " << p->name
               << "_len; ++usm_i) " << p->name << "_usm[usm_i] = " << p->name
               << "[usm_i];\n";
        }
        os << "\n    q.submit([&](sycl::handler& h) {\n";
        os << "        h.single_task<" << spec.kernel_name
           << "_id>([=]() [[intel::kernel_args_restrict]] {\n";
        os << "            #pragma unroll " << unroll << "\n";
        // Print the outer loop with USM pointer names.
        auto loop_clone = clone_stmt(outer);
        for (const Param* p : arrays) {
            // arr -> arr_usm applies to subscript bases only: rename idents
            // used as Index bases.
            walk(*loop_clone, [&](Node& n) {
                if (auto* ix = dyn_cast<Index>(&n)) {
                    if (auto* base = dyn_cast<Ident>(ix->base.get());
                        base != nullptr && base->name == p->name)
                        base->name = p->name + "_usm";
                }
                return true;
            });
        }
        os << to_source(*loop_clone, 3);
        os << "        });\n";
        os << "    });\n";
        os << "    q.wait();\n\n";
        for (const Param* p : arrays) {
            os << "    for (long long usm_i = 0; usm_i < " << p->name
               << "_len; ++usm_i) " << p->name << "[usm_i] = " << p->name
               << "_usm[usm_i];\n";
            os << "    sycl::free(" << p->name << "_usm, q);\n";
        }
    } else {
        // Arria10: SYCL buffers, copied over PCIe at scope boundaries.
        os << "    {\n";
        for (const Param* p : arrays) {
            const std::string t = to_string(p->type.elem);
            os << "        sycl::buffer<" << t << ", 1> " << p->name
               << "_buf(" << p->name << ", sycl::range<1>(" << p->name
               << "_len));\n";
        }
        os << "        q.submit([&](sycl::handler& h) {\n";
        for (const Param* p : arrays) {
            os << "            auto " << p->name << "_acc = " << p->name
               << "_buf.get_access<sycl::access::mode::read_write>(h);\n";
        }
        os << "            h.single_task<" << spec.kernel_name
           << "_id>([=]() {\n";
        os << "                #pragma unroll " << unroll << "\n";
        auto loop_clone = clone_stmt(outer);
        for (const Param* p : arrays) {
            walk(*loop_clone, [&](Node& n) {
                if (auto* ix = dyn_cast<Index>(&n)) {
                    if (auto* base = dyn_cast<Ident>(ix->base.get());
                        base != nullptr && base->name == p->name)
                        base->name = p->name + "_acc";
                }
                return true;
            });
        }
        os << to_source(*loop_clone, 4);
        os << "            });\n";
        os << "        });\n";
        os << "    } // buffer destructors synchronise data back to the "
              "host\n";
        os << "    q.wait();\n";
    }
    os << "}\n\n";

    os << "// ---- host-side application code "
          "(unchanged reference logic) ----\n";
    os << emit_other_functions(module, spec.kernel_name);
    return os.str();
}

// ====================================================== reference ==========

std::string emit_reference(const Module& module, const DesignSpec& spec) {
    std::ostringstream os;
    os << banner(spec.app_name + ": unmodified reference design",
                 {"the PSA strategy found no profitable mapping"});
    os << "#include <cmath>\n\n";
    os << to_source(module);
    return os.str();
}

} // namespace

std::string emit_design(const Module& module, const sema::TypeInfo& types,
                        const DesignSpec& spec) {
    switch (spec.target) {
        case TargetKind::CpuOpenMp: return emit_openmp(module, spec);
        case TargetKind::CpuGpu: return emit_hip(module, types, spec);
        case TargetKind::CpuFpga: return emit_oneapi(module, types, spec);
        case TargetKind::None: return emit_reference(module, spec);
    }
    throw Error("emit_design: bad target");
}

double loc_delta(const std::string& design_source,
                 const std::string& reference_source) {
    const int design = count_loc(design_source);
    const int reference = count_loc(reference_source);
    ensure(reference > 0, "loc_delta: empty reference source");
    return static_cast<double>(design - reference) /
           static_cast<double>(reference);
}

} // namespace psaflow::codegen
