// Shared helpers for the design emitters.
#pragma once

#include <string>
#include <vector>

#include "ast/nodes.hpp"

namespace psaflow::codegen {

/// C/C++ rendering of an HLC type.
[[nodiscard]] std::string c_type(const ast::ValueType& type);

/// "int n, double* px, double* py" for a function's parameter list.
[[nodiscard]] std::string param_list(const ast::Function& fn);

/// Pointer (array) parameters of `fn`, in declaration order.
[[nodiscard]] std::vector<const ast::Param*>
array_params(const ast::Function& fn);

/// Scalar parameters of `fn`, in declaration order.
[[nodiscard]] std::vector<const ast::Param*>
scalar_params(const ast::Function& fn);

/// The kernel's single outermost loop (the offloaded iteration space).
/// Throws when the kernel does not have exactly one outermost loop.
[[nodiscard]] ast::For& kernel_outer_loop(const ast::Function& kernel);

/// All functions of `module` except `skip`, printed as plain C++ (HLC is a
/// C subset). Used for the host-side remainder of generated designs.
[[nodiscard]] std::string emit_other_functions(const ast::Module& module,
                                               const std::string& skip);

/// A banner comment block for generated designs.
[[nodiscard]] std::string banner(const std::string& title,
                                 const std::vector<std::string>& lines);

} // namespace psaflow::codegen
