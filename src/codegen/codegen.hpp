// Design emission: render the final, human-readable design source for a
// (module, DesignSpec) pair. Like Artisan, psaflow's output "closely
// mirrors the source-code as written" — generated designs are complete
// translation units a developer could hand-tune.
//
// The emitted text is measured by the Table I LOC accounting; structural
// properties (one hipMalloc per array parameter, the DSE-chosen blocksize
// and unroll factors, USM vs. buffer transfers) are asserted by tests.
#pragma once

#include <string>

#include "ast/nodes.hpp"
#include "codegen/design_spec.hpp"
#include "sema/type_check.hpp"

namespace psaflow::codegen {

/// Emit the design. Dispatches on spec.target:
///   - CpuOpenMp: the HLC module itself (pragmas included) with a header;
///   - CpuGpu:    HIP dialect — __global__ kernel + host management code;
///   - CpuFpga:   oneAPI/SYCL dialect — single_task kernel + queue set-up;
///   - None:      the unmodified reference source.
[[nodiscard]] std::string emit_design(const ast::Module& module,
                                      const sema::TypeInfo& types,
                                      const DesignSpec& spec);

/// LOC of the emitted design minus LOC of `reference_source` (Table I's
/// "added lines of code" metric), as a fraction (0.36 == +36%).
[[nodiscard]] double loc_delta(const std::string& design_source,
                               const std::string& reference_source);

} // namespace psaflow::codegen
