// DesignSpec: every decision the PSA-flow accumulated for one design —
// target, device, DSE-chosen parameters and applied optimisations. The
// emitters render a complete design source from (module AST, spec); the
// perf layer prices the same spec on the device models.
#pragma once

#include <string>
#include <vector>

#include "platform/devices.hpp"

namespace psaflow::codegen {

enum class TargetKind {
    None,      ///< design-flow terminated without offload
    CpuOpenMp, ///< OpenMP multi-thread CPU design
    CpuGpu,    ///< HIP CPU+GPU design
    CpuFpga,   ///< oneAPI CPU+FPGA design
};

[[nodiscard]] const char* to_string(TargetKind kind);

struct DesignSpec {
    std::string app_name;
    std::string kernel_name;

    TargetKind target = TargetKind::None;
    platform::DeviceId device = platform::DeviceId::Epyc7543;

    // --- CPU (OpenMP) ---
    int omp_threads = 0;

    // --- GPU (HIP) ---
    int block_size = 0;
    /// Directional staging decisions from the data in/out analysis: arrays
    /// read by the kernel are copied in, written arrays copied out. Empty
    /// lists mean "stage everything both ways" (analysis unavailable).
    std::vector<std::string> copy_in;
    std::vector<std::string> copy_out;
    bool pinned_host_memory = false;
    bool specialised_math = false; ///< __expf-style intrinsics
    std::vector<std::string> shared_arrays;

    // --- FPGA (oneAPI) ---
    int unroll = 0;
    bool zero_copy = false; ///< USM host allocations (Stratix10)
    bool synthesizable = true;

    // --- shared ---
    bool single_precision = false;

    /// Short design identifier, e.g. "nbody-hip-rtx2080ti".
    [[nodiscard]] std::string design_name() const;
};

} // namespace psaflow::codegen
