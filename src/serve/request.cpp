#include "serve/request.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "apps/apps.hpp"
#include "flow/manifest.hpp"
#include "support/cas/cas.hpp"
#include "support/error.hpp"

namespace psaflow::serve {

namespace {

[[nodiscard]] bool valid_mode(const std::string& mode) {
    return mode == "informed" || mode == "uninformed";
}

} // namespace

const char* to_string(Priority priority) {
    return priority == Priority::Batch ? "batch" : "interactive";
}

const char* to_string(ErrorKind kind) {
    switch (kind) {
    case ErrorKind::None: return "none";
    case ErrorKind::BadRequest: return "bad_request";
    case ErrorKind::Overloaded: return "overloaded";
    case ErrorKind::DeadlineExceeded: return "deadline_exceeded";
    case ErrorKind::Internal: return "internal";
    }
    return "internal";
}

ErrorKind error_kind_from_string(const std::string& name) {
    if (name == "none") return ErrorKind::None;
    if (name == "bad_request") return ErrorKind::BadRequest;
    if (name == "overloaded") return ErrorKind::Overloaded;
    if (name == "deadline_exceeded") return ErrorKind::DeadlineExceeded;
    return ErrorKind::Internal;
}

std::optional<std::string> parse_compile_request(const json::Value& entry,
                                                 CompileRequest& out) {
    if (entry.kind != json::Value::Kind::Object)
        return "request is not an object";
    if (const json::Value* v = entry.find("app")) out.app = v->string_or("");
    if (out.app.empty()) return "request has no \"app\"";
    if (const json::Value* v = entry.find("mode"))
        out.mode = v->string_or(out.mode);
    if (!valid_mode(out.mode))
        return "mode must be 'informed' or 'uninformed'";
    if (const json::Value* v = entry.find("budget"))
        out.budget = v->number_or(out.budget);
    if (const json::Value* v = entry.find("threshold_x"))
        out.threshold_x = v->number_or(out.threshold_x);
    if (const json::Value* v = entry.find("out"))
        out.out_dir = v->string_or(out.out_dir);
    if (const json::Value* v = entry.find("deadline_ms"))
        out.deadline_ms =
            static_cast<long long>(v->number_or(double(out.deadline_ms)));
    if (out.deadline_ms < 0) return "deadline_ms must be >= 0";
    if (const json::Value* v = entry.find("priority")) {
        const std::string name = v->string_or("");
        if (name == "interactive") out.priority = Priority::Interactive;
        else if (name == "batch") out.priority = Priority::Batch;
        else return "priority must be 'interactive' or 'batch'";
    }
    if (const json::Value* v = entry.find("flow")) {
        json::Value doc;
        if (v->is_object()) {
            doc = *v;
        } else if (v->is_string()) {
            std::ifstream file(v->string_value);
            if (!file)
                return "flow: cannot read '" + v->string_value + "'";
            std::stringstream buffer;
            buffer << file.rdbuf();
            std::string parse_error;
            auto parsed = json::parse(buffer.str(), &parse_error);
            if (!parsed.has_value())
                return "flow: " + v->string_value + ": " + parse_error;
            doc = std::move(*parsed);
        } else {
            return "flow must be a manifest object or a file path";
        }
        try {
            (void)flow::from_manifest(doc);
        } catch (const Error& e) {
            return std::string(e.what());
        }
        out.flow_json = json::dump(doc);
    }
    return std::nullopt;
}

std::uint64_t affinity_digest(const CompileRequest& req) {
    cas::Hasher hasher;
    hasher.str("request-affinity");
    // Hash the module *content*, not the request's name for it: every warm
    // artifact (interp profiles, design cache entries) keys off the source
    // text, so two names for identical sources still co-locate.
    try {
        hasher.str(apps::application_by_name(req.app).source);
    } catch (const Error&) {
        hasher.str(req.app); // unknown app: still deterministic routing
    }
    hasher.str(req.flow_json);
    return hasher.digest();
}

std::optional<std::string> parse_manifest(const json::Value& doc,
                                          ManifestDefaults& defaults,
                                          std::vector<CompileRequest>& requests) {
    const json::Value* list = nullptr;
    if (doc.kind == json::Value::Kind::Array) {
        list = &doc;
    } else if (doc.kind == json::Value::Kind::Object) {
        if (const json::Value* v = doc.find("jobs"))
            defaults.jobs =
                static_cast<long long>(v->number_or(double(defaults.jobs)));
        if (const json::Value* v = doc.find("cache_dir"))
            defaults.cache_dir = v->string_or(defaults.cache_dir);
        if (const json::Value* v = doc.find("out"))
            defaults.out_root = v->string_or(defaults.out_root);
        list = doc.find("requests");
    }
    if (list == nullptr || list->kind != json::Value::Kind::Array)
        return "expected a top-level array or an object with a \"requests\" "
               "array";

    for (std::size_t i = 0; i < list->elements.size(); ++i) {
        CompileRequest req;
        if (auto error = parse_compile_request(list->elements[i], req))
            return "request " + std::to_string(i) + ": " + *error;
        if (req.out_dir.empty())
            req.out_dir = (std::filesystem::path(defaults.out_root) /
                           (req.app + "-" + std::to_string(i)))
                              .string();
        requests.push_back(std::move(req));
    }
    return std::nullopt;
}

} // namespace psaflow::serve
