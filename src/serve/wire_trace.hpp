// Distributed trace context on the serve wire (W3C-traceparent in spirit,
// JSON in shape). A traced request carries
//
//   "trace": {"trace_id": "<16 hex>", "parent_span": <number>}
//
// where trace_id is the request's 64-bit distributed trace id (minted once
// by the originating tool) and parent_span is the span id the *next* hop
// should parent its work under. Each relay hop rewrites parent_span to a
// span it mints for itself (trace::wire_span_id — process-salted so hops
// cannot collide) before forwarding, and wraps the spans the downstream
// hop returns inside its own measured window on the way back.
//
// A response to a traced request carries
//
//   "trace": {"trace_id": "<16 hex>", "spans": [{name, category, id,
//             parent, thread, start_us, duration_us, work_units}, ...]}
//
// with span starts based at the *responder's* t=0 and every root span
// parented on the parent_span the requester supplied. The requester calls
// nest_spans to center that child timeline inside the wall-clock window it
// measured around the round trip, so the assembled tree nests monotonely
// at every hop without any cross-host clock agreement. Untraced requests
// carry no "trace" member and responses to them never grow one — the
// router's verbatim-relay invariant and response byte-stability for
// existing clients are preserved.
#pragma once

#include <cstdint>
#include <vector>

#include "support/json.hpp"
#include "support/trace.hpp"

namespace psaflow::serve {

/// The trace coordinates one hop hands the next.
struct WireTraceContext {
    std::uint64_t trace_id = 0;    ///< 0 = request is not traced
    std::uint64_t parent_span = 0; ///< span the next hop parents under

    [[nodiscard]] bool traced() const { return trace_id != 0; }
};

/// A fresh nonzero 64-bit distributed trace id (clock + pid + sequence
/// through a splitmix finaliser — unique enough to never collide between
/// the requests one cluster serves concurrently).
[[nodiscard]] std::uint64_t mint_trace_id();

/// Install `ctx` as the request document's "trace" member (replacing any
/// existing one). No-op when ctx is untraced.
void set_trace_member(json::Value& doc, const WireTraceContext& ctx);

/// Read a request document's "trace" member. Returns an untraced context
/// when the member is absent or malformed — a bad trace header degrades
/// to an untraced request rather than failing it.
[[nodiscard]] WireTraceContext trace_member(const json::Value& doc);

/// Attach the responder's span summary to a response document:
/// "trace": {"trace_id", "spans": [...]}.
void attach_response_trace(json::Value& response, std::uint64_t trace_id,
                           const std::vector<trace::Span>& spans);

/// The trace id a response carries (0 when it has none).
[[nodiscard]] std::uint64_t response_trace_id(const json::Value& response);

/// Decode the span summary from a response's "trace" member (empty when
/// absent; spans with malformed members are skipped).
[[nodiscard]] std::vector<trace::Span>
response_trace_spans(const json::Value& response);

/// Fold a downstream hop's span set (based at its own t=0) into the
/// requester's timeline: shift the children so they sit centered inside
/// `wrapper`'s [start_us, start_us + duration_us) window, extend the
/// wrapper when the children report more wall time than the requester
/// measured (clock skew — nesting stays monotone either way), then append
/// the wrapper itself. The children's root spans must already be parented
/// on wrapper.id (that is the parent_span the requester sent).
void nest_spans(std::vector<trace::Span>& children, trace::Span wrapper);

} // namespace psaflow::serve
