#include "serve/protocol.hpp"

#include "support/string_util.hpp"

namespace psaflow::serve {

std::optional<std::string> parse_wire_request(const json::Value& doc,
                                              WireRequest& out) {
    if (doc.kind != json::Value::Kind::Object)
        return "request is not an object";
    if (const json::Value* v = doc.find("schema_version")) {
        if (!v->is_number() ||
            v->number_value != double(kSchemaVersion))
            return "unsupported schema_version " + json::dump(*v) +
                   " (supported: " + std::to_string(kSchemaVersion) + ")";
    }
    std::string type = "compile";
    if (const json::Value* v = doc.find("type")) type = v->string_or("");
    out.trace = trace_member(doc);

    if (type == "compile") {
        out.type = RequestType::Compile;
        return parse_compile_request(doc, out.compile);
    }
    if (type == "stats") {
        out.type = RequestType::Stats;
        return std::nullopt;
    }
    if (type == "metrics") {
        out.type = RequestType::Metrics;
        return std::nullopt;
    }
    if (type == "logs") {
        out.type = RequestType::Logs;
        if (const json::Value* v = doc.find("max"))
            out.logs_max = static_cast<long long>(v->number_or(100.0));
        if (const json::Value* v = doc.find("min_level"))
            out.logs_min_level = v->string_or("");
        if (out.logs_max < 0) return "logs: max must be >= 0";
        return std::nullopt;
    }
    if (type == "ping") {
        out.type = RequestType::Ping;
        return std::nullopt;
    }
    if (type == "cas_get" || type == "cas_put") {
        out.type = type == "cas_get" ? RequestType::CasGet
                                     : RequestType::CasPut;
        const json::Value* key = doc.find("key");
        if (key == nullptr || !key->is_string())
            return type + ": missing string \"key\"";
        const auto parsed_key = parse_hex_u64(key->string_value);
        if (!parsed_key.has_value())
            return type + ": key must be 16 hex digits";
        out.cas_key = *parsed_key;
        if (out.type == RequestType::CasPut) {
            const json::Value* payload = doc.find("payload");
            if (payload == nullptr || !payload->is_string())
                return "cas_put: missing string \"payload\"";
            auto decoded = base64_decode(payload->string_value);
            if (!decoded.has_value())
                return "cas_put: payload is not valid base64";
            out.cas_payload = std::move(*decoded);
        }
        return std::nullopt;
    }
    if (type == "flight") {
        out.type = RequestType::Flight;
        if (const json::Value* v = doc.find("max"))
            out.flight_max = static_cast<long long>(v->number_or(0.0));
        if (out.flight_max < 0) return "flight: max must be >= 0";
        return std::nullopt;
    }
    if (type == "cluster_stats") {
        out.type = RequestType::ClusterStats;
        return std::nullopt;
    }
    if (type == "cluster_metrics") {
        out.type = RequestType::ClusterMetrics;
        return std::nullopt;
    }
    if (type == "sleep") {
        out.type = RequestType::Sleep;
        if (const json::Value* v = doc.find("ms"))
            out.sleep_ms = static_cast<long long>(v->number_or(0.0));
        if (const json::Value* v = doc.find("deadline_ms"))
            out.deadline_ms = static_cast<long long>(v->number_or(0.0));
        if (out.sleep_ms < 0 || out.deadline_ms < 0)
            return "sleep: ms and deadline_ms must be >= 0";
        return std::nullopt;
    }
    return "unknown request type '" + type + "'";
}

json::Value make_error_response(ErrorKind kind, const std::string& message,
                                long long retry_after_ms) {
    json::Value response = json::Value::object();
    response.set("ok", json::Value::boolean(false));
    response.set("schema_version",
                 json::Value::number(double(kSchemaVersion)));
    response.set("error_kind", json::Value::string(to_string(kind)));
    response.set("error", json::Value::string(message));
    if (retry_after_ms > 0)
        response.set("retry_after_ms",
                     json::Value::number(double(retry_after_ms)));
    return response;
}

json::Value make_compile_response(const CompileRequest& req,
                                  const CompileOutcome& outcome) {
    json::Value response = json::Value::object();
    response.set("ok", json::Value::boolean(true));
    response.set("schema_version",
                 json::Value::number(double(kSchemaVersion)));
    response.set("type", json::Value::string("compile"));
    response.set("app", json::Value::string(req.app));
    response.set("mode", json::Value::string(req.mode));
    response.set("design_count",
                 json::Value::number(double(outcome.design_count)));
    response.set("decision_count",
                 json::Value::number(double(outcome.decisions.size())));
    response.set("best_speedup", json::Value::number(outcome.best_speedup));
    response.set("reference_seconds",
                 json::Value::number(outcome.reference_seconds));
    response.set("summary_path", json::Value::string(outcome.summary_path));
    response.set("wall_us", json::Value::number(double(outcome.wall_us)));

    json::Value designs = json::Value::array();
    for (const DesignRow& row : outcome.designs) {
        json::Value design = json::Value::object();
        design.set("name", json::Value::string(row.name));
        design.set("target", json::Value::string(row.target));
        design.set("device", json::Value::string(row.device));
        design.set("synthesizable", json::Value::boolean(row.synthesizable));
        design.set("hotspot_seconds",
                   json::Value::number(row.hotspot_seconds));
        design.set("speedup", json::Value::number(row.speedup));
        design.set("loc_delta", json::Value::number(row.loc_delta));
        design.set("file", json::Value::string(row.filename));
        designs.push(std::move(design));
    }
    response.set("designs", std::move(designs));

    json::Value counters = json::Value::object();
    for (const auto& [name, value] : outcome.counters)
        counters.set(name, json::Value::number(double(value)));
    response.set("counters", std::move(counters));
    return response;
}

json::Value make_cas_get_response(const std::optional<std::string>& payload) {
    json::Value response = json::Value::object();
    response.set("ok", json::Value::boolean(true));
    response.set("schema_version",
                 json::Value::number(double(kSchemaVersion)));
    response.set("type", json::Value::string("cas_get"));
    response.set("found", json::Value::boolean(payload.has_value()));
    if (payload.has_value())
        response.set("payload", json::Value::string(base64_encode(*payload)));
    return response;
}

json::Value make_flight_response(const obs::FlightRecorder& recorder,
                                 long long max_records) {
    json::Value response = json::Value::object();
    response.set("ok", json::Value::boolean(true));
    response.set("schema_version",
                 json::Value::number(double(kSchemaVersion)));
    response.set("type", json::Value::string("flight"));
    response.set("capacity",
                 json::Value::number(double(recorder.capacity())));
    response.set("total", json::Value::number(double(recorder.total())));
    response.set("dropped",
                 json::Value::number(double(recorder.dropped())));
    response.set("slo_breaches",
                 json::Value::number(double(recorder.breaches())));
    response.set("slo_us", json::Value::number(double(recorder.slo_us())));
    json::Value records = json::Value::array();
    const auto snapshot = recorder.snapshot(
        max_records <= 0 ? 0 : static_cast<std::size_t>(max_records));
    for (const obs::FlightRecord& record : snapshot)
        records.push(obs::to_json(record));
    response.set("records", std::move(records));
    return response;
}

json::Value make_cas_put_response(bool stored) {
    json::Value response = json::Value::object();
    response.set("ok", json::Value::boolean(true));
    response.set("schema_version",
                 json::Value::number(double(kSchemaVersion)));
    response.set("type", json::Value::string("cas_put"));
    response.set("stored", json::Value::boolean(stored));
    return response;
}

json::Value make_pong_response() {
    json::Value response = json::Value::object();
    response.set("ok", json::Value::boolean(true));
    response.set("schema_version",
                 json::Value::number(double(kSchemaVersion)));
    response.set("type", json::Value::string("pong"));
    return response;
}

std::optional<ResponseView> parse_response(const json::Value& doc) {
    if (doc.kind != json::Value::Kind::Object) return std::nullopt;
    const json::Value* ok = doc.find("ok");
    if (ok == nullptr || ok->kind != json::Value::Kind::Bool)
        return std::nullopt;

    ResponseView view;
    view.ok = ok->bool_value;
    if (view.ok) {
        view.error_kind = ErrorKind::None;
        return view;
    }
    if (const json::Value* v = doc.find("error_kind"))
        view.error_kind = error_kind_from_string(v->string_or("internal"));
    if (const json::Value* v = doc.find("error"))
        view.error = v->string_or("");
    if (const json::Value* v = doc.find("retry_after_ms"))
        view.retry_after_ms = static_cast<long long>(v->number_or(0.0));
    return view;
}

} // namespace psaflow::serve
