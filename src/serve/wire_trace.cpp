#include "serve/wire_trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>

#include "support/string_util.hpp"

namespace psaflow::serve {

std::uint64_t mint_trace_id() {
    static std::atomic<std::uint64_t> sequence{0};
    std::uint64_t mix = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    mix ^= static_cast<std::uint64_t>(::getpid()) << 32;
    mix += 0x9e3779b97f4a7c15ULL * (sequence.fetch_add(1) + 1);
    mix = (mix ^ (mix >> 30)) * 0xbf58476d1ce4e5b9ULL;
    mix = (mix ^ (mix >> 27)) * 0x94d049bb133111ebULL;
    mix ^= mix >> 31;
    return mix == 0 ? 1 : mix;
}

void set_trace_member(json::Value& doc, const WireTraceContext& ctx) {
    if (!ctx.traced()) return;
    json::Value trace = json::Value::object();
    trace.set("trace_id", json::Value::string(hex_u64(ctx.trace_id)));
    trace.set("parent_span",
              json::Value::number(double(ctx.parent_span)));
    doc.set("trace", std::move(trace));
}

WireTraceContext trace_member(const json::Value& doc) {
    WireTraceContext ctx;
    const json::Value* trace = doc.find("trace");
    if (trace == nullptr || !trace->is_object()) return ctx;
    const json::Value* id = trace->find("trace_id");
    if (id == nullptr || !id->is_string()) return ctx;
    const auto parsed = parse_hex_u64(id->string_value);
    if (!parsed.has_value() || *parsed == 0) return ctx;
    ctx.trace_id = *parsed;
    if (const json::Value* v = trace->find("parent_span"))
        ctx.parent_span = static_cast<std::uint64_t>(v->number_or(0.0));
    return ctx;
}

namespace {

json::Value span_to_value(const trace::Span& span) {
    json::Value v = json::Value::object();
    v.set("name", json::Value::string(span.name));
    v.set("category", json::Value::string(span.category));
    v.set("id", json::Value::number(double(span.id)));
    v.set("parent", json::Value::number(double(span.parent)));
    v.set("thread", json::Value::number(double(span.thread)));
    v.set("start_us", json::Value::number(double(span.start_us)));
    v.set("duration_us", json::Value::number(double(span.duration_us)));
    v.set("work_units", json::Value::number(span.work_units));
    return v;
}

} // namespace

void attach_response_trace(json::Value& response, std::uint64_t trace_id,
                           const std::vector<trace::Span>& spans) {
    json::Value trace = json::Value::object();
    trace.set("trace_id", json::Value::string(hex_u64(trace_id)));
    json::Value list = json::Value::array();
    for (const trace::Span& span : spans) list.push(span_to_value(span));
    trace.set("spans", std::move(list));
    response.set("trace", std::move(trace));
}

std::uint64_t response_trace_id(const json::Value& response) {
    const json::Value* trace = response.find("trace");
    if (trace == nullptr || !trace->is_object()) return 0;
    const json::Value* id = trace->find("trace_id");
    if (id == nullptr || !id->is_string()) return 0;
    return parse_hex_u64(id->string_value).value_or(0);
}

std::vector<trace::Span> response_trace_spans(const json::Value& response) {
    std::vector<trace::Span> spans;
    const json::Value* trace = response.find("trace");
    if (trace == nullptr || !trace->is_object()) return spans;
    const json::Value* list = trace->find("spans");
    if (list == nullptr || !list->is_array()) return spans;
    for (const json::Value& v : list->elements) {
        if (!v.is_object()) continue;
        trace::Span span;
        if (const json::Value* m = v.find("name"))
            span.name = m->string_or("");
        if (const json::Value* m = v.find("category"))
            span.category = m->string_or("");
        if (const json::Value* m = v.find("id"))
            span.id = static_cast<std::uint64_t>(m->number_or(0.0));
        if (const json::Value* m = v.find("parent"))
            span.parent = static_cast<std::uint64_t>(m->number_or(0.0));
        if (const json::Value* m = v.find("thread"))
            span.thread = static_cast<std::uint64_t>(m->number_or(0.0));
        if (const json::Value* m = v.find("start_us"))
            span.start_us = static_cast<std::uint64_t>(m->number_or(0.0));
        if (const json::Value* m = v.find("duration_us"))
            span.duration_us =
                static_cast<std::uint64_t>(m->number_or(0.0));
        if (const json::Value* m = v.find("work_units"))
            span.work_units = m->number_or(0.0);
        if (span.id == 0) continue; // ids are never 0; skip torn entries
        spans.push_back(std::move(span));
    }
    return spans;
}

void nest_spans(std::vector<trace::Span>& children, trace::Span wrapper) {
    std::uint64_t child_max_end = 0;
    for (const trace::Span& child : children)
        child_max_end =
            std::max(child_max_end, child.start_us + child.duration_us);
    std::uint64_t slack = 0;
    if (child_max_end > wrapper.duration_us) {
        // The downstream hop reports more wall time than we measured
        // around the round trip (clock rate skew); grow the wrapper so
        // the children still nest inside it.
        wrapper.duration_us = child_max_end;
    } else {
        // Center the children: the leftover is network + framing time,
        // split evenly between the outbound and return legs.
        slack = (wrapper.duration_us - child_max_end) / 2;
    }
    for (trace::Span& child : children) child.start_us += wrapper.start_us + slack;
    children.push_back(std::move(wrapper));
}

} // namespace psaflow::serve
