#include "serve/server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <thread>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/prometheus.hpp"
#include "serve/service.hpp"
#include "serve/wire_trace.hpp"
#include "support/cas/cas.hpp"

namespace psaflow::serve {

namespace {

/// Histogram summary for the stats document: percentiles for humans plus
/// the raw [floor, count] buckets — the buckets are what lets a router
/// rebuild this histogram (Histogram::from_parts) and merge shards into
/// fleet metrics whose bucket counts sum exactly.
json::Value histogram_value(const Histogram& hist) {
    json::Value out = json::Value::object();
    out.set("count", json::Value::number(double(hist.count())));
    out.set("sum", json::Value::number(double(hist.sum())));
    out.set("min", json::Value::number(double(hist.min())));
    out.set("max", json::Value::number(double(hist.max())));
    out.set("mean", json::Value::number(hist.mean()));
    out.set("p50", json::Value::number(double(hist.percentile(50))));
    out.set("p90", json::Value::number(double(hist.percentile(90))));
    out.set("p99", json::Value::number(double(hist.percentile(99))));
    json::Value buckets = json::Value::array();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        const std::uint64_t n = hist.bucket_count(b);
        if (n == 0) continue;
        json::Value pair = json::Value::array();
        pair.push(json::Value::number(double(Histogram::bucket_floor(b))));
        pair.push(json::Value::number(double(n)));
        buckets.push(std::move(pair));
    }
    out.set("buckets", std::move(buckets));
    return out;
}

[[nodiscard]] double hit_rate(std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

std::uint64_t us_since(std::chrono::steady_clock::time_point start) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

} // namespace

namespace {
DaemonOptions normalized(DaemonOptions options) {
    if (options.workers < 1) options.workers = 1;
    return options;
}
} // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(normalized(std::move(options))),
      queue_(options_.queue_depth == 0 ? 1 : options_.queue_depth,
             kPriorityLanes, static_cast<std::size_t>(options_.workers)) {}

Daemon::~Daemon() {
    notify_shutdown();
    // run() performs the orderly drain; this is the fallback for a daemon
    // that was started but whose run() never ran (tests, early exits).
    queue_.close();
    for (std::thread& worker : workers_)
        if (worker.joinable()) worker.join();
    std::lock_guard lock(readers_mu_);
    for (std::thread& reader : readers_)
        if (reader.joinable()) reader.join();
}

std::optional<std::string> Daemon::start() {
    if (!options_.cache_dir.empty())
        cas::configure(options_.cache_dir, options_.cache_max_bytes);
    if (options_.slo_ms > 0)
        obs::FlightRecorder::global().set_slo_us(
            static_cast<std::uint64_t>(options_.slo_ms) * 1000);

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0) return "cannot create self-pipe";
    wake_read_.reset(pipe_fds[0]);
    wake_write_.reset(pipe_fds[1]);
    ::fcntl(wake_write_.get(), F_SETFL, O_NONBLOCK);

    if (options_.socket_path.empty() && options_.listen_tcp.empty())
        return "no listener configured (need a socket path or --listen)";

    std::string error;
    if (!options_.socket_path.empty()) {
        listen_fd_ = net::listen_unix(options_.socket_path, /*backlog=*/64,
                                      &error);
        if (!listen_fd_.valid()) return error;
    }
    if (!options_.listen_tcp.empty()) {
        auto endpoint = net::parse_endpoint(options_.listen_tcp, &error);
        if (!endpoint.has_value()) return error;
        if (endpoint->kind != net::Endpoint::Kind::Tcp)
            return "--listen expects host:port, got '" + options_.listen_tcp +
                   "'";
        tcp_listen_fd_ = net::listen_tcp(endpoint->host, endpoint->port,
                                         /*backlog=*/64, &error);
        if (!tcp_listen_fd_.valid()) return error;
        tcp_port_ = net::local_port(tcp_listen_fd_.get());
    }

    started_ = std::chrono::steady_clock::now();
    workers_.reserve(static_cast<std::size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        workers_.emplace_back(
            [this, i] { worker_loop(static_cast<std::size_t>(i)); });
    obs::info("serve", "daemon listening",
              {{"socket", options_.socket_path},
               {"tcp", options_.listen_tcp.empty()
                           ? std::string()
                           : "port " + std::to_string(tcp_port_)},
               {"shard", options_.shard_name},
               {"workers", std::to_string(options_.workers)},
               {"queue_depth", std::to_string(options_.queue_depth)}});
    return std::nullopt;
}

void Daemon::run() {
    while (true) {
        const int ready = net::wait_readable_any(
            {listen_fd_.get(), tcp_listen_fd_.get(), wake_read_.get()}, -1);
        const bool is_listener =
            (listen_fd_.valid() && ready == listen_fd_.get()) ||
            (tcp_listen_fd_.valid() && ready == tcp_listen_fd_.get());
        if (!is_listener) break; // shutdown wake (or poll failure)
        net::Fd conn = net::accept_connection(ready);
        if (!conn.valid()) continue;
        {
            std::lock_guard lock(stats_mu_);
            ++counters_.connections;
        }
        std::lock_guard lock(readers_mu_);
        readers_.emplace_back(
            [this, fd = std::move(conn)]() mutable {
                serve_connection(std::move(fd));
            });
    }

    // Drain: stop accepting, finish everything admitted, then leave no
    // trace on disk — the smoke test asserts the socket file is gone.
    shutting_down_.store(true);
    listen_fd_.reset();
    tcp_listen_fd_.reset();
    std::error_code ec;
    if (!options_.socket_path.empty())
        std::filesystem::remove(options_.socket_path, ec);
    queue_.close();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    std::vector<std::thread> readers;
    {
        std::lock_guard lock(readers_mu_);
        readers.swap(readers_);
    }
    for (std::thread& reader : readers) reader.join();
    obs::info("serve", "daemon drained",
              {{"completed", std::to_string(counters().completed)}});
}

void Daemon::notify_shutdown() noexcept {
    shutting_down_.store(true);
    if (wake_write_.valid()) {
        const char byte = 'q';
        [[maybe_unused]] ssize_t rc = ::write(wake_write_.get(), &byte, 1);
    }
}

void Daemon::serve_connection(net::Fd conn) {
    net::set_recv_timeout(conn.get(), options_.recv_timeout_ms);
    while (!shutting_down_.load()) {
        const int ready =
            net::wait_readable(conn.get(), wake_read_.get(), -1);
        if (ready != conn.get()) break; // shutdown wake or poll failure

        std::string payload;
        const net::FrameStatus status = net::read_frame(conn.get(), payload);
        if (status == net::FrameStatus::Eof ||
            status == net::FrameStatus::Error)
            break;
        if (status != net::FrameStatus::Ok) {
            // Torn/oversized frames get a structured complaint; the stream
            // is unsynchronised afterwards, so the connection closes.
            obs::warn("serve", "malformed frame, closing connection",
                      {{"status", net::to_string(status)}});
            const json::Value response = make_error_response(
                ErrorKind::BadRequest,
                std::string("malformed frame: ") + net::to_string(status));
            (void)net::write_frame(conn.get(), json::dump(response));
            break;
        }

        std::string parse_error;
        const auto doc = json::parse(payload, &parse_error);
        std::string response;
        if (!doc.has_value()) {
            {
                std::lock_guard lock(stats_mu_);
                ++counters_.requests;
                ++counters_.bad_requests;
            }
            response = json::dump(make_error_response(
                ErrorKind::BadRequest, "invalid JSON: " + parse_error));
            if (!net::write_frame(conn.get(), response)) break;
            continue;
        }

        WireRequest request;
        auto request_error = parse_wire_request(*doc, request);
        if (!request_error.has_value() &&
            request.type == RequestType::Sleep &&
            !options_.enable_test_endpoints)
            request_error = "unknown request type 'sleep'";
        if (!request_error.has_value() &&
            (request.type == RequestType::ClusterStats ||
             request.type == RequestType::ClusterMetrics))
            request_error = "cluster requests are answered by "
                            "psaflow-router, not a shard";
        {
            std::lock_guard lock(stats_mu_);
            ++counters_.requests;
            if (request_error.has_value()) ++counters_.bad_requests;
        }
        if (request_error.has_value()) {
            response = json::dump(make_error_response(ErrorKind::BadRequest,
                                                      *request_error));
            if (!net::write_frame(conn.get(), response)) break;
            continue;
        }

        if (request.type == RequestType::Ping ||
            request.type == RequestType::Stats ||
            request.type == RequestType::Metrics ||
            request.type == RequestType::Logs ||
            request.type == RequestType::CasGet ||
            request.type == RequestType::CasPut ||
            request.type == RequestType::Flight) {
            response = handle_inline(request);
            if (!net::write_frame(conn.get(), response)) break;
            continue;
        }

        // A queued job: resolve the output directory, arm the deadline at
        // receipt (queue wait counts against it), and admit or reject.
        auto job = std::make_shared<Job>();
        job->request = std::move(request);
        job->received = std::chrono::steady_clock::now();
        std::size_t lane = 0;
        std::uint64_t affinity = request_seq_.load();
        if (job->request.type == RequestType::Compile) {
            CompileRequest& compile = job->request.compile;
            if (compile.deadline_ms == 0)
                compile.deadline_ms = options_.default_deadline_ms;
            if (compile.out_dir.empty())
                compile.out_dir =
                    (std::filesystem::path(options_.out_root) /
                     (compile.app + "-" +
                      std::to_string(request_seq_.fetch_add(1))))
                        .string();
            else if (!std::filesystem::path(compile.out_dir).is_absolute())
                compile.out_dir = (std::filesystem::path(options_.out_root) /
                                   compile.out_dir)
                                      .string();
            if (compile.deadline_ms > 0)
                job->token.set_deadline_after(
                    std::chrono::milliseconds(compile.deadline_ms));
            lane = static_cast<std::size_t>(compile.priority);
            affinity = affinity_digest(compile);
        } else if (job->request.deadline_ms > 0) {
            job->token.set_deadline_after(
                std::chrono::milliseconds(job->request.deadline_ms));
        }

        std::future<std::string> done = job->response.get_future();
        if (!queue_.try_push(job, lane, affinity)) {
            {
                std::lock_guard lock(stats_mu_);
                ++counters_.rejected_overload;
            }
            response = json::dump(make_error_response(
                ErrorKind::Overloaded,
                queue_.closed() ? "daemon is draining"
                                : "admission queue is full",
                retry_after_ms_hint()));
            if (!net::write_frame(conn.get(), response)) break;
            continue;
        }
        response = done.get();
        if (!net::write_frame(conn.get(), response)) break;
    }
}

void Daemon::worker_loop(std::size_t worker_index) {
    flow::SessionOptions session_options;
    session_options.jobs = options_.session_jobs;
    session_options.interp = options_.interp;
    flow::FlowSession session(session_options);
    while (true) {
        auto popped = queue_.pop(worker_index);
        if (!popped.has_value()) break; // queue closed and drained
        in_flight_.fetch_add(1);
        execute_job(session, *popped->item);
        in_flight_.fetch_sub(1);
    }
}

void Daemon::execute_job(flow::FlowSession& session, Job& job) {
    const std::uint64_t queue_wait_us = us_since(job.received);

    // Per-request digest for the flight recorder; every exit from this
    // function records it (slow-request forensics must cover failures).
    obs::FlightRecord flight;
    flight.trace_id = job.request.trace.trace_id;
    flight.queue_wait_us = queue_wait_us;
    flight.set_shard(options_.shard_name);
    const auto finish_flight = [&](const char* status) {
        flight.set_status(status);
        flight.exec_us = us_since(job.received) - queue_wait_us;
        flight.total_us = us_since(job.received);
        obs::FlightRecorder::global().record(flight);
    };

    // A job whose deadline expired while queued is answered without
    // running — the worker stays free for requests that can still make it.
    if (job.token.cancelled()) {
        {
            std::lock_guard lock(stats_mu_);
            ++counters_.deadline_exceeded;
            queue_wait_us_.record(queue_wait_us);
            request_latency_us_.record(us_since(job.received));
        }
        flight.set_app(job.request.type == RequestType::Compile
                           ? job.request.compile.app
                           : "sleep");
        finish_flight("deadline_exceeded");
        job.response.set_value(json::dump(make_error_response(
            ErrorKind::DeadlineExceeded,
            std::string("flow failed: ") + job.token.reason())));
        return;
    }

    if (job.request.type == RequestType::Sleep) {
        // Anchored at execution start, not receipt: the sleep models
        // *service time* (a worker held for the full duration), so
        // loadgen's io-bound mode measures worker occupancy even when the
        // queue is saturated. Deadlines still count queue time — the
        // token was armed at receipt.
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(job.request.sleep_ms);
        bool cancelled = false;
        while (std::chrono::steady_clock::now() < until) {
            if (job.token.cancelled()) {
                cancelled = true;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        {
            std::lock_guard lock(stats_mu_);
            queue_wait_us_.record(queue_wait_us);
            request_latency_us_.record(us_since(job.received));
            if (cancelled)
                ++counters_.deadline_exceeded;
            else
                ++counters_.completed;
        }
        flight.set_app("sleep");
        finish_flight(cancelled ? "deadline_exceeded" : "ok");
        if (cancelled) {
            job.response.set_value(json::dump(make_error_response(
                ErrorKind::DeadlineExceeded,
                std::string("flow failed: ") + job.token.reason())));
        } else {
            json::Value ok = json::Value::object();
            ok.set("ok", json::Value::boolean(true));
            ok.set("schema_version",
                   json::Value::number(double(kSchemaVersion)));
            ok.set("type", json::Value::string("sleep"));
            ok.set("slept_ms",
                   json::Value::number(double(job.request.sleep_ms)));
            if (job.request.trace.traced()) {
                // A traced sleep still reports its hop spans — tests use
                // sleeps as cheap stand-ins for real service time.
                const std::uint64_t slept_us =
                    us_since(job.received) - queue_wait_us;
                std::vector<trace::Span> spans;
                trace::Span root;
                root.name = "serve:request";
                root.category = "serve";
                root.id = trace::wire_span_id();
                root.parent = job.request.trace.parent_span;
                root.duration_us = queue_wait_us + slept_us;
                trace::Span queue;
                queue.name = "serve:queue-wait";
                queue.category = "serve";
                queue.id = trace::wire_span_id();
                queue.parent = root.id;
                queue.duration_us = queue_wait_us;
                trace::Span exec;
                exec.name = "serve:execute";
                exec.category = "serve";
                exec.id = trace::wire_span_id();
                exec.parent = root.id;
                exec.start_us = queue_wait_us;
                exec.duration_us = slept_us;
                spans.push_back(std::move(queue));
                spans.push_back(std::move(exec));
                spans.push_back(std::move(root));
                attach_response_trace(ok, job.request.trace.trace_id,
                                      spans);
            }
            job.response.set_value(json::dump(ok));
        }
        return;
    }

    RequestTrace req_trace;
    req_trace.trace_id = job.request.trace.trace_id;
    req_trace.parent_span = job.request.trace.parent_span;
    req_trace.queue_wait_us = queue_wait_us;
    const CompileOutcome outcome =
        execute_request(session, job.request.compile, &job.token,
                        &trace::Registry::global(), &req_trace);
    {
        std::lock_guard lock(stats_mu_);
        queue_wait_us_.record(queue_wait_us);
        request_latency_us_.record(us_since(job.received));
        record_outcome(outcome, queue_wait_us);
    }

    flight.set_app(job.request.compile.app);
    flight.set_lane(to_string(job.request.compile.priority));
    const auto hits = [&](const char* name) {
        auto it = outcome.counters.find(name);
        return it == outcome.counters.end() ? std::uint64_t{0} : it->second;
    };
    flight.cache_hits = static_cast<std::uint32_t>(
        hits("cas.hits") + hits("profile_cache.hits"));
    if (!outcome.decisions.empty() &&
        !outcome.decisions.front().selected.empty())
        flight.set_winner(outcome.decisions.front().selected.front());
    finish_flight(outcome.ok ? "ok" : to_string(outcome.error_kind));

    json::Value response =
        outcome.ok ? make_compile_response(job.request.compile, outcome)
                   : make_error_response(outcome.error_kind, outcome.error);
    if (job.request.trace.traced())
        attach_response_trace(response, job.request.trace.trace_id,
                              outcome.spans);
    job.response.set_value(json::dump(response));
}

/// Caller holds stats_mu_.
void Daemon::record_outcome(const CompileOutcome& outcome,
                            std::uint64_t /*queue_wait_us*/) {
    if (outcome.ok) {
        ++counters_.completed;
    } else if (outcome.error_kind == ErrorKind::DeadlineExceeded) {
        ++counters_.deadline_exceeded;
    } else if (outcome.error_kind == ErrorKind::BadRequest) {
        ++counters_.bad_requests;
    } else {
        ++counters_.failed;
    }
    for (const auto& [name, value] : outcome.counters)
        flow_counters_[name] += value;
    // Per-request decision provenance feeds the stats plane as a plain
    // counter: how many branch-point deliberations the flows made.
    flow_counters_["flow.decisions"] +=
        static_cast<std::uint64_t>(outcome.decisions.size());
    for (const trace::Span& span : outcome.spans)
        if (span.category == "task")
            task_latency_us_[span.name].record(span.duration_us);
}

std::string Daemon::handle_inline(const WireRequest& request) {
    if (request.type == RequestType::Stats)
        return json::dump(stats_json());
    if (request.type == RequestType::Metrics) {
        json::Value response = json::Value::object();
        response.set("ok", json::Value::boolean(true));
        response.set("schema_version",
                     json::Value::number(double(kSchemaVersion)));
        response.set("type", json::Value::string("metrics"));
        response.set("content_type",
                     json::Value::string("text/plain; version=0.0.4"));
        response.set("body", json::Value::string(metrics_text()));
        return json::dump(response);
    }
    if (request.type == RequestType::Logs)
        return json::dump(
            logs_json(request.logs_max, request.logs_min_level));
    if (request.type == RequestType::CasGet) {
        {
            std::lock_guard lock(stats_mu_);
            ++counters_.cas_gets;
        }
        const auto started = std::chrono::steady_clock::now();
        cas::CasStore* store = cas::store();
        // get_local: serving a peer's fetch must never recurse into this
        // daemon's own remote tier (see protocol.hpp).
        std::optional<std::string> payload;
        if (store != nullptr) payload = store->get_local(request.cas_key);
        json::Value response = make_cas_get_response(payload);
        if (request.trace.traced()) {
            trace::Span span;
            span.name = "serve:cas_get";
            span.category = "serve";
            span.id = trace::wire_span_id();
            span.parent = request.trace.parent_span;
            span.duration_us = us_since(started);
            span.work_units =
                payload.has_value()
                    ? static_cast<double>(payload->size())
                    : 0.0;
            attach_response_trace(response, request.trace.trace_id,
                                  {span});
        }
        return json::dump(response);
    }
    if (request.type == RequestType::Flight)
        return json::dump(make_flight_response(
            obs::FlightRecorder::global(), request.flight_max));
    if (request.type == RequestType::CasPut) {
        {
            std::lock_guard lock(stats_mu_);
            ++counters_.cas_puts;
        }
        cas::CasStore* store = cas::store();
        if (store != nullptr)
            store->put_local(request.cas_key, request.cas_payload);
        return json::dump(make_cas_put_response(store != nullptr));
    }
    return json::dump(make_pong_response());
}

long long Daemon::retry_after_ms_hint() {
    std::uint64_t p50_us;
    {
        std::lock_guard lock(stats_mu_);
        p50_us = request_latency_us_.percentile(50);
    }
    long long hint = static_cast<long long>(p50_us / 1000);
    if (hint < 50) hint = 50;
    if (hint > 5000) hint = 5000;
    return hint;
}

json::Value Daemon::stats_json() {
    json::Value stats = json::Value::object();
    stats.set("ok", json::Value::boolean(true));
    stats.set("schema_version",
              json::Value::number(double(kSchemaVersion)));
    stats.set("type", json::Value::string("stats"));
    stats.set("uptime_us", json::Value::number(double(us_since(started_))));
    if (!options_.shard_name.empty())
        stats.set("shard", json::Value::string(options_.shard_name));
    stats.set("workers", json::Value::number(double(options_.workers)));
    stats.set("queue_capacity",
              json::Value::number(double(queue_.capacity())));
    stats.set("queue_depth", json::Value::number(double(queue_.depth())));
    json::Value lane_depths = json::Value::array();
    for (std::size_t lane = 0; lane < queue_.lanes(); ++lane)
        lane_depths.push(json::Value::number(double(queue_.lane_depth(lane))));
    stats.set("queue_lane_depths", std::move(lane_depths));
    stats.set("queue_steals", json::Value::number(double(queue_.steals())));
    stats.set("in_flight", json::Value::number(double(in_flight_.load())));
    stats.set("draining", json::Value::boolean(shutting_down_.load()));

    std::lock_guard lock(stats_mu_);
    json::Value requests = json::Value::object();
    requests.set("received", json::Value::number(double(counters_.requests)));
    requests.set("completed",
                 json::Value::number(double(counters_.completed)));
    requests.set("failed", json::Value::number(double(counters_.failed)));
    requests.set("bad_request",
                 json::Value::number(double(counters_.bad_requests)));
    requests.set("rejected_overload",
                 json::Value::number(double(counters_.rejected_overload)));
    requests.set("deadline_exceeded",
                 json::Value::number(double(counters_.deadline_exceeded)));
    requests.set("cas_gets", json::Value::number(double(counters_.cas_gets)));
    requests.set("cas_puts", json::Value::number(double(counters_.cas_puts)));
    stats.set("requests", std::move(requests));
    stats.set("connections",
              json::Value::number(double(counters_.connections)));

    stats.set("request_latency_us", histogram_value(request_latency_us_));
    stats.set("queue_wait_us", histogram_value(queue_wait_us_));

    json::Value tasks = json::Value::object();
    for (const auto& [name, hist] : task_latency_us_)
        tasks.set(name, histogram_value(hist));
    stats.set("task_latency_us", std::move(tasks));

    json::Value flow_counters = json::Value::object();
    for (const auto& [name, value] : flow_counters_)
        flow_counters.set(name, json::Value::number(double(value)));
    stats.set("counters", std::move(flow_counters));

    const auto counter = [this](const char* name) {
        auto it = flow_counters_.find(name);
        return it == flow_counters_.end() ? std::uint64_t{0} : it->second;
    };
    json::Value cache = json::Value::object();
    cache.set("cas_hit_rate",
              json::Value::number(
                  hit_rate(counter("cas.hits"), counter("cas.misses"))));
    cache.set("profile_cache_hit_rate",
              json::Value::number(hit_rate(counter("profile_cache.hits"),
                                           counter("profile_cache.misses"))));
    cache.set("remote_cas_hit_rate",
              json::Value::number(hit_rate(counter("cas.remote_hits"),
                                           counter("cas.remote_misses"))));
    stats.set("cache", std::move(cache));
    return stats;
}

std::string Daemon::metrics_text() {
    obs::PrometheusRenderer renderer;
    if (!options_.shard_name.empty())
        renderer.set_default_labels({{"shard", options_.shard_name}});
    renderer.gauge("psaflowd_uptime_seconds", "Seconds since daemon start",
                   double(us_since(started_)) / 1e6);
    renderer.gauge("psaflowd_workers", "Configured worker threads",
                   double(options_.workers));
    renderer.gauge("psaflowd_queue_depth", "Jobs waiting for a worker",
                   double(queue_.depth()));
    for (std::size_t lane = 0; lane < queue_.lanes(); ++lane)
        renderer.gauge("psaflowd_queue_lane_depth",
                       "Jobs waiting, by priority lane",
                       double(queue_.lane_depth(lane)),
                       {{"lane", std::to_string(lane)}});
    renderer.counter("psaflowd_queue_steals_total",
                     "Jobs taken from a sibling worker's sub-queue",
                     double(queue_.steals()));
    renderer.gauge("psaflowd_queue_capacity", "Admission queue capacity",
                   double(queue_.capacity()));
    renderer.gauge("psaflowd_in_flight", "Jobs currently executing",
                   double(in_flight_.load()));
    renderer.gauge("psaflowd_draining", "1 while shutting down",
                   shutting_down_.load() ? 1.0 : 0.0);

    std::lock_guard lock(stats_mu_);
    const auto tally = [&](const char* label, std::uint64_t value) {
        renderer.counter("psaflowd_requests_total",
                         "Requests by outcome", double(value),
                         {{"outcome", label}});
    };
    tally("completed", counters_.completed);
    tally("failed", counters_.failed);
    tally("bad_request", counters_.bad_requests);
    tally("rejected_overload", counters_.rejected_overload);
    tally("deadline_exceeded", counters_.deadline_exceeded);
    renderer.counter("psaflowd_requests_received_total",
                     "Request frames received", double(counters_.requests));
    renderer.counter("psaflowd_connections_total", "Connections accepted",
                     double(counters_.connections));
    renderer.counter("psaflowd_cas_gets_total",
                     "Remote-CAS reads served to peers",
                     double(counters_.cas_gets));
    renderer.counter("psaflowd_cas_puts_total",
                     "Remote-CAS writes accepted from peers",
                     double(counters_.cas_puts));

    renderer.histogram("psaflowd_request_latency_us",
                       "Receipt-to-response latency, microseconds",
                       request_latency_us_);
    renderer.histogram("psaflowd_queue_wait_us",
                       "Admission-to-execution wait, microseconds",
                       queue_wait_us_);
    for (const auto& [name, hist] : task_latency_us_)
        renderer.histogram("psaflowd_task_latency_us",
                           "Flow-task wall time, microseconds", hist,
                           {{"task", name}});

    for (const auto& [name, value] : flow_counters_)
        renderer.counter(obs::sanitize_metric_name(name, "psaflow_"),
                         "psaflow trace counter " + name, double(value));
    return renderer.text();
}

json::Value Daemon::logs_json(long long max_records,
                              const std::string& min_level) {
    obs::LogLevel level = obs::LogLevel::Trace;
    if (!min_level.empty())
        if (auto parsed = obs::parse_log_level(min_level)) level = *parsed;

    const obs::Logger& logger = obs::Logger::global();
    const auto records = logger.recent(
        max_records < 0 ? 0 : static_cast<std::size_t>(max_records), level);

    json::Value response = json::Value::object();
    response.set("ok", json::Value::boolean(true));
    response.set("schema_version",
                 json::Value::number(double(kSchemaVersion)));
    response.set("type", json::Value::string("logs"));
    response.set("total", json::Value::number(double(logger.total())));
    response.set("dropped", json::Value::number(double(logger.dropped())));
    json::Value out = json::Value::array();
    for (const obs::LogRecord& record : records) {
        json::Value entry = json::Value::object();
        entry.set("seq", json::Value::number(double(record.seq)));
        entry.set("wall_ms", json::Value::number(double(record.wall_ms)));
        entry.set("level",
                  json::Value::string(obs::to_string(record.level)));
        entry.set("component", json::Value::string(record.component));
        entry.set("message", json::Value::string(record.message));
        if (!record.fields.empty()) {
            json::Value fields = json::Value::object();
            for (const auto& [key, value] : record.fields)
                fields.set(key, json::Value::string(value));
            entry.set("fields", std::move(fields));
        }
        entry.set("line", json::Value::string(record.to_line()));
        out.push(std::move(entry));
    }
    response.set("records", std::move(out));
    return response;
}

DaemonCounters Daemon::counters() const {
    std::lock_guard lock(stats_mu_);
    return counters_;
}

} // namespace psaflow::serve
