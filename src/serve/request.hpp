// The unit of work of the serving layer: one (app, mode, budget, workload)
// compile request, plus its parse from the JSON shapes both entry points
// share — a `psaflowc --batch` manifest entry and a `psaflowd` wire
// request are the same object, so the daemon and the batch driver run the
// exact same requests through the exact same executor (serve/service).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace psaflow::serve {

/// Admission priority lanes, highest first. Interactive requests (a
/// developer waiting at a prompt) overtake batch backfill in the daemon's
/// LaneQueue.
enum class Priority { Interactive = 0, Batch = 1 };
inline constexpr std::size_t kPriorityLanes = 2;
[[nodiscard]] const char* to_string(Priority priority);

struct CompileRequest {
    std::string app;              ///< bundled application name (required)
    std::string mode = "informed"; ///< "informed" | "uninformed"
    double budget = -1.0;          ///< USD-per-run budget; < 0 = none
    double threshold_x = 4.0;      ///< Fig. 3 intensity threshold
    std::string out_dir;           ///< where design sources + CSV are written
    long long deadline_ms = 0;     ///< per-request deadline; 0 = none
    Priority priority = Priority::Interactive; ///< admission lane

    /// Manifest-defined flow as compact JSON text (flow/manifest.hpp),
    /// already validated by parse_compile_request; empty = run the builtin
    /// standard flow. Carried as text (not a lowered flow) so requests stay
    /// copyable/queueable and the executor lowers at run time.
    std::string flow_json;
};

/// How a request failed — the wire protocol's error taxonomy.
enum class ErrorKind {
    None,
    BadRequest,       ///< malformed/unknown input; retrying is pointless
    Overloaded,       ///< admission queue full; retry after backoff
    DeadlineExceeded, ///< cancelled by its own deadline
    Internal,         ///< the flow failed; poisons only this request
};
[[nodiscard]] const char* to_string(ErrorKind kind);
[[nodiscard]] ErrorKind error_kind_from_string(const std::string& name);

/// Populate `out` from a JSON object (a manifest entry or the fields of a
/// wire compile request). Returns an error message on invalid input,
/// nullopt on success. Absent fields keep the defaults already in `out`,
/// so callers can pre-seed manifest-level defaults.
///
/// A "flow" member may be an inline manifest object (the wire form —
/// clients ship flows over the wire to psaflowd) or a string path to a
/// manifest file, resolved where the request is parsed (the --batch
/// convenience). Either way the manifest is fully validated here, so a
/// bad flow is a parse error, not a mid-run failure.
[[nodiscard]] std::optional<std::string>
parse_compile_request(const json::Value& entry, CompileRequest& out);

/// The request's cache-affinity key: a digest of the module source it will
/// compile (the bundled app's HLC text when the app is known, else the
/// name) plus any in-request flow manifest. Everything warm about a
/// request — profile-cache entries, design artifacts, a worker's parsed
/// session state — keys off this content, so the cluster router
/// consistent-hashes it onto shards and the daemon's LaneQueue uses it for
/// worker sub-queue affinity. Deterministic across processes and hosts.
[[nodiscard]] std::uint64_t affinity_digest(const CompileRequest& req);

/// Manifest-level session settings a batch file may carry alongside its
/// requests. Values are only overwritten when the manifest provides them.
struct ManifestDefaults {
    long long jobs = 0;
    std::string cache_dir;
    std::string out_root = "designs";
};

/// Parse a batch manifest document (a bare array of request objects, or an
/// object with "requests" plus optional "jobs"/"cache_dir"/"out").
/// Requests without an "out" default to `<out_root>/<app>-<index>`.
/// Returns an error message on malformed input.
[[nodiscard]] std::optional<std::string>
parse_manifest(const json::Value& doc, ManifestDefaults& defaults,
               std::vector<CompileRequest>& requests);

} // namespace psaflow::serve
