// Human-facing renderings of the daemon's observability documents.
//
// psaflow-client's --stats table and --metrics passthrough share these so
// the client stays a thin wire shim; tests render the daemon's own
// stats_json() through the same functions to pin the format.
#pragma once

#include <string>

#include "support/json.hpp"

namespace psaflow::serve {

/// Render a stats response document as an aligned two-column summary table
/// (uptime, workers, queue, request tallies, latency percentiles, cache hit
/// rates). Unknown/missing members are simply omitted, so the renderer
/// tolerates older daemons.
[[nodiscard]] std::string stats_table(const json::Value& stats);

/// Render a logs response document ({"records":[...]}) as one classic
/// `<time> LEVEL component: message k=v` line per record.
[[nodiscard]] std::string logs_text(const json::Value& logs_response);

} // namespace psaflow::serve
