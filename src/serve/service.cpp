#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>

#include "core/psaflow.hpp"
#include "obs/log.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

namespace psaflow::serve {

namespace {

/// Body of execute_request, running with the request's private registry
/// already installed; split out so the wrapper can time it and harvest the
/// registry regardless of how it returns.
CompileOutcome run_compile(flow::FlowSession& session,
                           const CompileRequest& req,
                           const CancelToken* cancel) {
    CompileOutcome outcome;

    const apps::Application* app = nullptr;
    try {
        app = &apps::application_by_name(req.app);
    } catch (const Error& e) {
        outcome.error_kind = ErrorKind::BadRequest;
        outcome.error = e.what();
        obs::warn("serve", "rejected compile request",
                  {{"app", req.app}, {"error", e.what()}});
        return outcome;
    }

    RunOptions options;
    options.mode = req.mode == "informed" ? flow::Mode::Informed
                                          : flow::Mode::Uninformed;
    options.budget.max_run_cost = req.budget;
    options.intensity_threshold_x = req.threshold_x;
    options.cancel = cancel;

    // Lower the request's manifest (if any) here, at run time: the request
    // carries validated text, so failure is a BadRequest (e.g. the file a
    // batch entry named changed between parse and run), not an engine bug.
    flow::ManifestFlow manifest;
    if (!req.flow_json.empty()) {
        try {
            manifest = flow::parse_manifest_text(req.flow_json);
        } catch (const Error& e) {
            outcome.error_kind = ErrorKind::BadRequest;
            outcome.error = e.what();
            obs::warn("serve", "rejected compile request",
                      {{"app", req.app}, {"error", e.what()}});
            return outcome;
        }
        options.flow_manifest = &manifest;
    }

    flow::FlowResult result;
    try {
        result = compile(session, *app, options);
    } catch (const CancelledError& e) {
        outcome.error_kind = ErrorKind::DeadlineExceeded;
        outcome.error = std::string("flow failed: ") + e.what();
        obs::info("serve", "compile deadline exceeded",
                  {{"app", req.app}, {"reason", e.what()}});
        return outcome;
    } catch (const Error& e) {
        outcome.error_kind = ErrorKind::Internal;
        outcome.error = std::string("flow failed: ") + e.what();
        obs::error("serve", "compile failed",
                   {{"app", req.app}, {"error", e.what()}});
        return outcome;
    }
    outcome.decisions = std::move(result.decisions);

    std::filesystem::create_directories(req.out_dir);
    CsvWriter summary({"design", "target", "device", "synthesizable",
                       "hotspot_seconds", "speedup_vs_1t", "loc_delta",
                       "source_file"});

    for (const auto& design : result.designs) {
        const std::string ext =
            design.spec.target == codegen::TargetKind::CpuFpga ? ".sycl.cpp"
            : design.spec.target == codegen::TargetKind::CpuGpu ? ".hip.cpp"
                                                                : ".cpp";
        const std::string filename = design.name() + ext;
        const std::filesystem::path path =
            std::filesystem::path(req.out_dir) / filename;
        std::ofstream file(path);
        if (!file) {
            outcome.error_kind = ErrorKind::Internal;
            outcome.error = "cannot write " + path.string();
            obs::error("serve", "cannot write design file",
                       {{"app", req.app}, {"path", path.string()}});
            return outcome;
        }
        file << design.source;

        summary.add_row({design.name(),
                         codegen::to_string(design.spec.target),
                         platform::to_string(design.spec.device),
                         design.synthesizable ? "yes" : "no",
                         format_compact(design.hotspot_seconds, 6),
                         format_compact(design.speedup, 4),
                         format_compact(design.loc_delta, 4),
                         filename});

        DesignRow row;
        row.name = design.name();
        row.target = codegen::to_string(design.spec.target);
        row.device = platform::to_string(design.spec.device);
        row.synthesizable = design.synthesizable;
        row.hotspot_seconds = design.hotspot_seconds;
        row.speedup = design.speedup;
        row.loc_delta = design.loc_delta;
        row.filename = filename;
        outcome.designs.push_back(std::move(row));

        if (design.synthesizable && design.speedup > outcome.best_speedup)
            outcome.best_speedup = design.speedup;
    }

    const std::filesystem::path summary_path =
        std::filesystem::path(req.out_dir) / (app->name + "-summary.csv");
    std::ofstream summary_file(summary_path);
    summary_file << summary.to_string();

    outcome.ok = true;
    outcome.error_kind = ErrorKind::None;
    outcome.design_count = result.designs.size();
    outcome.reference_seconds = result.reference_seconds;
    outcome.summary_path = summary_path.string();
    return outcome;
}

} // namespace

CompileOutcome execute_request(flow::FlowSession& session,
                               const CompileRequest& req,
                               const CancelToken* cancel,
                               trace::Registry* merge_into,
                               const RequestTrace* req_trace) {
    // A request-armed deadline when no caller token was provided: the CLI
    // paths land here; the daemon passes its own token, armed at receipt.
    CancelToken local_token;
    if (cancel == nullptr && req.deadline_ms > 0) {
        local_token.set_deadline_after(
            std::chrono::milliseconds(req.deadline_ms));
        cancel = &local_token;
    }

    trace::Registry request_registry;
    request_registry.set_enabled(trace::Registry::global().enabled());

    // Distributed-trace adoption: the request's spans parent under a
    // synthetic serve:execute span, and the trace id rides the thread so
    // deeper layers (remote CAS) forward it onward. Hop spans are
    // synthesized even when span *collection* is off — they come from
    // independent timing, so the cross-process tree stays rooted.
    const bool traced = req_trace != nullptr && req_trace->trace_id != 0;
    const std::uint64_t root_id = traced ? trace::wire_span_id() : 0;
    const std::uint64_t exec_id = traced ? trace::wire_span_id() : 0;

    const auto start = std::chrono::steady_clock::now();
    CompileOutcome outcome;
    {
        trace::ScopedRegistry scope(request_registry);
        std::optional<trace::ScopedTraceId> scoped_trace;
        std::optional<trace::ScopedParent> scoped_parent;
        if (traced) {
            scoped_trace.emplace(req_trace->trace_id);
            scoped_parent.emplace(exec_id);
        }
        try {
            outcome = run_compile(session, req, cancel);
        } catch (const std::exception& e) {
            // Belt-and-braces failure isolation: nothing past run_compile's
            // own handlers may escape into a daemon worker loop.
            outcome = CompileOutcome{};
            outcome.error_kind = ErrorKind::Internal;
            outcome.error = std::string("flow failed: ") + e.what();
        }
    }
    outcome.wall_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());

    outcome.counters = request_registry.counters();
    outcome.spans = request_registry.spans();
    if (merge_into != nullptr) merge_into->merge_from(request_registry);

    if (traced) {
        // Re-base the natural spans behind the queue wait and wrap them
        // in the hop spans (see RequestTrace). Appended after the merge:
        // hop spans describe the wire hop, not this process's work.
        const std::uint64_t queue_us = req_trace->queue_wait_us;
        std::uint64_t exec_us = outcome.wall_us;
        for (trace::Span& span : outcome.spans) {
            span.start_us += queue_us;
            // The private registry's clock starts a hair before wall_us's
            // does; stretch the execute window so children still nest.
            exec_us = std::max(exec_us,
                               span.start_us + span.duration_us - queue_us);
        }

        trace::Span queue;
        queue.name = "serve:queue-wait";
        queue.category = "serve";
        queue.id = trace::wire_span_id();
        queue.parent = root_id;
        queue.start_us = 0;
        queue.duration_us = queue_us;
        trace::Span exec;
        exec.name = "serve:execute";
        exec.category = "serve";
        exec.id = exec_id;
        exec.parent = root_id;
        exec.start_us = queue_us;
        exec.duration_us = exec_us;
        trace::Span root;
        root.name = "serve:request";
        root.category = "serve";
        root.id = root_id;
        root.parent = req_trace->parent_span;
        root.start_us = 0;
        root.duration_us = queue_us + exec_us;
        outcome.spans.push_back(std::move(queue));
        outcome.spans.push_back(std::move(exec));
        outcome.spans.push_back(std::move(root));
    }
    return outcome;
}

} // namespace psaflow::serve
