// The request executor shared by every entry point.
//
// `execute_request` is the single code path that turns a CompileRequest
// into designs on disk: the daemon's warm workers, `psaflowc --batch` and
// the single-app CLI all call it, so a request behaves identically however
// it arrives (satellite: the batch driver and the daemon cannot drift).
//
// Each call runs under a private trace::Registry installed as the calling
// thread's sink, so the outcome carries exactly this request's counters and
// task spans — concurrent requests in one daemon process cannot bleed
// metrics into each other — and the private registry is then folded into
// `merge_into` (typically trace::Registry::global()) so process-wide totals
// such as `--trace-out` keep accumulating.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "flow/session.hpp"
#include "obs/decision.hpp"
#include "serve/request.hpp"
#include "support/cancel.hpp"
#include "support/trace.hpp"

namespace psaflow::serve {

/// One generated design, as reported back to the client.
struct DesignRow {
    std::string name;
    std::string target;
    std::string device;
    bool synthesizable = false;
    double hotspot_seconds = 0.0;
    double speedup = 0.0;
    double loc_delta = 0.0;
    std::string filename;
};

struct CompileOutcome {
    bool ok = false;
    ErrorKind error_kind = ErrorKind::None;
    std::string error;

    std::size_t design_count = 0;
    double best_speedup = 0.0;
    double reference_seconds = 0.0;
    std::string summary_path;
    std::vector<DesignRow> designs;

    std::uint64_t wall_us = 0; ///< execute_request wall clock
    /// This request's counters and task spans only (see header comment).
    std::map<std::string, std::uint64_t> counters;
    std::vector<trace::Span> spans;
    /// Branch-point provenance of the flow (FlowResult::decisions).
    std::vector<obs::DecisionRecord> decisions;
};

/// Distributed-trace coordinates for a request that arrived over the
/// wire (serve/wire_trace.hpp). When present (trace_id != 0),
/// execute_request adopts the trace: the request's task spans parent
/// under a synthetic `serve:execute` span, and outcome.spans gains the
/// hop spans `serve:request` (rooted on the remote parent_span, covering
/// queue wait + execution) with `serve:queue-wait` / `serve:execute`
/// children — based at t=0, ready for attach_response_trace. The
/// synthetic hop spans stay out of `merge_into` (they describe the wire
/// hop, not this process's work).
struct RequestTrace {
    std::uint64_t trace_id = 0;      ///< 0 = untraced
    std::uint64_t parent_span = 0;   ///< requester's span to root under
    std::uint64_t queue_wait_us = 0; ///< admission-queue wait to account
};

/// Compile `req` through `session`, write the design sources and the
/// summary CSV under `req.out_dir`, and classify any failure.
///
/// `cancel` (nullable, not owned) is threaded through the flow; a fired
/// token surfaces as ErrorKind::DeadlineExceeded. When `cancel` is null
/// and `req.deadline_ms > 0`, a token is armed here — entry points that
/// queue requests (the daemon) instead arm their own token at *receipt*
/// so queue wait counts against the deadline.
///
/// Never throws: all failures land in the outcome, so one bad request
/// cannot take down a worker (per-request failure isolation).
[[nodiscard]] CompileOutcome
execute_request(flow::FlowSession& session, const CompileRequest& req,
                const CancelToken* cancel = nullptr,
                trace::Registry* merge_into = &trace::Registry::global(),
                const RequestTrace* req_trace = nullptr);

} // namespace psaflow::serve
