// psaflowd's engine room: accept loop, admission control, warm workers.
//
// Threading model:
//   * `run()` (the caller's thread) polls {listen socket, self-pipe};
//     SIGTERM handlers call `notify_shutdown()` (async-signal-safe) to
//     write the pipe.
//   * One reader thread per connection. It answers `ping`/`stats` inline
//     (so the metrics plane stays responsive while every worker is busy)
//     and admits `compile`/`sleep` jobs into a BoundedQueue; a full or
//     closed queue yields an `overloaded` response with a retry hint
//     derived from the observed p50 latency. The reader then blocks on
//     the job's future — requests on one connection are served in order,
//     concurrency comes from concurrent connections.
//   * `workers` worker threads each own a warm FlowSession (engine jobs
//     default 1: request-level parallelism, not per-request fan-out) and
//     drain the queue. Each job's deadline token was armed at *receipt*,
//     so time spent queued counts against the deadline; an expired job is
//     answered without running. Failures are contained per request —
//     execute_request never throws.
//
// Drain (notify_shutdown): stop accepting (close listener, unlink the
// socket file), close the queue (admitted jobs still drain), join the
// workers, then the readers. Every admitted request gets its response
// before the daemon exits; the CAS needs no flush (entries are published
// with atomic renames at write time).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "support/cancel.hpp"
#include "support/histogram.hpp"
#include "support/net.hpp"

namespace psaflow::serve {

struct DaemonOptions {
    std::string socket_path;            ///< Unix socket ("" = TCP only)
    std::string listen_tcp;             ///< "host:port" TCP listener ("" = none;
                                        ///< port 0 binds ephemeral, see tcp_port())
    std::string shard_name;             ///< cluster identity; labels metrics
    int workers = 2;
    std::size_t queue_depth = 16;       ///< admission queue capacity
    long long default_deadline_ms = 0;  ///< applied when a request has none
    long long recv_timeout_ms = 5000;   ///< cap on mid-frame peer stalls
    std::string out_root = "designs";   ///< root for relative/absent "out"
    int session_jobs = 1;               ///< engine jobs per worker session
    std::string interp;                 ///< "tree"|"vm" ("" = env/default)
    std::string cache_dir;              ///< CAS root ("" = env/default)
    std::uint64_t cache_max_bytes = 0;
    bool enable_test_endpoints = false; ///< allow the "sleep" request type
    long long slo_ms = 0;               ///< flight-recorder latency SLO
                                        ///< (0 = PSAFLOW_SLO_MS / disabled)
};

/// Monotonic request/connection tallies, readable while serving.
struct DaemonCounters {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;           ///< internal flow failures
    std::uint64_t bad_requests = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t cas_gets = 0;         ///< remote-CAS reads served
    std::uint64_t cas_puts = 0;         ///< remote-CAS writes accepted
};

class Daemon {
public:
    explicit Daemon(DaemonOptions options);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// Bind the socket, create the self-pipe and start the worker pool.
    /// Returns an error message on failure (daemon unusable afterwards).
    [[nodiscard]] std::optional<std::string> start();

    /// Accept/serve until notify_shutdown(); returns after a full drain.
    void run();

    /// Request shutdown. Async-signal-safe (one write(2) to the
    /// self-pipe); callable from signal handlers and other threads.
    void notify_shutdown() noexcept;

    /// The stats-endpoint document (also handy for tests and logs).
    [[nodiscard]] json::Value stats_json();

    /// The metrics-endpoint body: Prometheus text-format exposition of the
    /// same metrics plane (daemon tallies, latency histograms with
    /// per-task labels, flow counters).
    [[nodiscard]] std::string metrics_text();

    /// The logs-endpoint document: recent structured-log records,
    /// oldest first. `min_level` as in obs::parse_log_level ("" = all).
    [[nodiscard]] static json::Value logs_json(long long max_records,
                                               const std::string& min_level);

    [[nodiscard]] DaemonCounters counters() const;
    [[nodiscard]] const DaemonOptions& options() const { return options_; }

    /// The actual TCP port after start() — meaningful when listen_tcp
    /// asked for port 0 (tests, smoke scripts). 0 without a TCP listener.
    [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

    /// Work-stealing tally of the admission queue (see serve/queue.hpp).
    [[nodiscard]] std::uint64_t queue_steals() const {
        return queue_.steals();
    }

private:
    struct Job {
        WireRequest request;
        CancelToken token; ///< armed at receipt; queue wait counts
        std::chrono::steady_clock::time_point received;
        std::promise<std::string> response; ///< serialised response frame
    };

    void serve_connection(net::Fd conn);
    void worker_loop(std::size_t worker_index);
    void execute_job(flow::FlowSession& session, Job& job);
    [[nodiscard]] std::string handle_inline(const WireRequest& request);
    [[nodiscard]] long long retry_after_ms_hint();
    void record_outcome(const CompileOutcome& outcome,
                        std::uint64_t queue_wait_us);

    DaemonOptions options_;
    net::Fd listen_fd_;
    net::Fd tcp_listen_fd_;
    std::uint16_t tcp_port_ = 0;
    net::Fd wake_read_;
    net::Fd wake_write_;
    LaneQueue<std::shared_ptr<Job>> queue_;
    std::vector<std::thread> workers_;
    std::vector<std::thread> readers_;
    std::mutex readers_mu_;
    std::atomic<bool> shutting_down_{false};
    std::atomic<std::uint64_t> request_seq_{0};
    std::atomic<std::size_t> in_flight_{0};
    std::chrono::steady_clock::time_point started_;

    mutable std::mutex stats_mu_;
    DaemonCounters counters_;
    Histogram request_latency_us_;
    Histogram queue_wait_us_;
    std::map<std::string, Histogram> task_latency_us_;
    std::map<std::string, std::uint64_t> flow_counters_;
};

} // namespace psaflow::serve
