#include "serve/format.hpp"

#include "support/string_util.hpp"
#include "support/table.hpp"

namespace psaflow::serve {

namespace {

std::string integer(const json::Value* v) {
    return v == nullptr
               ? "-"
               : std::to_string(static_cast<long long>(v->number_or(0.0)));
}

std::string us_to_ms(const json::Value* v) {
    return v == nullptr ? "-"
                        : format_compact(v->number_or(0.0) / 1000.0, 4) + " ms";
}

void add_histogram_rows(TablePrinter& table, const std::string& label,
                        const json::Value* hist) {
    if (hist == nullptr || !hist->is_object()) return;
    table.add_row({label + " count", integer(hist->find("count"))});
    table.add_row({label + " mean", us_to_ms(hist->find("mean"))});
    table.add_row({label + " p50", us_to_ms(hist->find("p50"))});
    table.add_row({label + " p90", us_to_ms(hist->find("p90"))});
    table.add_row({label + " p99", us_to_ms(hist->find("p99"))});
}

} // namespace

std::string stats_table(const json::Value& stats) {
    TablePrinter table({"metric", "value"});

    if (const json::Value* v = stats.find("uptime_us"))
        table.add_row({"uptime",
                       format_compact(v->number_or(0.0) / 1e6, 4) + " s"});
    table.add_row({"workers", integer(stats.find("workers"))});
    if (const json::Value* depth = stats.find("queue_depth"))
        table.add_row({"queue",
                       integer(depth) + " / " +
                           integer(stats.find("queue_capacity"))});
    table.add_row({"in flight", integer(stats.find("in_flight"))});
    if (const json::Value* v = stats.find("draining"))
        table.add_row({"draining", v->bool_or(false) ? "yes" : "no"});

    table.add_separator();
    if (const json::Value* requests = stats.find("requests")) {
        table.add_row({"requests", integer(requests->find("received"))});
        table.add_row({"  completed", integer(requests->find("completed"))});
        table.add_row({"  failed", integer(requests->find("failed"))});
        table.add_row({"  bad request", integer(requests->find("bad_request"))});
        table.add_row(
            {"  overloaded", integer(requests->find("rejected_overload"))});
        table.add_row(
            {"  deadline", integer(requests->find("deadline_exceeded"))});
    }
    table.add_row({"connections", integer(stats.find("connections"))});

    table.add_separator();
    add_histogram_rows(table, "latency", stats.find("request_latency_us"));
    add_histogram_rows(table, "queue wait", stats.find("queue_wait_us"));

    if (const json::Value* cache = stats.find("cache")) {
        table.add_separator();
        if (const json::Value* v = cache->find("cas_hit_rate"))
            table.add_row({"cas hit rate",
                           format_compact(100.0 * v->number_or(0.0), 4) + "%"});
        if (const json::Value* v = cache->find("profile_cache_hit_rate"))
            table.add_row({"profile hit rate",
                           format_compact(100.0 * v->number_or(0.0), 4) + "%"});
    }
    return table.to_string();
}

std::string logs_text(const json::Value& logs_response) {
    std::string out;
    const json::Value* records = logs_response.find("records");
    if (records == nullptr || !records->is_array()) return out;
    for (const json::Value& record : records->elements) {
        const json::Value* line = record.find("line");
        if (line != nullptr) {
            out += line->string_or("");
            out += '\n';
        }
    }
    return out;
}

} // namespace psaflow::serve
