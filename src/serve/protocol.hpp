// The daemon's wire protocol: what goes inside each frame (support/net
// provides the framing). One JSON object per frame, one response frame per
// request frame, connection stays open for pipelined requests.
//
// Every request may carry "schema_version" (currently 1). Absent means 1
// (the pre-versioning wire shape); any other value is rejected with a
// clear bad_request error instead of an opaque field-shape failure.
// Responses always stamp the version they speak.
//
// Requests:
//   {"schema_version":1, "type":"compile", "app":"nbody",
//    "mode":"informed", "budget":0.001, "threshold_x":4.0,
//    "out":"designs/nbody", "deadline_ms":500, "flow":{...}}
//     — the compile fields are exactly a `psaflowc --batch` manifest
//       entry, so a manifest request and a daemon request are the same
//       object (serve/request.hpp). The optional "flow" member is a flow
//       manifest (flow/manifest.hpp): clients ship user-programmed flows
//       over the wire and the daemon runs them in place of the builtin
//       standard flow.
//   {"type":"stats"}  — live metrics snapshot (never queued; answered
//       inline even when every worker is busy).
//   {"type":"metrics"} — Prometheus text-format exposition of the same
//       metrics plane; the body rides in the response's "body" member.
//       Answered inline.
//   {"type":"logs", "max":100, "min_level":"info"} — recent records from
//       the structured-log ring (both fields optional). Answered inline.
//   {"type":"ping"}   — liveness/readiness probe, answered inline.
//   {"type":"cas_get", "key":"<16-hex>"} — remote-CAS read: the payload of
//       the daemon's *local* disk store for that 64-bit content key
//       (base64 in the response's "payload"; "found":false on a miss).
//       Never recurses into the daemon's own remote tier, so store chains
//       terminate. Answered inline — artifact exchange must not queue
//       behind compiles.
//   {"type":"cas_put", "key":"<16-hex>", "payload":"<base64>"} — remote-CAS
//       write into the daemon's local disk store. Content-addressed, so
//       re-puts are idempotent. Answered inline.
//   {"type":"sleep", "ms":200, "deadline_ms":50} — test-only (rejected
//       unless the daemon enables test endpoints): occupies a worker,
//       cancellable; exists so tests can fill the queue and trip
//       deadlines deterministically without depending on compile times.
//   {"type":"flight", "max":50} — newest records from the flight
//       recorder (obs/flight.hpp): per-request digests for slow-request
//       forensics. "max" optional (0 = everything live). Answered inline
//       by daemons (their completions) and routers (their relays).
//   {"type":"cluster_stats"} / {"type":"cluster_metrics"} — router only:
//       scrape every live shard concurrently and return the fleet view
//       (merged histograms + counters with per-shard labels). A daemon
//       rejects these with bad_request pointing at the router.
//
// Any request may additionally carry a "trace" member (wire_trace.hpp):
//   "trace": {"trace_id":"<16-hex>", "parent_span":N}
// and the response to a traced request carries back
//   "trace": {"trace_id":..., "spans":[...]}
// so the requester can graft the responder's work into its span tree.
//
// Responses:
//   {"ok":true, "type":..., ...payload...}
//   {"ok":false, "error_kind":"bad_request"|"overloaded"|
//    "deadline_exceeded"|"internal", "error":"...",
//    "retry_after_ms":N}            — retry_after_ms only on overloaded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "obs/flight.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "serve/wire_trace.hpp"
#include "support/json.hpp"

namespace psaflow::serve {

/// The wire schema version this build speaks. Requests without a
/// "schema_version" are treated as version 1; responses always carry it.
inline constexpr int kSchemaVersion = 1;

enum class RequestType {
    Compile,
    Stats,
    Ping,
    Sleep,
    Logs,
    Metrics,
    CasGet,
    CasPut,
    Flight,
    ClusterStats,
    ClusterMetrics,
};

struct WireRequest {
    RequestType type = RequestType::Ping;
    CompileRequest compile;     ///< valid when type == Compile
    long long sleep_ms = 0;     ///< valid when type == Sleep
    long long deadline_ms = 0;  ///< Sleep's deadline (Compile carries its own)
    long long logs_max = 100;   ///< valid when type == Logs
    std::string logs_min_level; ///< Logs filter ("" = everything captured)
    std::uint64_t cas_key = 0;  ///< valid when type == CasGet/CasPut
    std::string cas_payload;    ///< decoded bytes, valid when type == CasPut
    long long flight_max = 0;   ///< valid when type == Flight (0 = all)
    WireTraceContext trace;     ///< distributed trace context (any type)
};

/// Parse one request frame. Returns an error message (a bad_request body
/// for the caller to send back) on malformed input.
[[nodiscard]] std::optional<std::string>
parse_wire_request(const json::Value& doc, WireRequest& out);

/// Response builders (serialise with json::dump before framing).
[[nodiscard]] json::Value make_error_response(ErrorKind kind,
                                              const std::string& message,
                                              long long retry_after_ms = 0);
[[nodiscard]] json::Value make_compile_response(const CompileRequest& req,
                                                const CompileOutcome& outcome);
[[nodiscard]] json::Value make_pong_response();

/// cas_get response: "found" + base64 "payload" when present.
[[nodiscard]] json::Value
make_cas_get_response(const std::optional<std::string>& payload);
/// flight response: recorder totals + the newest `max_records` digests
/// (0 = every live record), oldest first. Shared by daemons and routers.
[[nodiscard]] json::Value
make_flight_response(const obs::FlightRecorder& recorder,
                     long long max_records);
/// cas_put response: "stored" is false when the daemon has no disk store.
[[nodiscard]] json::Value make_cas_put_response(bool stored);

/// The client's view of a response frame: the failure taxonomy decoded,
/// with the full document kept for payload access.
struct ResponseView {
    bool ok = false;
    ErrorKind error_kind = ErrorKind::Internal;
    std::string error;
    long long retry_after_ms = 0;
};

/// Decode the ok/error envelope of a response document. Returns nullopt
/// (not a ResponseView) when the document is not a response object at all.
[[nodiscard]] std::optional<ResponseView>
parse_response(const json::Value& doc);

} // namespace psaflow::serve
