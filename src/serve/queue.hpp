// Bounded admission queues.
//
// The daemon's backpressure point: connection threads `try_push` incoming
// compile jobs and, when the queue is full, the daemon answers with an
// `overloaded` error and a retry hint instead of buffering unboundedly —
// admission control happens at the socket, not by OOM. Worker threads
// block in `pop` until a job or shutdown arrives. `close()` wakes every
// waiter; a closed queue still drains items already admitted, so graceful
// shutdown finishes accepted work before the workers exit.
//
// Two shapes share those semantics:
//   * BoundedQueue — the original single-lane MPMC deque.
//   * LaneQueue — the daemon's current admission queue: K priority lanes
//     (lane 0 drains strictly before lane 1, so interactive requests
//     overtake batch backfill), and per-worker sub-queues inside each lane
//     keyed by the request's affinity digest, so repeat requests for the
//     same module land on the worker whose warm FlowSession already
//     profiled it. An idle worker whose own sub-queues are empty *steals*
//     the oldest job from the longest sibling sub-queue of the highest
//     non-empty lane — affinity is a hint, head-of-line blocking is not
//     allowed to grow the queue-wait tail.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace psaflow::serve {

template <typename T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    /// Admit `item` if there is room and the queue is open. Never blocks:
    /// a full queue is the caller's signal to reject with backpressure.
    [[nodiscard]] bool try_push(T item) {
        {
            std::lock_guard lock(mu_);
            if (closed_ || items_.size() >= capacity_) return false;
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
        return true;
    }

    /// Block until an item is available (returning it) or the queue is
    /// closed *and* drained (returning nullopt — the worker's exit signal).
    [[nodiscard]] std::optional<T> pop() {
        std::unique_lock lock(mu_);
        ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /// Stop admitting; wake all poppers. Items already queued still drain.
    void close() {
        {
            std::lock_guard lock(mu_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    [[nodiscard]] std::size_t depth() const {
        std::lock_guard lock(mu_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    [[nodiscard]] bool closed() const {
        std::lock_guard lock(mu_);
        return closed_;
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
};

/// Priority lanes + per-worker affinity sub-queues + work stealing. See
/// the header comment for the draining discipline. One shared capacity
/// bounds all lanes together: admission control cares about total queued
/// work, not its priority mix.
template <typename T>
class LaneQueue {
public:
    /// What pop() hands a worker: the item, the lane it came from, and
    /// whether it was stolen from a sibling's sub-queue.
    struct Popped {
        T item;
        std::size_t lane = 0;
        bool stolen = false;
    };

    LaneQueue(std::size_t capacity, std::size_t lanes, std::size_t workers)
        : capacity_(capacity == 0 ? 1 : capacity),
          lanes_(lanes == 0 ? 1 : lanes),
          workers_(workers == 0 ? 1 : workers),
          queues_(lanes_ * workers_) {}

    /// Admit `item` into `lane`, sub-queued for worker `affinity % workers`.
    /// Never blocks: a full or closed queue returns false (reject with
    /// backpressure). Out-of-range lanes clamp to the lowest priority.
    [[nodiscard]] bool try_push(T item, std::size_t lane,
                                std::uint64_t affinity) {
        if (lane >= lanes_) lane = lanes_ - 1;
        const std::size_t worker =
            static_cast<std::size_t>(affinity % workers_);
        {
            std::lock_guard lock(mu_);
            if (closed_ || size_ >= capacity_) return false;
            queues_[lane * workers_ + worker].push_back(std::move(item));
            ++size_;
        }
        ready_.notify_all();
        return true;
    }

    /// Block until a job for `worker` is available or the queue is closed
    /// *and* drained (nullopt — the worker's exit signal). Scans lanes in
    /// priority order; within a lane takes the worker's own sub-queue
    /// first, then steals the oldest item of the longest sibling.
    [[nodiscard]] std::optional<Popped> pop(std::size_t worker) {
        worker %= workers_;
        std::unique_lock lock(mu_);
        ready_.wait(lock, [&] { return closed_ || size_ > 0; });
        if (size_ == 0) return std::nullopt;
        for (std::size_t lane = 0; lane < lanes_; ++lane) {
            std::deque<T>& own = queues_[lane * workers_ + worker];
            if (!own.empty()) {
                Popped popped{std::move(own.front()), lane, false};
                own.pop_front();
                --size_;
                return popped;
            }
            std::size_t victim = workers_;
            std::size_t longest = 0;
            for (std::size_t w = 0; w < workers_; ++w) {
                const std::size_t depth = queues_[lane * workers_ + w].size();
                if (depth > longest) {
                    longest = depth;
                    victim = w;
                }
            }
            if (victim < workers_) {
                std::deque<T>& q = queues_[lane * workers_ + victim];
                Popped popped{std::move(q.front()), lane, true};
                q.pop_front();
                --size_;
                ++steals_;
                return popped;
            }
        }
        return std::nullopt; // unreachable: size_ > 0 implies a non-empty lane
    }

    /// Stop admitting; wake all poppers. Items already queued still drain.
    void close() {
        {
            std::lock_guard lock(mu_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    [[nodiscard]] std::size_t depth() const {
        std::lock_guard lock(mu_);
        return size_;
    }

    [[nodiscard]] std::size_t lane_depth(std::size_t lane) const {
        std::lock_guard lock(mu_);
        if (lane >= lanes_) return 0;
        std::size_t total = 0;
        for (std::size_t w = 0; w < workers_; ++w)
            total += queues_[lane * workers_ + w].size();
        return total;
    }

    [[nodiscard]] std::uint64_t steals() const {
        std::lock_guard lock(mu_);
        return steals_;
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t lanes() const { return lanes_; }

    [[nodiscard]] bool closed() const {
        std::lock_guard lock(mu_);
        return closed_;
    }

private:
    const std::size_t capacity_;
    const std::size_t lanes_;
    const std::size_t workers_;
    mutable std::mutex mu_;
    std::condition_variable ready_;
    std::vector<std::deque<T>> queues_; ///< [lane][worker], flattened
    std::size_t size_ = 0;
    std::uint64_t steals_ = 0;
    bool closed_ = false;
};

} // namespace psaflow::serve
