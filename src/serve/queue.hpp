// Bounded MPMC admission queue.
//
// The daemon's backpressure point: connection threads `try_push` incoming
// compile jobs and, when the queue is full, the daemon answers with an
// `overloaded` error and a retry hint instead of buffering unboundedly —
// admission control happens at the socket, not by OOM. Worker threads
// block in `pop` until a job or shutdown arrives. `close()` wakes every
// waiter; a closed queue still drains items already admitted, so graceful
// shutdown finishes accepted work before the workers exit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace psaflow::serve {

template <typename T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    /// Admit `item` if there is room and the queue is open. Never blocks:
    /// a full queue is the caller's signal to reject with backpressure.
    [[nodiscard]] bool try_push(T item) {
        {
            std::lock_guard lock(mu_);
            if (closed_ || items_.size() >= capacity_) return false;
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
        return true;
    }

    /// Block until an item is available (returning it) or the queue is
    /// closed *and* drained (returning nullopt — the worker's exit signal).
    [[nodiscard]] std::optional<T> pop() {
        std::unique_lock lock(mu_);
        ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /// Stop admitting; wake all poppers. Items already queued still drain.
    void close() {
        {
            std::lock_guard lock(mu_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    [[nodiscard]] std::size_t depth() const {
        std::lock_guard lock(mu_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    [[nodiscard]] bool closed() const {
        std::lock_guard lock(mu_);
        return closed_;
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace psaflow::serve
