// psaflow public API.
//
// The facade over the whole system: parse a technology-agnostic HLC
// application, run the paper's implemented PSA-flow (Fig. 4) in informed or
// uninformed mode, and receive the generated designs with their emitted
// sources and predicted performance.
//
//     const auto& app = psaflow::apps::nbody();
//     auto result = psaflow::compile(app, {.mode = flow::Mode::Informed});
//     for (const auto& d : result.designs)
//         std::cout << d.name() << ": " << d.speedup << "x\n";
#pragma once

#include <string>
#include <string_view>

#include "analysis/workload.hpp"
#include "apps/apps.hpp"
#include "flow/engine.hpp"
#include "flow/manifest.hpp"
#include "flow/session.hpp"
#include "flow/standard_flow.hpp"
#include "support/cancel.hpp"

namespace psaflow {

struct RunOptions {
    flow::Mode mode = flow::Mode::Informed;
    flow::Budget budget;         ///< Fig. 3 cost feedback (optional)
    flow::CostModel cost_model;  ///< cloud prices for the budget check
    double intensity_threshold_x = 4.0; ///< Fig. 3's tunable X (FLOPs/B)
    int jobs = 0; ///< branch-path workers; 0 = PSAFLOW_JOBS / hw default

    /// Cooperative cancellation (not owned; may be null). When the token
    /// fires — explicitly or via its deadline — the flow unwinds with
    /// CancelledError at the next task boundary or interpreter poll.
    const CancelToken* cancel = nullptr;

    /// Manifest-defined flow (not owned; may be null). When set, compile()
    /// runs this flow instead of standard_flow(mode) and the manifest's
    /// engine parameters (budget / threshold_x / max_feedback_iterations)
    /// override the fields above — a flow that declares its own budget
    /// means it. When null, a session-level manifest
    /// (SessionOptions::flow_manifest) applies; the builtin standard flow
    /// is the final fallback.
    const flow::ManifestFlow* flow_manifest = nullptr;
};

/// Run the standard PSA-flow on one of the bundled applications.
[[nodiscard]] flow::FlowResult compile(const apps::Application& app,
                                       const RunOptions& options = {});

/// Run the standard PSA-flow on arbitrary HLC source. `workload` drives the
/// dynamic analyses; `allow_single_precision` gates the SP transforms.
[[nodiscard]] flow::FlowResult compile(const std::string& app_name,
                                       std::string_view source,
                                       analysis::Workload workload,
                                       bool allow_single_precision = true,
                                       const RunOptions& options = {});

/// Session-aware variants: run through the caller's FlowSession so many
/// compiles share one pool/cache/trace wiring (the batch driver's fast
/// path). `options.jobs == 0` defers to the session's jobs setting.
[[nodiscard]] flow::FlowResult compile(flow::FlowSession& session,
                                       const apps::Application& app,
                                       const RunOptions& options = {});

[[nodiscard]] flow::FlowResult compile(flow::FlowSession& session,
                                       const std::string& app_name,
                                       std::string_view source,
                                       analysis::Workload workload,
                                       bool allow_single_precision = true,
                                       const RunOptions& options = {});

/// Library version string.
[[nodiscard]] const char* version();

} // namespace psaflow
