#include "core/psaflow.hpp"

#include "frontend/parser.hpp"

namespace psaflow {

flow::FlowResult compile(const apps::Application& app,
                         const RunOptions& options) {
    flow::FlowSession session;
    return compile(session, app, options);
}

flow::FlowResult compile(const std::string& app_name, std::string_view source,
                         analysis::Workload workload,
                         bool allow_single_precision,
                         const RunOptions& options) {
    flow::FlowSession session;
    return compile(session, app_name, source, std::move(workload),
                   allow_single_precision, options);
}

flow::FlowResult compile(flow::FlowSession& session,
                         const apps::Application& app,
                         const RunOptions& options) {
    return compile(session, app.name, app.source, app.workload,
                   app.allow_single_precision, options);
}

flow::FlowResult compile(flow::FlowSession& session,
                         const std::string& app_name, std::string_view source,
                         analysis::Workload workload,
                         bool allow_single_precision,
                         const RunOptions& options) {
    auto module = frontend::parse_module(source, app_name);
    flow::FlowContext ctx(app_name, std::move(module), std::move(workload));
    ctx.allow_single_precision = allow_single_precision;
    ctx.intensity_threshold_x = options.intensity_threshold_x;
    ctx.cancel = options.cancel;

    flow::EngineOptions engine;
    engine.budget = options.budget;
    engine.cost_model = options.cost_model;
    engine.jobs = options.jobs;

    const flow::DesignFlow design_flow = flow::standard_flow(options.mode);
    return session.run(design_flow, std::move(ctx), engine);
}

const char* version() { return "psaflow 1.0.0"; }

} // namespace psaflow
