#include "core/psaflow.hpp"

#include <optional>

#include "frontend/parser.hpp"

namespace psaflow {

flow::FlowResult compile(const apps::Application& app,
                         const RunOptions& options) {
    flow::FlowSession session;
    return compile(session, app, options);
}

flow::FlowResult compile(const std::string& app_name, std::string_view source,
                         analysis::Workload workload,
                         bool allow_single_precision,
                         const RunOptions& options) {
    flow::FlowSession session;
    return compile(session, app_name, source, std::move(workload),
                   allow_single_precision, options);
}

flow::FlowResult compile(flow::FlowSession& session,
                         const apps::Application& app,
                         const RunOptions& options) {
    return compile(session, app.name, app.source, app.workload,
                   app.allow_single_precision, options);
}

flow::FlowResult compile(flow::FlowSession& session,
                         const std::string& app_name, std::string_view source,
                         analysis::Workload workload,
                         bool allow_single_precision,
                         const RunOptions& options) {
    // Request-level manifest wins over the session default; the builtin
    // standard flow is the fallback when neither is present.
    const flow::ManifestFlow* manifest = options.flow_manifest != nullptr
                                             ? options.flow_manifest
                                             : session.manifest_flow();

    auto module = frontend::parse_module(source, app_name);
    flow::FlowContext ctx(app_name, std::move(module), std::move(workload));
    ctx.allow_single_precision = allow_single_precision;
    ctx.intensity_threshold_x = options.intensity_threshold_x;
    if (manifest != nullptr && manifest->threshold_x.has_value())
        ctx.intensity_threshold_x = *manifest->threshold_x;
    ctx.cancel = options.cancel;

    flow::EngineOptions engine;
    engine.budget = options.budget;
    engine.cost_model = options.cost_model;
    engine.jobs = options.jobs;
    if (manifest != nullptr) {
        if (manifest->max_run_cost.has_value())
            engine.budget.max_run_cost = *manifest->max_run_cost;
        if (manifest->max_feedback_iterations.has_value())
            engine.max_feedback_iterations =
                *manifest->max_feedback_iterations;
    }

    std::optional<flow::DesignFlow> builtin;
    if (manifest == nullptr)
        builtin.emplace(flow::standard_flow(options.mode));
    const flow::DesignFlow& design_flow =
        manifest != nullptr ? manifest->flow : *builtin;
    return session.run(design_flow, std::move(ctx), engine);
}

const char* version() { return "psaflow 1.0.0"; }

} // namespace psaflow
