// Deep copies of AST subtrees. PSA-flow branch points fork the design state:
// every selected path receives its own clone of the module so target-specific
// transforms cannot interfere with sibling paths.
#pragma once

#include "ast/nodes.hpp"

namespace psaflow::ast {

/// Deep-copy an expression subtree. Clones receive fresh node ids.
[[nodiscard]] ExprPtr clone_expr(const Expr& expr);

/// Deep-copy a statement subtree (including attached pragmas).
[[nodiscard]] StmtPtr clone_stmt(const Stmt& stmt);

/// Deep-copy a block.
[[nodiscard]] BlockPtr clone_block(const Block& block);

/// Deep-copy a function.
[[nodiscard]] FunctionPtr clone_function(const Function& fn);

/// Deep-copy a whole module.
[[nodiscard]] ModulePtr clone_module(const Module& module);

} // namespace psaflow::ast
