// Scalar and value types of HLC, the high-level C subset psaflow operates on.
#pragma once

#include <string>

#include "support/error.hpp"

namespace psaflow::ast {

/// Element (scalar) types. HLC is deliberately small: the paper's transforms
/// act on loop nests and numeric code, not on aggregates.
enum class Type {
    Void,
    Bool,
    Int,    ///< 64-bit signed integer
    Float,  ///< IEEE single precision
    Double, ///< IEEE double precision
};

/// A declared value type: scalar or pointer-to-scalar (array parameters decay
/// to pointers, as in C).
struct ValueType {
    Type elem = Type::Void;
    bool is_pointer = false;

    friend bool operator==(const ValueType&, const ValueType&) = default;
};

[[nodiscard]] inline bool is_numeric(Type t) {
    return t == Type::Int || t == Type::Float || t == Type::Double;
}

[[nodiscard]] inline bool is_floating(Type t) {
    return t == Type::Float || t == Type::Double;
}

/// Size in bytes of one element; used by data-movement analysis and the
/// device transfer models.
[[nodiscard]] inline int size_of(Type t) {
    switch (t) {
        case Type::Void: return 0;
        case Type::Bool: return 1;
        case Type::Int: return 8;
        case Type::Float: return 4;
        case Type::Double: return 8;
    }
    throw Error("size_of: bad type");
}

[[nodiscard]] inline std::string to_string(Type t) {
    switch (t) {
        case Type::Void: return "void";
        case Type::Bool: return "bool";
        case Type::Int: return "int";
        case Type::Float: return "float";
        case Type::Double: return "double";
    }
    throw Error("to_string: bad type");
}

[[nodiscard]] inline std::string to_string(const ValueType& vt) {
    std::string s = to_string(vt.elem);
    if (vt.is_pointer) s += "*";
    return s;
}

} // namespace psaflow::ast
