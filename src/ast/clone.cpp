#include "ast/clone.hpp"

#include "support/error.hpp"

namespace psaflow::ast {

namespace {

ExprPtr clone_opt(const ExprPtr& expr) {
    return expr ? clone_expr(*expr) : nullptr;
}

} // namespace

ExprPtr clone_expr(const Expr& expr) {
    ExprPtr out;
    switch (expr.kind()) {
        case NodeKind::IntLit: {
            const auto& e = static_cast<const IntLit&>(expr);
            auto c = std::make_unique<IntLit>();
            c->value = e.value;
            out = std::move(c);
            break;
        }
        case NodeKind::FloatLit: {
            const auto& e = static_cast<const FloatLit&>(expr);
            auto c = std::make_unique<FloatLit>();
            c->value = e.value;
            c->single = e.single;
            c->spelling = e.spelling;
            out = std::move(c);
            break;
        }
        case NodeKind::BoolLit: {
            const auto& e = static_cast<const BoolLit&>(expr);
            auto c = std::make_unique<BoolLit>();
            c->value = e.value;
            out = std::move(c);
            break;
        }
        case NodeKind::Ident: {
            const auto& e = static_cast<const Ident&>(expr);
            auto c = std::make_unique<Ident>();
            c->name = e.name;
            out = std::move(c);
            break;
        }
        case NodeKind::Unary: {
            const auto& e = static_cast<const Unary&>(expr);
            auto c = std::make_unique<Unary>();
            c->op = e.op;
            c->operand = clone_expr(*e.operand);
            out = std::move(c);
            break;
        }
        case NodeKind::Binary: {
            const auto& e = static_cast<const Binary&>(expr);
            auto c = std::make_unique<Binary>();
            c->op = e.op;
            c->lhs = clone_expr(*e.lhs);
            c->rhs = clone_expr(*e.rhs);
            out = std::move(c);
            break;
        }
        case NodeKind::Call: {
            const auto& e = static_cast<const Call&>(expr);
            auto c = std::make_unique<Call>();
            c->callee = e.callee;
            for (const auto& a : e.args) c->args.push_back(clone_expr(*a));
            out = std::move(c);
            break;
        }
        case NodeKind::Index: {
            const auto& e = static_cast<const Index&>(expr);
            auto c = std::make_unique<Index>();
            c->base = clone_expr(*e.base);
            c->index = clone_expr(*e.index);
            out = std::move(c);
            break;
        }
        default:
            throw Error("clone_expr: not an expression node");
    }
    out->loc = expr.loc;
    return out;
}

StmtPtr clone_stmt(const Stmt& stmt) {
    StmtPtr out;
    switch (stmt.kind()) {
        case NodeKind::Block:
            out = clone_block(static_cast<const Block&>(stmt));
            break;
        case NodeKind::VarDecl: {
            const auto& s = static_cast<const VarDecl&>(stmt);
            auto c = std::make_unique<VarDecl>();
            c->elem = s.elem;
            c->name = s.name;
            c->is_array = s.is_array;
            c->array_size = clone_opt(s.array_size);
            c->init = clone_opt(s.init);
            out = std::move(c);
            break;
        }
        case NodeKind::Assign: {
            const auto& s = static_cast<const Assign&>(stmt);
            auto c = std::make_unique<Assign>();
            c->op = s.op;
            c->target = clone_expr(*s.target);
            c->value = clone_expr(*s.value);
            out = std::move(c);
            break;
        }
        case NodeKind::If: {
            const auto& s = static_cast<const If&>(stmt);
            auto c = std::make_unique<If>();
            c->cond = clone_expr(*s.cond);
            c->then_body = clone_block(*s.then_body);
            if (s.else_body) c->else_body = clone_block(*s.else_body);
            out = std::move(c);
            break;
        }
        case NodeKind::For: {
            const auto& s = static_cast<const For&>(stmt);
            auto c = std::make_unique<For>();
            c->var = s.var;
            c->init = clone_expr(*s.init);
            c->limit = clone_expr(*s.limit);
            c->step = clone_expr(*s.step);
            c->body = clone_block(*s.body);
            out = std::move(c);
            break;
        }
        case NodeKind::While: {
            const auto& s = static_cast<const While&>(stmt);
            auto c = std::make_unique<While>();
            c->cond = clone_expr(*s.cond);
            c->body = clone_block(*s.body);
            out = std::move(c);
            break;
        }
        case NodeKind::Return: {
            const auto& s = static_cast<const Return&>(stmt);
            auto c = std::make_unique<Return>();
            c->value = clone_opt(s.value);
            out = std::move(c);
            break;
        }
        case NodeKind::ExprStmt: {
            const auto& s = static_cast<const ExprStmt&>(stmt);
            auto c = std::make_unique<ExprStmt>();
            c->expr = clone_expr(*s.expr);
            out = std::move(c);
            break;
        }
        default:
            throw Error("clone_stmt: not a statement node");
    }
    out->pragmas = stmt.pragmas;
    out->loc = stmt.loc;
    return out;
}

BlockPtr clone_block(const Block& block) {
    auto out = std::make_unique<Block>();
    out->loc = block.loc;
    out->pragmas = block.pragmas;
    for (const auto& s : block.stmts) out->stmts.push_back(clone_stmt(*s));
    return out;
}

FunctionPtr clone_function(const Function& fn) {
    auto out = std::make_unique<Function>();
    out->loc = fn.loc;
    out->ret = fn.ret;
    out->name = fn.name;
    for (const auto& p : fn.params) {
        auto pc = std::make_unique<Param>();
        pc->loc = p->loc;
        pc->type = p->type;
        pc->name = p->name;
        out->params.push_back(std::move(pc));
    }
    out->body = clone_block(*fn.body);
    return out;
}

ModulePtr clone_module(const Module& module) {
    auto out = std::make_unique<Module>();
    out->loc = module.loc;
    out->name = module.name;
    for (const auto& f : module.functions)
        out->functions.push_back(clone_function(*f));
    return out;
}

} // namespace psaflow::ast
