// The HLC abstract syntax tree.
//
// Artisan (the paper's meta-programming framework) exposes an AST that
// "closely mirrors the source-code as written without lowering", so generated
// designs stay human-readable. This AST follows the same philosophy: nodes
// keep spellings (float literals), pragmas attach to the statements they
// precede, and the printer in printer.hpp round-trips source faithfully.
//
// Ownership: the tree is a strict hierarchy of std::unique_ptr. Non-owning
// observers (query results, parent maps, analysis results) use raw pointers,
// valid for the lifetime of the owning Module.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ast/type.hpp"
#include "support/source_location.hpp"

namespace psaflow::ast {

enum class NodeKind {
    Module,
    Function,
    Param,
    // statements
    Block,
    VarDecl,
    Assign,
    If,
    For,
    While,
    Return,
    ExprStmt,
    // expressions
    IntLit,
    FloatLit,
    BoolLit,
    Ident,
    Unary,
    Binary,
    Call,
    Index,
};

[[nodiscard]] const char* to_string(NodeKind k);

/// Base of every AST node. `id` is unique per process and survives printing
/// (but not cloning: clones get fresh ids), letting query results and reports
/// name specific nodes unambiguously.
struct Node {
    using Id = std::uint64_t;

    Node();
    virtual ~Node() = default;

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    [[nodiscard]] virtual NodeKind kind() const = 0;

    Id id;
    SrcLoc loc;

private:
    static Id next_id();
};

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

struct Expr : Node {};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLit final : Expr {
    long long value = 0;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::IntLit; }
};

/// A floating literal. `single` distinguishes `1.0f` from `1.0`; the
/// "Employ SP Numeric Literals" transform flips it. `spelling` preserves the
/// user's original digits so printing does not perturb the source.
struct FloatLit final : Expr {
    double value = 0.0;
    bool single = false;
    std::string spelling;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::FloatLit; }
};

struct BoolLit final : Expr {
    bool value = false;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::BoolLit; }
};

struct Ident final : Expr {
    std::string name;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Ident; }
};

enum class UnaryOp { Neg, Not };

struct Unary final : Expr {
    UnaryOp op = UnaryOp::Neg;
    ExprPtr operand;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Unary; }
};

enum class BinaryOp {
    Add, Sub, Mul, Div, Mod,
    Lt, Le, Gt, Ge, Eq, Ne,
    And, Or,
};

[[nodiscard]] const char* to_string(BinaryOp op);
[[nodiscard]] bool is_comparison(BinaryOp op);
[[nodiscard]] bool is_logical(BinaryOp op);
[[nodiscard]] bool is_arithmetic(BinaryOp op);

struct Binary final : Expr {
    BinaryOp op = BinaryOp::Add;
    ExprPtr lhs;
    ExprPtr rhs;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Binary; }
};

/// A call to a builtin math function (sqrt, exp, ...) or a user function.
struct Call final : Expr {
    std::string callee;
    std::vector<ExprPtr> args;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Call; }
};

/// Array subscript `base[index]`. `base` is an Ident in well-formed HLC
/// (no pointer arithmetic chains), which the type checker enforces.
struct Index final : Expr {
    ExprPtr base;
    ExprPtr index;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Index; }
};

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

/// Base of statements. `pragmas` holds the `#pragma` lines written (or
/// instrumented) immediately before this statement, e.g. "omp parallel for"
/// or "unroll 8". Keeping them on the statement makes insert-pragma
/// instrumentation a one-line edit, exactly as in the paper's Fig. 2.
struct Stmt : Node {
    std::vector<std::string> pragmas;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct Block final : Stmt {
    std::vector<StmtPtr> stmts;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Block; }
};

using BlockPtr = std::unique_ptr<Block>;

/// `double x = e;` or `float acc[128];` — local declaration, optionally an
/// array with a constant-expression size, optionally initialised.
struct VarDecl final : Stmt {
    Type elem = Type::Double;
    std::string name;
    bool is_array = false;
    ExprPtr array_size; ///< non-null iff is_array
    ExprPtr init;       ///< may be null

    [[nodiscard]] NodeKind kind() const override { return NodeKind::VarDecl; }
};

enum class AssignOp { Set, Add, Sub, Mul, Div };

[[nodiscard]] const char* to_string(AssignOp op);

/// `target = value;` and compound forms. Target is an Ident or Index.
struct Assign final : Stmt {
    AssignOp op = AssignOp::Set;
    ExprPtr target;
    ExprPtr value;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Assign; }
};

struct If final : Stmt {
    ExprPtr cond;
    BlockPtr then_body;
    BlockPtr else_body; ///< may be null

    [[nodiscard]] NodeKind kind() const override { return NodeKind::If; }
};

/// Canonical counted loop: `for (int var = init; var < limit; var += step)`.
/// The parser normalises `var = var + c` and `var++` steps into this form.
/// Canonical loops are what the paper's loop analyses (dependence,
/// trip-count, unrolling) reason about.
struct For final : Stmt {
    std::string var;
    ExprPtr init;
    ExprPtr limit;
    ExprPtr step;
    BlockPtr body;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::For; }
};

struct While final : Stmt {
    ExprPtr cond;
    BlockPtr body;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::While; }
};

struct Return final : Stmt {
    ExprPtr value; ///< may be null

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Return; }
};

/// Expression evaluated for effect — in practice a call statement.
struct ExprStmt final : Stmt {
    ExprPtr expr;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::ExprStmt; }
};

// --------------------------------------------------------------------------
// Declarations
// --------------------------------------------------------------------------

struct Param final : Node {
    ValueType type;
    std::string name;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Param; }
};

using ParamPtr = std::unique_ptr<Param>;

struct Function final : Node {
    Type ret = Type::Void;
    std::string name;
    std::vector<ParamPtr> params;
    BlockPtr body;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Function; }
};

using FunctionPtr = std::unique_ptr<Function>;

/// A whole translation unit. `name` labels the design for reports
/// ("nbody", "nbody.omp", ...).
struct Module final : Node {
    std::string name;
    std::vector<FunctionPtr> functions;

    [[nodiscard]] NodeKind kind() const override { return NodeKind::Module; }

    /// Find a function by name; null if absent.
    [[nodiscard]] Function* find_function(const std::string& fn_name) const;
};

using ModulePtr = std::unique_ptr<Module>;

/// Checked downcast: null when the node is not of kind T.
template <typename T>
[[nodiscard]] T* dyn_cast(Node* node) {
    return node != nullptr ? dynamic_cast<T*>(node) : nullptr;
}

template <typename T>
[[nodiscard]] const T* dyn_cast(const Node* node) {
    return node != nullptr ? dynamic_cast<const T*>(node) : nullptr;
}

} // namespace psaflow::ast
