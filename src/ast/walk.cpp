#include "ast/walk.hpp"

#include "support/error.hpp"

namespace psaflow::ast {

namespace {

// Single mutable implementation; the const overloads adapt via const_cast,
// which is sound because the callbacks they forward to only receive const
// references.
void children_impl(Node& node, const std::function<void(Node&)>& fn) {
    auto visit = [&](auto& ptr) {
        if (ptr) fn(*ptr);
    };
    switch (node.kind()) {
        case NodeKind::Module: {
            auto& m = static_cast<Module&>(node);
            for (auto& f : m.functions) visit(f);
            break;
        }
        case NodeKind::Function: {
            auto& f = static_cast<Function&>(node);
            for (auto& p : f.params) visit(p);
            visit(f.body);
            break;
        }
        case NodeKind::Param:
            break;
        case NodeKind::Block: {
            auto& b = static_cast<Block&>(node);
            for (auto& s : b.stmts) visit(s);
            break;
        }
        case NodeKind::VarDecl: {
            auto& d = static_cast<VarDecl&>(node);
            visit(d.array_size);
            visit(d.init);
            break;
        }
        case NodeKind::Assign: {
            auto& a = static_cast<Assign&>(node);
            visit(a.target);
            visit(a.value);
            break;
        }
        case NodeKind::If: {
            auto& i = static_cast<If&>(node);
            visit(i.cond);
            visit(i.then_body);
            visit(i.else_body);
            break;
        }
        case NodeKind::For: {
            auto& f = static_cast<For&>(node);
            visit(f.init);
            visit(f.limit);
            visit(f.step);
            visit(f.body);
            break;
        }
        case NodeKind::While: {
            auto& w = static_cast<While&>(node);
            visit(w.cond);
            visit(w.body);
            break;
        }
        case NodeKind::Return: {
            auto& r = static_cast<Return&>(node);
            visit(r.value);
            break;
        }
        case NodeKind::ExprStmt: {
            auto& e = static_cast<ExprStmt&>(node);
            visit(e.expr);
            break;
        }
        case NodeKind::IntLit:
        case NodeKind::FloatLit:
        case NodeKind::BoolLit:
        case NodeKind::Ident:
            break;
        case NodeKind::Unary: {
            auto& u = static_cast<Unary&>(node);
            visit(u.operand);
            break;
        }
        case NodeKind::Binary: {
            auto& b = static_cast<Binary&>(node);
            visit(b.lhs);
            visit(b.rhs);
            break;
        }
        case NodeKind::Call: {
            auto& c = static_cast<Call&>(node);
            for (auto& a : c.args) visit(a);
            break;
        }
        case NodeKind::Index: {
            auto& x = static_cast<Index&>(node);
            visit(x.base);
            visit(x.index);
            break;
        }
    }
}

} // namespace

void for_each_child(Node& node, const std::function<void(Node&)>& fn) {
    children_impl(node, fn);
}

void for_each_child(const Node& node,
                    const std::function<void(const Node&)>& fn) {
    children_impl(const_cast<Node&>(node), [&](Node& child) { fn(child); });
}

void walk(Node& node, const std::function<bool(Node&)>& fn) {
    if (!fn(node)) return;
    for_each_child(node, [&](Node& child) { walk(child, fn); });
}

void walk(const Node& node, const std::function<bool(const Node&)>& fn) {
    walk(const_cast<Node&>(node), [&](Node& n) { return fn(n); });
}

ParentMap::ParentMap(Node& root) {
    parents_[&root] = nullptr;
    walk(root, [&](Node& n) {
        for_each_child(n, [&](Node& child) { parents_[&child] = &n; });
        return true;
    });
}

Node* ParentMap::parent(const Node& node) const {
    auto it = parents_.find(&node);
    ensure(it != parents_.end(), "ParentMap: node not in mapped subtree");
    return it->second;
}

ParentMap::BlockSlot ParentMap::slot_of(const Stmt& stmt) const {
    auto* block = dyn_cast<Block>(parent(stmt));
    ensure(block != nullptr, "slot_of: statement is not inside a Block");
    for (std::size_t i = 0; i < block->stmts.size(); ++i) {
        if (block->stmts[i].get() == &stmt) return {block, i};
    }
    throw Error("slot_of: statement not found in its parent block");
}

int loop_depth(Node& root, const Node& node) {
    ParentMap parents(root);
    int depth = 0;
    for (const Node* p = parents.parent(node); p != nullptr;
         p = parents.parent(*p)) {
        if (p->kind() == NodeKind::For) ++depth;
    }
    return depth;
}

} // namespace psaflow::ast
