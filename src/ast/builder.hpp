// Terse factories for constructing AST fragments programmatically. The
// transform and code-generation passes synthesise new code (kernel wrappers,
// timer instrumentation, unrolled bodies) through these helpers.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ast/nodes.hpp"

namespace psaflow::ast::build {

[[nodiscard]] inline ExprPtr int_lit(long long v) {
    auto e = std::make_unique<IntLit>();
    e->value = v;
    return e;
}

[[nodiscard]] inline ExprPtr float_lit(double v, bool single = false) {
    auto e = std::make_unique<FloatLit>();
    e->value = v;
    e->single = single;
    return e;
}

/// Float literal with an explicit source spelling (e.g. "0.125"); the
/// printer re-emits the spelling verbatim, so built modules round-trip
/// byte-identically through print -> parse -> print.
[[nodiscard]] inline ExprPtr float_lit(double v, std::string spelling,
                                       bool single = false) {
    auto e = std::make_unique<FloatLit>();
    e->value = v;
    e->single = single;
    e->spelling = std::move(spelling);
    return e;
}

[[nodiscard]] inline ExprPtr bool_lit(bool v) {
    auto e = std::make_unique<BoolLit>();
    e->value = v;
    return e;
}

[[nodiscard]] inline ExprPtr ident(std::string name) {
    auto e = std::make_unique<Ident>();
    e->name = std::move(name);
    return e;
}

[[nodiscard]] inline ExprPtr unary(UnaryOp op, ExprPtr operand) {
    auto e = std::make_unique<Unary>();
    e->op = op;
    e->operand = std::move(operand);
    return e;
}

[[nodiscard]] inline ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Binary>();
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
}

[[nodiscard]] inline ExprPtr add(ExprPtr l, ExprPtr r) {
    return binary(BinaryOp::Add, std::move(l), std::move(r));
}
[[nodiscard]] inline ExprPtr sub(ExprPtr l, ExprPtr r) {
    return binary(BinaryOp::Sub, std::move(l), std::move(r));
}
[[nodiscard]] inline ExprPtr mul(ExprPtr l, ExprPtr r) {
    return binary(BinaryOp::Mul, std::move(l), std::move(r));
}
[[nodiscard]] inline ExprPtr lt(ExprPtr l, ExprPtr r) {
    return binary(BinaryOp::Lt, std::move(l), std::move(r));
}

[[nodiscard]] inline ExprPtr call(std::string callee,
                                  std::vector<ExprPtr> args = {}) {
    auto e = std::make_unique<Call>();
    e->callee = std::move(callee);
    e->args = std::move(args);
    return e;
}

[[nodiscard]] inline ExprPtr index(ExprPtr base, ExprPtr idx) {
    auto e = std::make_unique<Index>();
    e->base = std::move(base);
    e->index = std::move(idx);
    return e;
}

[[nodiscard]] inline ExprPtr index(std::string array, ExprPtr idx) {
    return index(ident(std::move(array)), std::move(idx));
}

[[nodiscard]] inline StmtPtr var_decl(Type elem, std::string name,
                                      ExprPtr init = nullptr) {
    auto s = std::make_unique<VarDecl>();
    s->elem = elem;
    s->name = std::move(name);
    s->init = std::move(init);
    return s;
}

[[nodiscard]] inline StmtPtr array_decl(Type elem, std::string name,
                                        ExprPtr size) {
    auto s = std::make_unique<VarDecl>();
    s->elem = elem;
    s->name = std::move(name);
    s->is_array = true;
    s->array_size = std::move(size);
    return s;
}

[[nodiscard]] inline StmtPtr assign(ExprPtr target, ExprPtr value,
                                    AssignOp op = AssignOp::Set) {
    auto s = std::make_unique<Assign>();
    s->op = op;
    s->target = std::move(target);
    s->value = std::move(value);
    return s;
}

[[nodiscard]] inline StmtPtr expr_stmt(ExprPtr expr) {
    auto s = std::make_unique<ExprStmt>();
    s->expr = std::move(expr);
    return s;
}

[[nodiscard]] inline StmtPtr ret(ExprPtr value = nullptr) {
    auto s = std::make_unique<Return>();
    s->value = std::move(value);
    return s;
}

[[nodiscard]] inline BlockPtr block(std::vector<StmtPtr> stmts = {}) {
    auto b = std::make_unique<Block>();
    b->stmts = std::move(stmts);
    return b;
}

/// Canonical counted loop `for (int var = init; var < limit; var += step)`.
[[nodiscard]] inline std::unique_ptr<For> for_loop(std::string var,
                                                   ExprPtr init, ExprPtr limit,
                                                   BlockPtr body,
                                                   ExprPtr step = nullptr) {
    auto s = std::make_unique<For>();
    s->var = std::move(var);
    s->init = std::move(init);
    s->limit = std::move(limit);
    s->step = step ? std::move(step) : int_lit(1);
    s->body = std::move(body);
    return s;
}

[[nodiscard]] inline StmtPtr while_loop(ExprPtr cond, BlockPtr body) {
    auto s = std::make_unique<While>();
    s->cond = std::move(cond);
    s->body = std::move(body);
    return s;
}

[[nodiscard]] inline StmtPtr if_stmt(ExprPtr cond, BlockPtr then_body,
                                     BlockPtr else_body = nullptr) {
    auto s = std::make_unique<If>();
    s->cond = std::move(cond);
    s->then_body = std::move(then_body);
    s->else_body = std::move(else_body);
    return s;
}

[[nodiscard]] inline ParamPtr param(ValueType type, std::string name) {
    auto p = std::make_unique<Param>();
    p->type = type;
    p->name = std::move(name);
    return p;
}

[[nodiscard]] inline FunctionPtr function(Type ret, std::string name,
                                          std::vector<ParamPtr> params,
                                          BlockPtr body) {
    auto f = std::make_unique<Function>();
    f->ret = ret;
    f->name = std::move(name);
    f->params = std::move(params);
    f->body = std::move(body);
    return f;
}

[[nodiscard]] inline ModulePtr module(std::string name,
                                      std::vector<FunctionPtr> functions) {
    auto m = std::make_unique<Module>();
    m->name = std::move(name);
    m->functions = std::move(functions);
    return m;
}

} // namespace psaflow::ast::build
