// Terse factories for constructing AST fragments programmatically. The
// transform and code-generation passes synthesise new code (kernel wrappers,
// timer instrumentation, unrolled bodies) through these helpers.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ast/nodes.hpp"

namespace psaflow::ast::build {

[[nodiscard]] inline ExprPtr int_lit(long long v) {
    auto e = std::make_unique<IntLit>();
    e->value = v;
    return e;
}

[[nodiscard]] inline ExprPtr float_lit(double v, bool single = false) {
    auto e = std::make_unique<FloatLit>();
    e->value = v;
    e->single = single;
    return e;
}

[[nodiscard]] inline ExprPtr bool_lit(bool v) {
    auto e = std::make_unique<BoolLit>();
    e->value = v;
    return e;
}

[[nodiscard]] inline ExprPtr ident(std::string name) {
    auto e = std::make_unique<Ident>();
    e->name = std::move(name);
    return e;
}

[[nodiscard]] inline ExprPtr unary(UnaryOp op, ExprPtr operand) {
    auto e = std::make_unique<Unary>();
    e->op = op;
    e->operand = std::move(operand);
    return e;
}

[[nodiscard]] inline ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Binary>();
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
}

[[nodiscard]] inline ExprPtr add(ExprPtr l, ExprPtr r) {
    return binary(BinaryOp::Add, std::move(l), std::move(r));
}
[[nodiscard]] inline ExprPtr sub(ExprPtr l, ExprPtr r) {
    return binary(BinaryOp::Sub, std::move(l), std::move(r));
}
[[nodiscard]] inline ExprPtr mul(ExprPtr l, ExprPtr r) {
    return binary(BinaryOp::Mul, std::move(l), std::move(r));
}
[[nodiscard]] inline ExprPtr lt(ExprPtr l, ExprPtr r) {
    return binary(BinaryOp::Lt, std::move(l), std::move(r));
}

[[nodiscard]] inline ExprPtr call(std::string callee,
                                  std::vector<ExprPtr> args = {}) {
    auto e = std::make_unique<Call>();
    e->callee = std::move(callee);
    e->args = std::move(args);
    return e;
}

[[nodiscard]] inline ExprPtr index(ExprPtr base, ExprPtr idx) {
    auto e = std::make_unique<Index>();
    e->base = std::move(base);
    e->index = std::move(idx);
    return e;
}

[[nodiscard]] inline ExprPtr index(std::string array, ExprPtr idx) {
    return index(ident(std::move(array)), std::move(idx));
}

[[nodiscard]] inline StmtPtr var_decl(Type elem, std::string name,
                                      ExprPtr init = nullptr) {
    auto s = std::make_unique<VarDecl>();
    s->elem = elem;
    s->name = std::move(name);
    s->init = std::move(init);
    return s;
}

[[nodiscard]] inline StmtPtr array_decl(Type elem, std::string name,
                                        ExprPtr size) {
    auto s = std::make_unique<VarDecl>();
    s->elem = elem;
    s->name = std::move(name);
    s->is_array = true;
    s->array_size = std::move(size);
    return s;
}

[[nodiscard]] inline StmtPtr assign(ExprPtr target, ExprPtr value,
                                    AssignOp op = AssignOp::Set) {
    auto s = std::make_unique<Assign>();
    s->op = op;
    s->target = std::move(target);
    s->value = std::move(value);
    return s;
}

[[nodiscard]] inline StmtPtr expr_stmt(ExprPtr expr) {
    auto s = std::make_unique<ExprStmt>();
    s->expr = std::move(expr);
    return s;
}

[[nodiscard]] inline StmtPtr ret(ExprPtr value = nullptr) {
    auto s = std::make_unique<Return>();
    s->value = std::move(value);
    return s;
}

[[nodiscard]] inline BlockPtr block(std::vector<StmtPtr> stmts = {}) {
    auto b = std::make_unique<Block>();
    b->stmts = std::move(stmts);
    return b;
}

/// Canonical counted loop `for (int var = init; var < limit; var += step)`.
[[nodiscard]] inline std::unique_ptr<For> for_loop(std::string var,
                                                   ExprPtr init, ExprPtr limit,
                                                   BlockPtr body,
                                                   ExprPtr step = nullptr) {
    auto s = std::make_unique<For>();
    s->var = std::move(var);
    s->init = std::move(init);
    s->limit = std::move(limit);
    s->step = step ? std::move(step) : int_lit(1);
    s->body = std::move(body);
    return s;
}

[[nodiscard]] inline ParamPtr param(ValueType type, std::string name) {
    auto p = std::make_unique<Param>();
    p->type = type;
    p->name = std::move(name);
    return p;
}

} // namespace psaflow::ast::build
