#include "ast/nodes.hpp"

#include <atomic>

namespace psaflow::ast {

Node::Node() : id(next_id()) {}

Node::Id Node::next_id() {
    static std::atomic<Id> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

const char* to_string(NodeKind k) {
    switch (k) {
        case NodeKind::Module: return "Module";
        case NodeKind::Function: return "Function";
        case NodeKind::Param: return "Param";
        case NodeKind::Block: return "Block";
        case NodeKind::VarDecl: return "VarDecl";
        case NodeKind::Assign: return "Assign";
        case NodeKind::If: return "If";
        case NodeKind::For: return "For";
        case NodeKind::While: return "While";
        case NodeKind::Return: return "Return";
        case NodeKind::ExprStmt: return "ExprStmt";
        case NodeKind::IntLit: return "IntLit";
        case NodeKind::FloatLit: return "FloatLit";
        case NodeKind::BoolLit: return "BoolLit";
        case NodeKind::Ident: return "Ident";
        case NodeKind::Unary: return "Unary";
        case NodeKind::Binary: return "Binary";
        case NodeKind::Call: return "Call";
        case NodeKind::Index: return "Index";
    }
    return "?";
}

const char* to_string(BinaryOp op) {
    switch (op) {
        case BinaryOp::Add: return "+";
        case BinaryOp::Sub: return "-";
        case BinaryOp::Mul: return "*";
        case BinaryOp::Div: return "/";
        case BinaryOp::Mod: return "%";
        case BinaryOp::Lt: return "<";
        case BinaryOp::Le: return "<=";
        case BinaryOp::Gt: return ">";
        case BinaryOp::Ge: return ">=";
        case BinaryOp::Eq: return "==";
        case BinaryOp::Ne: return "!=";
        case BinaryOp::And: return "&&";
        case BinaryOp::Or: return "||";
    }
    return "?";
}

bool is_comparison(BinaryOp op) {
    switch (op) {
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge:
        case BinaryOp::Eq:
        case BinaryOp::Ne: return true;
        default: return false;
    }
}

bool is_logical(BinaryOp op) {
    return op == BinaryOp::And || op == BinaryOp::Or;
}

bool is_arithmetic(BinaryOp op) {
    switch (op) {
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul:
        case BinaryOp::Div:
        case BinaryOp::Mod: return true;
        default: return false;
    }
}

const char* to_string(AssignOp op) {
    switch (op) {
        case AssignOp::Set: return "=";
        case AssignOp::Add: return "+=";
        case AssignOp::Sub: return "-=";
        case AssignOp::Mul: return "*=";
        case AssignOp::Div: return "/=";
    }
    return "?";
}

Function* Module::find_function(const std::string& fn_name) const {
    for (const auto& fn : functions) {
        if (fn->name == fn_name) return fn.get();
    }
    return nullptr;
}

} // namespace psaflow::ast
