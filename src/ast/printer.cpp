#include "ast/printer.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace psaflow::ast {

namespace {

// Binding strength for parenthesisation; higher binds tighter.
int precedence(BinaryOp op) {
    switch (op) {
        case BinaryOp::Mul:
        case BinaryOp::Div:
        case BinaryOp::Mod: return 6;
        case BinaryOp::Add:
        case BinaryOp::Sub: return 5;
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge: return 4;
        case BinaryOp::Eq:
        case BinaryOp::Ne: return 3;
        case BinaryOp::And: return 2;
        case BinaryOp::Or: return 1;
    }
    return 0;
}

constexpr int kUnaryPrec = 7;

std::string float_spelling(const FloatLit& lit) {
    std::string text = lit.spelling;
    if (text.empty()) {
        text = format_compact(lit.value, 17);
        // Guarantee the token re-lexes as a float, not an int.
        if (text.find_first_of(".eE") == std::string::npos) text += ".0";
    }
    const bool has_suffix = ends_with(text, "f") || ends_with(text, "F");
    if (lit.single && !has_suffix) text += "f";
    if (!lit.single && has_suffix) text.pop_back();
    return text;
}

class Printer {
public:
    void expr(const Expr& e, int parent_prec = 0) {
        switch (e.kind()) {
            case NodeKind::IntLit:
                os_ << static_cast<const IntLit&>(e).value;
                break;
            case NodeKind::FloatLit:
                os_ << float_spelling(static_cast<const FloatLit&>(e));
                break;
            case NodeKind::BoolLit:
                os_ << (static_cast<const BoolLit&>(e).value ? "true" : "false");
                break;
            case NodeKind::Ident:
                os_ << static_cast<const Ident&>(e).name;
                break;
            case NodeKind::Unary: {
                const auto& u = static_cast<const Unary&>(e);
                const bool paren = parent_prec > kUnaryPrec;
                if (paren) os_ << '(';
                os_ << (u.op == UnaryOp::Neg ? "-" : "!");
                expr(*u.operand, kUnaryPrec + 1);
                if (paren) os_ << ')';
                break;
            }
            case NodeKind::Binary: {
                const auto& b = static_cast<const Binary&>(e);
                const int prec = precedence(b.op);
                const bool paren = prec < parent_prec;
                if (paren) os_ << '(';
                expr(*b.lhs, prec);
                os_ << ' ' << to_string(b.op) << ' ';
                // Right operand needs strictly-higher binding: HLC binary
                // operators are left-associative.
                expr(*b.rhs, prec + 1);
                if (paren) os_ << ')';
                break;
            }
            case NodeKind::Call: {
                const auto& c = static_cast<const Call&>(e);
                os_ << c.callee << '(';
                for (std::size_t i = 0; i < c.args.size(); ++i) {
                    if (i != 0) os_ << ", ";
                    expr(*c.args[i]);
                }
                os_ << ')';
                break;
            }
            case NodeKind::Index: {
                const auto& x = static_cast<const Index&>(e);
                expr(*x.base, kUnaryPrec + 1);
                os_ << '[';
                expr(*x.index);
                os_ << ']';
                break;
            }
            default:
                throw Error("Printer: not an expression node");
        }
    }

    void stmt(const Stmt& s, int depth) {
        for (const auto& pragma : s.pragmas) {
            pad(depth);
            os_ << "#pragma " << pragma << '\n';
        }
        switch (s.kind()) {
            case NodeKind::Block: {
                pad(depth);
                os_ << "{\n";
                block_body(static_cast<const Block&>(s), depth + 1);
                pad(depth);
                os_ << "}\n";
                break;
            }
            case NodeKind::VarDecl: {
                const auto& d = static_cast<const VarDecl&>(s);
                pad(depth);
                os_ << to_string(d.elem) << ' ' << d.name;
                if (d.is_array) {
                    os_ << '[';
                    expr(*d.array_size);
                    os_ << ']';
                }
                if (d.init) {
                    os_ << " = ";
                    expr(*d.init);
                }
                os_ << ";\n";
                break;
            }
            case NodeKind::Assign: {
                const auto& a = static_cast<const Assign&>(s);
                pad(depth);
                expr(*a.target);
                os_ << ' ' << to_string(a.op) << ' ';
                expr(*a.value);
                os_ << ";\n";
                break;
            }
            case NodeKind::If: {
                const auto& i = static_cast<const If&>(s);
                pad(depth);
                os_ << "if (";
                expr(*i.cond);
                os_ << ") {\n";
                block_body(*i.then_body, depth + 1);
                pad(depth);
                os_ << "}";
                if (i.else_body) {
                    os_ << " else {\n";
                    block_body(*i.else_body, depth + 1);
                    pad(depth);
                    os_ << "}";
                }
                os_ << '\n';
                break;
            }
            case NodeKind::For: {
                const auto& f = static_cast<const For&>(s);
                pad(depth);
                os_ << "for (int " << f.var << " = ";
                expr(*f.init);
                os_ << "; " << f.var << " < ";
                expr(*f.limit);
                os_ << "; " << f.var << " = " << f.var << " + ";
                expr(*f.step, kUnaryPrec);
                os_ << ") {\n";
                block_body(*f.body, depth + 1);
                pad(depth);
                os_ << "}\n";
                break;
            }
            case NodeKind::While: {
                const auto& w = static_cast<const While&>(s);
                pad(depth);
                os_ << "while (";
                expr(*w.cond);
                os_ << ") {\n";
                block_body(*w.body, depth + 1);
                pad(depth);
                os_ << "}\n";
                break;
            }
            case NodeKind::Return: {
                const auto& r = static_cast<const Return&>(s);
                pad(depth);
                os_ << "return";
                if (r.value) {
                    os_ << ' ';
                    expr(*r.value);
                }
                os_ << ";\n";
                break;
            }
            case NodeKind::ExprStmt: {
                const auto& e = static_cast<const ExprStmt&>(s);
                pad(depth);
                expr(*e.expr);
                os_ << ";\n";
                break;
            }
            default:
                throw Error("Printer: not a statement node");
        }
    }

    void function(const Function& fn) {
        os_ << to_string(fn.ret) << ' ' << fn.name << '(';
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
            if (i != 0) os_ << ", ";
            os_ << to_string(fn.params[i]->type) << ' ' << fn.params[i]->name;
        }
        os_ << ") {\n";
        block_body(*fn.body, 1);
        os_ << "}\n";
    }

    void module(const Module& m) {
        for (std::size_t i = 0; i < m.functions.size(); ++i) {
            if (i != 0) os_ << '\n';
            function(*m.functions[i]);
        }
    }

    [[nodiscard]] std::string str() const { return os_.str(); }

private:
    void block_body(const Block& b, int depth) {
        for (const auto& s : b.stmts) stmt(*s, depth);
    }

    void pad(int depth) {
        for (int i = 0; i < depth; ++i) os_ << "    ";
    }

    std::ostringstream os_;
};

} // namespace

std::string to_source(const Module& module) {
    Printer p;
    p.module(module);
    return p.str();
}

std::string to_source(const Function& fn) {
    Printer p;
    p.function(fn);
    return p.str();
}

std::string to_source(const Stmt& stmt, int depth) {
    Printer p;
    p.stmt(stmt, depth);
    return p.str();
}

std::string to_source(const Expr& expr) {
    Printer p;
    p.expr(expr);
    return p.str();
}

} // namespace psaflow::ast
