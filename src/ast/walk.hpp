// Generic traversal over the HLC AST: child enumeration, pre-order walks and
// parent maps. The meta-programming query engine (src/meta) and every
// analysis pass are built on these primitives.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "ast/nodes.hpp"

namespace psaflow::ast {

/// Invoke `fn` on every direct child of `node`, in source order.
void for_each_child(Node& node, const std::function<void(Node&)>& fn);
void for_each_child(const Node& node, const std::function<void(const Node&)>& fn);

/// Pre-order traversal rooted at `node` (inclusive). `fn` returns whether to
/// descend into the visited node's children.
void walk(Node& node, const std::function<bool(Node&)>& fn);
void walk(const Node& node, const std::function<bool(const Node&)>& fn);

/// Collect, pre-order, every node under `root` (inclusive) for which `pred`
/// holds and which is of kind T.
template <typename T>
[[nodiscard]] std::vector<T*> collect(Node& root,
                                      const std::function<bool(const T&)>& pred =
                                          [](const T&) { return true; }) {
    std::vector<T*> out;
    walk(root, [&](Node& n) {
        if (auto* typed = dynamic_cast<T*>(&n); typed != nullptr && pred(*typed)) {
            out.push_back(typed);
        }
        return true;
    });
    return out;
}

/// Parent links for a subtree, built once by traversal. Nodes are keyed by
/// address; the map is invalidated by any structural edit.
class ParentMap {
public:
    explicit ParentMap(Node& root);

    /// Parent of `node`, or null for the root.
    [[nodiscard]] Node* parent(const Node& node) const;

    /// Nearest enclosing node of kind T (excluding `node` itself); null if none.
    template <typename T>
    [[nodiscard]] T* enclosing(const Node& node) const {
        for (Node* p = parent(node); p != nullptr; p = parent(*p)) {
            if (auto* typed = dynamic_cast<T*>(p)) return typed;
        }
        return nullptr;
    }

    /// The Block directly containing statement `stmt`, with `stmt`'s position
    /// in it; throws if `stmt` is not a direct child of a Block.
    struct BlockSlot {
        Block* block;
        std::size_t index;
    };
    [[nodiscard]] BlockSlot slot_of(const Stmt& stmt) const;

private:
    std::unordered_map<const Node*, Node*> parents_;
};

/// Number of `For` nodes strictly enclosing `node` within `root`.
[[nodiscard]] int loop_depth(Node& root, const Node& node);

} // namespace psaflow::ast
