// Source emission. psaflow is a source-to-source system: like Artisan, its
// AST mirrors the source as written, and this printer renders any subtree
// back to compilable, human-readable HLC text. Designs exported by the
// PSA-flow (and measured by the Table I LOC accounting) are produced here.
#pragma once

#include <string>

#include "ast/nodes.hpp"

namespace psaflow::ast {

/// Render a whole module as HLC source.
[[nodiscard]] std::string to_source(const Module& module);

/// Render a single function definition.
[[nodiscard]] std::string to_source(const Function& fn);

/// Render a statement subtree at the given indent depth (4 spaces per level).
[[nodiscard]] std::string to_source(const Stmt& stmt, int depth = 0);

/// Render an expression (no trailing newline).
[[nodiscard]] std::string to_source(const Expr& expr);

} // namespace psaflow::ast
