// Ablation study of the Fig. 3 PSA strategy at branch point A.
//
// The paper's claim is that the informed strategy "selects the best target
// for all of the five benchmarks". This bench quantifies what that is worth
// by comparing four selection policies:
//   - informed      : the Fig. 3 decision tree (one design per app);
//   - uninformed    : generate everything, keep the best (oracle; 5x cost);
//   - always-GPU    : fixed CPU+GPU mapping (RTX 2080 Ti);
//   - always-FPGA   : fixed CPU+FPGA mapping (Stratix10);
//   - always-OMP    : fixed multi-thread CPU mapping.
// For each policy it reports the achieved speedup and the regret versus the
// oracle. It also prints the decision inputs the strategy consumed
// (arithmetic intensity, transfer-vs-CPU time, loop structure) per app —
// the values flowing through the yellow hexagon of Fig. 3.
#include <iostream>
#include <string>

#include "core/psaflow.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace psaflow;

namespace {

double policy_speedup(const flow::FlowResult& all, codegen::TargetKind target,
                      platform::DeviceId device) {
    const auto* d = all.find(target, device);
    return d != nullptr && d->synthesizable ? d->speedup : 0.0;
}

} // namespace

int main() {
    std::cout << "=== Fig. 3 ablation: value of the informed PSA strategy "
                 "===\n\n";

    TablePrinter table({"Application", "informed", "oracle (uninformed)",
                        "always-GPU", "always-FPGA", "always-OMP"});

    double regret_informed = 0.0;
    double regret_gpu = 0.0;
    double regret_fpga = 0.0;
    double regret_omp = 0.0;
    int apps_count = 0;

    for (const apps::Application* app : apps::all_applications()) {
        RunOptions informed_opt;
        informed_opt.mode = flow::Mode::Informed;
        auto informed = compile(*app, informed_opt);

        RunOptions uninformed_opt;
        uninformed_opt.mode = flow::Mode::Uninformed;
        auto all = compile(*app, uninformed_opt);

        const double s_informed =
            informed.best() != nullptr ? informed.best()->speedup : 0.0;
        const double s_oracle =
            all.best() != nullptr ? all.best()->speedup : 0.0;
        const double s_gpu = policy_speedup(all, codegen::TargetKind::CpuGpu,
                                            platform::DeviceId::Rtx2080Ti);
        const double s_fpga = policy_speedup(
            all, codegen::TargetKind::CpuFpga, platform::DeviceId::Stratix10);
        const double s_omp = policy_speedup(all, codegen::TargetKind::CpuOpenMp,
                                            platform::DeviceId::Epyc7543);

        table.add_row({app->name, format_compact(s_informed, 3) + "x",
                       format_compact(s_oracle, 3) + "x",
                       s_gpu > 0 ? format_compact(s_gpu, 3) + "x" : "overmap",
                       s_fpga > 0 ? format_compact(s_fpga, 3) + "x"
                                  : "overmap",
                       format_compact(s_omp, 3) + "x"});

        if (s_oracle > 0.0) {
            regret_informed += 1.0 - s_informed / s_oracle;
            regret_gpu += 1.0 - s_gpu / s_oracle;
            regret_fpga += 1.0 - s_fpga / s_oracle;
            regret_omp += 1.0 - s_omp / s_oracle;
            ++apps_count;
        }

        // Decision inputs (re-derived exactly as the strategy sees them).
        std::cout << "[" << app->name << "] decision inputs: ";
        const auto* best = informed.best();
        if (best != nullptr) {
            for (const auto& line : best->log) {
                if (line.find("PSA (A)") != std::string::npos)
                    std::cout << line;
            }
        }
        std::cout << "\n";
    }

    std::cout << "\n";
    table.print(std::cout);

    auto pct = [&](double r) {
        return format_compact(100.0 * r / apps_count, 3) + "%";
    };
    std::cout << "\nmean regret vs oracle (lower is better):\n";
    std::cout << "  informed (Fig. 3): " << pct(regret_informed) << "\n";
    std::cout << "  always-GPU:        " << pct(regret_gpu) << "\n";
    std::cout << "  always-FPGA:       " << pct(regret_fpga) << "\n";
    std::cout << "  always-OMP:        " << pct(regret_omp) << "\n";
    std::cout << "\nThe informed strategy should have (near-)zero regret: "
                 "one flow run per app\nmatches the oracle that builds all "
                 "five designs.\n";
    return 0;
}
