// Extension experiment (the paper's stated future work, Section IV-B.iii):
// "additional strategies, like finer partitioning (e.g. loop splitting) and
// more effective resource area reduction, need to be incorporated into the
// PSA-flow. However, these adjustments may potentially impact performance
// negatively."
//
// This bench implements exactly that scenario: the Rush Larsen kernel —
// which overmaps both FPGAs at unroll 1 — is split with transform::
// split_kernel (scalars live across the cut spill through per-cell arrays)
// until every part fits the device, then the combined design is priced with
// the FPGA model. The output quantifies the predicted performance impact:
// the split design is synthesizable but pays extra DDR traffic for the
// spills and one pipeline pass per part, and still loses to the GPU design
// the informed PSA picks.
#include <iostream>
#include <string>
#include <vector>

#include "analysis/characterize.hpp"
#include "analysis/hotspot.hpp"
#include "core/psaflow.hpp"
#include "frontend/parser.hpp"
#include "perf/estimator.hpp"
#include "perf/shape_builder.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "transform/extract.hpp"
#include "transform/fission.hpp"

using namespace psaflow;

namespace {

struct PartEstimate {
    std::string name;
    int unroll = 0;
    double utilisation = 0.0;
    double seconds = 0.0;
    int spilled = 0;
};

} // namespace

int main() {
    const auto& app = apps::rush_larsen();
    std::cout << "=== extension: loop splitting for the Rush Larsen FPGA "
                 "designs ===\n\n";

    for (platform::DeviceId device :
         {platform::DeviceId::Arria10, platform::DeviceId::Stratix10}) {
        platform::FpgaModel fpga(platform::fpga_spec(device));
        std::cout << "--- " << platform::to_string(device) << " ---\n";

        auto mod = frontend::parse_module(app.source, app.name);
        auto types = sema::check(*mod);
        auto hotspots = analysis::detect_hotspots(*mod, types, app.workload);
        transform::extract_hotspot(*mod, types, *hotspots.top()->loop,
                                   "rl_kernel");
        types = sema::check(*mod);

        const auto whole = fpga.report(*mod->find_function("rl_kernel"),
                                       types, 1);
        std::cout << "whole kernel at unroll 1: "
                  << format_compact(100.0 * whole.utilisation(), 3)
                  << "% utilisation => "
                  << (whole.overmapped ? "OVERMAPPED (the paper's result)"
                                       : "fits")
                  << "\n";

        // Split until every part fits (recursively, balanced cuts).
        std::vector<std::string> worklist = {"rl_kernel"};
        std::vector<std::string> fitting;
        int total_spills = 0;
        bool failed = false;
        while (!worklist.empty()) {
            const std::string name = worklist.back();
            worklist.pop_back();
            const auto report =
                fpga.report(*mod->find_function(name), types, 1);
            if (!report.overmapped) {
                fitting.push_back(name);
                continue;
            }
            const std::size_t cut =
                transform::balanced_cut_point(*mod, types, name);
            if (cut == 0) {
                failed = true;
                break;
            }
            auto split = transform::split_kernel(*mod, types, name, cut);
            total_spills += static_cast<int>(split.spilled.size());
            types = sema::check(*mod);
            worklist.push_back(split.part1);
            worklist.push_back(split.part2);
        }
        if (failed) {
            std::cout << "could not split further\n\n";
            continue;
        }
        std::sort(fitting.begin(), fitting.end());
        std::cout << "split into " << fitting.size() << " parts ("
                  << total_spills << " scalars spilled through per-cell "
                  << "arrays)\n";

        // Price each part: characterise it on the real workload, run the
        // unroll DSE, estimate its pipeline time.
        TablePrinter table({"part", "unroll", "utilisation", "time"});
        double combined = 0.0;
        double reference_seconds = 0.0;
        for (const auto& name : fitting) {
            auto ch = analysis::characterize_kernel(*mod, types, name,
                                                    app.workload);
            perf::ShapeOptions opt;
            opt.relative_scale =
                app.workload.eval_scale / app.workload.profile_scale;
            auto shape = perf::build_kernel_shape(
                *mod->find_function(name), types, *mod, ch, opt);
            if (reference_seconds == 0.0) {
                // CPU reference for the *whole* kernel: sum of part flops
                // equals the original, so accumulate.
            }
            reference_seconds += perf::cpu_reference_seconds(shape);

            // Unroll DSE per part (double precision: Rush Larsen is
            // precision-sensitive).
            int best_unroll = 0;
            platform::FpgaReport best_report;
            for (int unroll = 1;; unroll *= 2) {
                const auto report =
                    fpga.report(*mod->find_function(name), types, unroll);
                if (report.overmapped) break;
                best_unroll = unroll;
                best_report = report;
                if (unroll >= 64) break;
            }
            const auto est = fpga.estimate(shape, best_report);
            combined += est.total_seconds;
            table.add_row({name, std::to_string(best_unroll),
                           format_compact(100.0 * best_report.utilisation(),
                                          3) +
                               "%",
                           format_compact(est.total_seconds, 4) + " s"});
        }
        table.print(std::cout);

        const double speedup = reference_seconds / combined;
        std::cout << "combined split-design time: "
                  << format_compact(combined, 4) << " s  =>  "
                  << format_compact(speedup, 3)
                  << "x vs single-thread CPU\n";

        RunOptions informed;
        informed.mode = flow::Mode::Informed;
        auto gpu = compile(app, informed);
        const auto* best = gpu.best();
        if (best != nullptr) {
            std::cout << "informed PSA-flow's GPU design: "
                      << format_compact(best->speedup, 3)
                      << "x — loop splitting makes the FPGA design "
                         "*synthesizable* but "
                      << (best->speedup > speedup ? "slower than"
                                                  : "faster than")
                      << " the auto-selected target,\nconfirming the "
                         "paper's expectation that finer partitioning "
                         "\"may potentially impact performance "
                         "negatively\".\n";
        }
        std::cout << "\n";
    }
    return 0;
}
