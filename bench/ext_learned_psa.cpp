// Extension experiment (the paper's future work, Section II-B/VI):
// "sophisticated PSA strategies incorporating, for example,
// machine-learning techniques".
//
// A k-NN classifier over the analysis-derived features is trained from the
// oracle (the uninformed flow's winners) and evaluated leave-one-out across
// the five benchmarks. Folds whose held-out label has no support in the
// remaining corpus (K-Means is the only CPU app, AdPredictor the only FPGA
// one) are reported as "unsupported" rather than misses — with five
// applications the corpus is a proof of plumbing, not of accuracy; the
// interesting part is that the full pipeline (features -> learned
// selection -> specialised designs) runs end to end.
#include <iostream>
#include <string>

#include "core/psaflow.hpp"
#include "flow/learned_strategy.hpp"
#include "flow/session.hpp"
#include "frontend/parser.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace psaflow;
using namespace psaflow::flow;

int main() {
    std::cout << "=== extension: learned (kNN) PSA strategy at branch point "
                 "A ===\n\n";

    const auto all = apps::all_applications();
    std::cout << "labelling the corpus with the oracle (uninformed flow per "
                 "app)...\n";
    const auto corpus = train_from_oracle(all);

    TablePrinter features({"Application", "label", "log10 AI",
                           "log10 Tcpu/Txfer", "parallel", "inner deps",
                           "unrollable", "dep frac", "transc frac"});
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const auto& f = corpus[i].features;
        features.add_row({all[i]->name, corpus[i].label,
                          format_compact(f.log_intensity, 3),
                          format_compact(f.log_compute_transfer, 3),
                          f.outer_parallel > 0 ? "yes" : "no",
                          f.inner_with_deps > 0 ? "yes" : "no",
                          f.inner_fully_unrollable > 0 ? "yes" : "no",
                          format_compact(f.dependent_fraction, 3),
                          format_compact(f.transcendental_fraction, 3)});
    }
    features.print(std::cout);

    std::cout << "\nleave-one-out evaluation:\n";
    TablePrinter loo({"held out", "true label", "kNN prediction", "result"});
    int correct = 0;
    int evaluable = 0;
    for (std::size_t hold = 0; hold < corpus.size(); ++hold) {
        std::vector<TrainingExample> train;
        bool label_present = false;
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            if (i == hold) continue;
            train.push_back(corpus[i]);
            if (corpus[i].label == corpus[hold].label) label_present = true;
        }
        if (!label_present) {
            loo.add_row({all[hold]->name, corpus[hold].label, "-",
                         "unsupported (singleton class)"});
            continue;
        }
        ++evaluable;
        LearnedStrategy knn(train, 1);
        const std::string predicted = knn.classify(corpus[hold].features);
        const bool ok = predicted == corpus[hold].label;
        if (ok) ++correct;
        loo.add_row({all[hold]->name, corpus[hold].label, predicted,
                     ok ? "correct" : "MISS"});
    }
    loo.print(std::cout);
    std::cout << "accuracy on evaluable folds: " << correct << "/"
              << evaluable << "\n";

    // End-to-end: drive the standard flow with the learned strategy.
    std::cout << "\nend-to-end with the learned strategy at branch point A "
                 "(trained on the full corpus):\n";
    FlowSession session;
    for (const apps::Application* app : all) {
        DesignFlow flow = standard_flow(Mode::Informed);
        flow.branch->strategy = std::make_shared<LearnedStrategy>(corpus, 3);
        FlowContext ctx(app->name,
                        frontend::parse_module(app->source, app->name),
                        app->workload);
        ctx.allow_single_precision = app->allow_single_precision;
        auto result = session.run(flow, std::move(ctx));
        const auto* best = result.best();
        std::cout << "  " << app->name << " -> "
                  << (best != nullptr ? best->name() + " (" +
                                            format_compact(best->speedup, 3) +
                                            "x)"
                                      : std::string("no design"))
                  << "\n";
    }
    return 0;
}
