// Reproduces Table II: the qualitative comparison of design approaches that
// partition (P), map (M) and/or optimise (O) applications onto specialised
// hardware. The rows are static facts from the paper's related-work survey;
// the "This Work" row is *verified live*: the bench runs the implemented
// PSA-flow and checks that it actually partitions (extracts a hotspot
// kernel), maps (selects a target at branch point A) and optimises (runs
// device-specific DSE) across multiple targets at full-application scope.
#include <iostream>
#include <string>

#include "core/psaflow.hpp"
#include "support/table.hpp"

using namespace psaflow;

int main() {
    std::cout << "=== Table II: comparison of design approaches ===\n\n";

    TablePrinter table(
        {"Approach", "P", "M", "O", "Multiple Targets", "Scope"});
    table.add_row({"Cross-Platform Frameworks [1-3]", "", "", "", "yes",
                   "Full App."});
    table.add_row({"HeteroCL [10]", "", "", "yes", "", "Kernel"});
    table.add_row({"Halide [11]", "", "", "yes", "", "Kernel"});
    table.add_row({"Delite [12]", "", "", "yes", "yes", "Full App."});
    table.add_row({"MLIR [13]", "", "", "yes", "yes", "Full App."});
    table.add_row({"HLS DSE [14-16,19]", "", "", "yes", "", "Kernel"});
    table.add_row({"StreamBlocks [20]", "yes", "", "", "", "Full App."});
    table.add_row({"GenMat [21]", "", "yes", "yes", "yes", "Kernel"});
    table.add_row({"Design-Flow Patterns [5]", "yes", "", "yes", "",
                   "Full App."});

    // ---- verify the "This Work" row against the implementation ------------
    RunOptions options;
    options.mode = flow::Mode::Informed;
    auto result = compile(apps::nbody(), options);

    bool partitions = false; // hotspot extracted into a kernel function
    bool maps = false;       // branch point A selected a target
    bool optimises = false;  // a DSE task ran
    for (const auto& d : result.designs) {
        if (!d.spec.kernel_name.empty()) partitions = true;
        if (d.spec.target != codegen::TargetKind::None) maps = true;
        if (d.spec.block_size > 0 || d.spec.unroll > 0 ||
            d.spec.omp_threads > 0)
            optimises = true;
    }
    // Multiple targets: the uninformed flow generates OMP+HIP+oneAPI designs.
    RunOptions uninformed;
    uninformed.mode = flow::Mode::Uninformed;
    auto all = compile(apps::nbody(), uninformed);
    int targets_seen = 0;
    bool saw[3] = {false, false, false};
    for (const auto& d : all.designs) {
        int idx = -1;
        switch (d.spec.target) {
            case codegen::TargetKind::CpuOpenMp: idx = 0; break;
            case codegen::TargetKind::CpuGpu: idx = 1; break;
            case codegen::TargetKind::CpuFpga: idx = 2; break;
            default: break;
        }
        if (idx >= 0 && !saw[idx]) {
            saw[idx] = true;
            ++targets_seen;
        }
    }

    table.add_separator();
    table.add_row({"This Work (verified live)", partitions ? "yes" : "NO",
                   maps ? "yes" : "NO", optimises ? "yes" : "NO",
                   targets_seen >= 3 ? "yes" : "NO", "Full App."});
    table.print(std::cout);

    std::cout << "\n'This Work' cells verified by running the implemented "
                 "PSA-flow on N-Body:\n";
    std::cout << "  P: hotspot loop extracted into a kernel function — "
              << (partitions ? "confirmed" : "FAILED") << "\n";
    std::cout << "  M: branch point A selected a target automatically — "
              << (maps ? "confirmed" : "FAILED") << "\n";
    std::cout << "  O: device-specific DSE chose launch/unroll/thread "
                 "parameters — "
              << (optimises ? "confirmed" : "FAILED") << "\n";
    std::cout << "  Multiple targets: uninformed flow produced "
              << targets_seen << "/3 target families\n";
    return 0;
}
