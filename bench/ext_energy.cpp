// Extension experiment (paper Section IV-D): "Similar analysis could be
// used to identify the most energy efficient implementation for a specific
// application."
//
// For every benchmark and every generated design this bench derives the
// energy of one hotspot run (device TDP + host share, times the predicted
// time) and contrasts the energy-optimal mapping with the
// performance-optimal one. The punchline mirrors the paper's cost
// discussion: the fastest resource is not always the most efficient one —
// the FPGA's ~3-4x power advantage flips several mappings.
#include <iostream>
#include <string>

#include "core/psaflow.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace psaflow;

int main() {
    std::cout << "=== extension: energy-efficiency analysis (Section IV-D) "
                 "===\n";
    flow::CostModel model;
    std::cout << "power model: EPYC 225 W, GTX/RTX 250/260 W, Arria10 66 W, "
                 "Stratix10 140 W, host share "
              << model.host_share_watts << " W\n\n";

    TablePrinter table({"Application", "perf-optimal", "energy-optimal",
                        "perf-opt/energy-opt", "S10 vs optimal"});

    for (const apps::Application* app : apps::all_applications()) {
        RunOptions options;
        options.mode = flow::Mode::Uninformed;
        auto all = compile(*app, options);

        const flow::DesignArtifact* fastest = nullptr;
        const flow::DesignArtifact* greenest = nullptr;
        double best_energy = 0.0;
        for (const auto& d : all.designs) {
            if (!d.synthesizable) continue;
            const double joules =
                flow::energy_joules(model, d.spec.device, d.hotspot_seconds);
            if (fastest == nullptr ||
                d.hotspot_seconds < fastest->hotspot_seconds)
                fastest = &d;
            if (greenest == nullptr || joules < best_energy) {
                greenest = &d;
                best_energy = joules;
            }
        }
        if (fastest == nullptr || greenest == nullptr) continue;
        const double fastest_energy = flow::energy_joules(
            model, fastest->spec.device, fastest->hotspot_seconds);
        // How close does the low-power Stratix10 come, despite being
        // slower?
        const auto* s10 = all.find(codegen::TargetKind::CpuFpga,
                                   platform::DeviceId::Stratix10);
        std::string s10_cell = "n/a (overmap)";
        if (s10 != nullptr && s10->synthesizable) {
            const double joules = flow::energy_joules(
                model, s10->spec.device, s10->hotspot_seconds);
            s10_cell = format_compact(joules / best_energy, 3) + "x";
        }
        table.add_row({
            app->name,
            fastest->name() + " (" +
                format_compact(fastest_energy, 3) + " J)",
            greenest->name() + " (" + format_compact(best_energy, 3) +
                " J)",
            format_compact(fastest_energy / best_energy, 3) + "x",
            s10_cell,
        });
    }
    table.print(std::cout);

    std::cout << "\nA ratio above 1x means the performance-optimal mapping "
                 "wastes energy relative to\nthe most efficient design — "
                 "the energy analogue of the paper's Fig. 6 cost\n"
                 "trade-off, and one more dimension a PSA strategy can "
                 "optimise for.\n";
    return 0;
}
