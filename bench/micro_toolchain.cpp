// Micro-benchmarks (google-benchmark) of the psaflow toolchain itself:
// lexing/parsing throughput, interpretation rate, analysis and transform
// latency, and one full PSA-flow run. These quantify the cost of the
// meta-programming substrate (the paper argues the flow's encoding effort
// amortises across applications — these numbers show one flow execution is
// seconds, not hours).
#include <benchmark/benchmark.h>

#include "analysis/dependence.hpp"
#include "analysis/hotspot.hpp"
#include "apps/apps.hpp"
#include "ast/clone.hpp"
#include "ast/printer.hpp"
#include "core/psaflow.hpp"
#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "meta/query.hpp"
#include "transform/unroll.hpp"

using namespace psaflow;

static void BM_ParseNBody(benchmark::State& state) {
    const auto& src = apps::nbody().source;
    for (auto _ : state) {
        auto mod = frontend::parse_module(src, "nbody");
        benchmark::DoNotOptimize(mod);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_ParseNBody);

static void BM_ParseRushLarsen(benchmark::State& state) {
    const auto& src = apps::rush_larsen().source;
    for (auto _ : state) {
        auto mod = frontend::parse_module(src, "rl");
        benchmark::DoNotOptimize(mod);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_ParseRushLarsen);

static void BM_PrintRoundTrip(benchmark::State& state) {
    auto mod = frontend::parse_module(apps::kmeans().source, "kmeans");
    for (auto _ : state) {
        auto text = ast::to_source(*mod);
        benchmark::DoNotOptimize(text);
    }
}
BENCHMARK(BM_PrintRoundTrip);

static void BM_CloneModule(benchmark::State& state) {
    auto mod = frontend::parse_module(apps::rush_larsen().source, "rl");
    for (auto _ : state) {
        auto copy = ast::clone_module(*mod);
        benchmark::DoNotOptimize(copy);
    }
}
BENCHMARK(BM_CloneModule);

static void BM_TypeCheck(benchmark::State& state) {
    auto mod = frontend::parse_module(apps::rush_larsen().source, "rl");
    for (auto _ : state) {
        auto types = sema::check(*mod);
        benchmark::DoNotOptimize(types);
    }
}
BENCHMARK(BM_TypeCheck);

static void BM_InterpretNBodyProfile(benchmark::State& state) {
    const auto& app = apps::nbody();
    auto mod = frontend::parse_module(app.source, "nbody");
    auto types = sema::check(*mod);
    for (auto _ : state) {
        interp::InterpOptions opt;
        opt.profile = true;
        auto run = interp::run_function(
            *mod, types, app.workload.entry,
            app.workload.make_args(app.workload.profile_scale), opt);
        benchmark::DoNotOptimize(run);
    }
}
BENCHMARK(BM_InterpretNBodyProfile);

static void BM_DependenceAnalysis(benchmark::State& state) {
    auto mod = frontend::parse_module(apps::kmeans().source, "kmeans");
    auto types = sema::check(*mod);
    auto loops =
        meta::outermost_for_loops(*mod->find_function("kmeans_assign"));
    for (auto _ : state) {
        auto info = analysis::analyze_dependence(*mod, *loops[0]);
        benchmark::DoNotOptimize(info);
    }
}
BENCHMARK(BM_DependenceAnalysis);

static void BM_UnrollTransform(benchmark::State& state) {
    const char* src = R"(
void f(int n, double* a) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * 2.0 + 1.0;
    }
}
)";
    for (auto _ : state) {
        state.PauseTiming();
        auto mod = frontend::parse_module(src, "f");
        auto loops = meta::outermost_for_loops(*mod->find_function("f"));
        state.ResumeTiming();
        transform::unroll_loop(*mod, *loops[0],
                               static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(mod);
    }
}
BENCHMARK(BM_UnrollTransform)->Arg(2)->Arg(8)->Arg(32);

static void BM_FullInformedFlow_AdPredictor(benchmark::State& state) {
    for (auto _ : state) {
        RunOptions options;
        options.mode = flow::Mode::Informed;
        auto result = compile(apps::adpredictor(), options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_FullInformedFlow_AdPredictor)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
