// Reproduces Table I: added lines of code (LOC) of every generated design
// versus the reference unoptimised high-level source, per application, plus
// the five-design total. The paper's Rush Larsen oneAPI designs are
// excluded (not synthesizable), exactly as in the paper's Table I.
#include <iostream>
#include <string>

#include "core/psaflow.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace psaflow;

namespace {

std::string cell(double measured, int lines, double paper) {
    std::string out = "+" + format_compact(100.0 * measured, 3) + "% (" +
                      std::to_string(lines) + " ln";
    if (paper >= 0.0)
        out += "; paper +" + format_compact(100.0 * paper, 3) + "%)";
    else
        out += "; paper n/a)";
    return out;
}

int added_lines(const flow::DesignArtifact& d,
                const std::string& reference_source) {
    return count_loc(d.source) - count_loc(reference_source);
}

} // namespace

int main() {
    std::cout << "=== Table I: added LOC per generated design vs reference "
                 "===\n\n";

    TablePrinter table({"Application", "OMP", "HIP 1080", "HIP 2080",
                        "oneAPI A10", "oneAPI S10", "Total (5 designs)"});

    double avg[6] = {0, 0, 0, 0, 0, 0};
    int counted[6] = {0, 0, 0, 0, 0, 0};

    for (const apps::Application* app : apps::all_applications()) {
        RunOptions options;
        options.mode = flow::Mode::Uninformed;
        auto result = compile(*app, options);

        using codegen::TargetKind;
        using platform::DeviceId;
        struct Col {
            TargetKind target;
            DeviceId device;
            double paper;
        };
        const Col cols[] = {
            {TargetKind::CpuOpenMp, DeviceId::Epyc7543, app->paper_loc_omp},
            {TargetKind::CpuGpu, DeviceId::Gtx1080Ti, app->paper_loc_hip},
            {TargetKind::CpuGpu, DeviceId::Rtx2080Ti, app->paper_loc_hip},
            {TargetKind::CpuFpga, DeviceId::Arria10, app->paper_loc_a10},
            {TargetKind::CpuFpga, DeviceId::Stratix10, app->paper_loc_s10},
        };

        std::vector<std::string> row = {app->name};
        double total = 0.0;
        bool total_valid = true;
        int c = 0;
        for (const Col& col : cols) {
            const auto* d = result.find(col.target, col.device);
            if (d == nullptr || (!d->synthesizable && col.paper < 0.0)) {
                row.push_back("n/a (paper n/a)");
                total_valid = false;
            } else {
                row.push_back(cell(d->loc_delta,
                                   added_lines(*d, app->source), col.paper));
                total += d->loc_delta;
                avg[c] += d->loc_delta;
                ++counted[c];
            }
            ++c;
        }
        row.push_back(total_valid ? "+" + format_compact(100.0 * total, 3) +
                                        "%"
                                  : "n/a");
        table.add_row(row);
    }

    std::vector<std::string> avg_row = {"Average"};
    double avg_total = 0.0;
    for (int c = 0; c < 5; ++c) {
        const double v = counted[c] > 0 ? avg[c] / counted[c] : 0.0;
        avg_total += v;
        avg_row.push_back("+" + format_compact(100.0 * v, 3) + "%");
    }
    avg_row.push_back("+" + format_compact(100.0 * avg_total, 3) + "%");
    table.add_separator();
    table.add_row(avg_row);
    table.print(std::cout);

    std::cout << "\npaper averages: OMP +2%, HIP +36%, oneAPI A10 +57%, "
                 "oneAPI S10 +81%, total +212%\n";
    std::cout << "\nNOTE on magnitudes: the percentages above are relative "
                 "to our compact\nreference sources (30-60 LOC); the "
                 "paper's references are several times\nlarger, so its "
                 "percentages are smaller for a similar number of *added*\n"
                 "lines of management/kernel code per design. The column "
                 "ordering\n(OMP << HIP < oneAPI A10 < oneAPI S10) is the "
                 "reproducible shape.\n";
    std::cout << "\nshape checks:\n";
    std::cout << "  OMP designs add the least code (pragmas only), HIP adds "
                 "device kernels +\n  management, oneAPI adds the most "
                 "(queue/buffer boilerplate), and the USM\n  (Stratix10) "
                 "variant exceeds the buffer (Arria10) variant.\n";
    return 0;
}
