// Reproduces the left panel of Fig. 4: the repository of codified
// design-flow tasks with their classifications (A/T/CG/O) and the dynamic
// marker, printed from the live task registry — plus the structure of the
// implemented PSA-flow (branch points A, B, C and their paths).
#include <iostream>

#include "flow/standard_flow.hpp"
#include "flow/tasks.hpp"
#include "support/table.hpp"

using namespace psaflow;

int main() {
    std::cout << "=== Fig. 4: repository of codified design-flow tasks ===\n\n";

    TablePrinter table({"Task", "Class", "Dynamic"});
    for (const auto& task : flow::repository()) {
        table.add_row({task->name(), flow::to_string(task->cls()),
                       task->dynamic() ? "yes (executes the program)" : ""});
    }
    table.print(std::cout);

    std::cout << "\n=== implemented PSA-flow structure ===\n";
    const auto design_flow = flow::standard_flow(flow::Mode::Informed);
    std::cout << "prologue (target-independent):\n";
    for (const auto& task : design_flow.prologue) {
        std::cout << "  [" << flow::to_string(task->cls()) << "] "
                  << task->name() << "\n";
    }

    std::function<void(const flow::BranchPoint&, int)> dump =
        [&](const flow::BranchPoint& branch, int depth) {
            const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
            std::cout << pad << "branch point " << branch.name
                      << " [strategy: " << branch.strategy->name() << "]\n";
            for (const auto& path : branch.paths) {
                std::cout << pad << "  path '" << path.name << "':\n";
                for (const auto& task : path.tasks) {
                    std::cout << pad << "    [" << flow::to_string(task->cls())
                              << "] " << task->name() << "\n";
                }
                if (path.next) dump(*path.next, depth + 2);
            }
        };
    if (design_flow.branch) dump(*design_flow.branch, 0);
    return 0;
}
