// Reproduces Fig. 6: relative cost of FPGA vs GPU execution while sweeping
// the price ratio between the two resources from 1/4 to 4. The paper plots
// AdPredictor, Bezier and K-Means using the Stratix10 and RTX 2080 Ti
// results of Fig. 5 and reports two crossovers:
//   - AdPredictor executes fastest on the Stratix10, but once the FPGA
//     price exceeds ~3.2x the GPU price the GPU becomes more cost
//     effective;
//   - Bezier is faster on the 2080 Ti, but once the GPU price exceeds
//     ~2.5x the FPGA price the Stratix10 becomes more cost effective.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/psaflow.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

using namespace psaflow;

int main() {
    std::cout << "=== Fig. 6: FPGA vs GPU cost for varying resource prices "
                 "===\n";
    std::cout << "cost(FPGA)/cost(GPU) = (t_fpga * p_fpga) / (t_gpu * "
                 "p_gpu);  < 1 means the FPGA is more cost effective\n\n";

    const std::vector<std::string> app_names = {"adpredictor", "bezier",
                                                "kmeans"};
    const std::vector<double> ratios = {0.25, 1.0 / 3.0, 0.5, 1.0,
                                        2.0,  3.0,       4.0};

    TablePrinter table({"FPGA/GPU price", "adpredictor", "bezier", "kmeans"});

    struct Times {
        double fpga = 0.0;
        double gpu = 0.0;
    };
    std::vector<Times> times;

    for (const auto& name : app_names) {
        RunOptions options;
        options.mode = flow::Mode::Uninformed;
        auto result = compile(apps::application_by_name(name), options);
        const auto* s10 = result.find(codegen::TargetKind::CpuFpga,
                                      platform::DeviceId::Stratix10);
        const auto* gpu = result.find(codegen::TargetKind::CpuGpu,
                                      platform::DeviceId::Rtx2080Ti);
        Times t;
        t.fpga = s10 != nullptr && s10->synthesizable ? s10->hotspot_seconds
                                                      : -1.0;
        t.gpu = gpu != nullptr ? gpu->hotspot_seconds : -1.0;
        times.push_back(t);
    }

    for (double ratio : ratios) {
        std::vector<std::string> row = {format_compact(ratio, 3)};
        for (const Times& t : times) {
            if (t.fpga < 0.0 || t.gpu < 0.0) {
                row.push_back("n/a");
                continue;
            }
            const double rel = t.fpga * ratio / t.gpu;
            row.push_back(format_compact(rel, 3) +
                          (rel < 1.0 ? "  [FPGA]" : "  [GPU]"));
        }
        table.add_row(row);
    }
    table.print(std::cout);

    // Crossover price ratios: cost parity at p_fpga/p_gpu = t_gpu/t_fpga.
    std::cout << "\ncrossover price ratios (FPGA price / GPU price at cost "
                 "parity):\n";
    const double paper_crossover[] = {3.2, 1.0 / 2.5, -1.0};
    for (std::size_t i = 0; i < app_names.size(); ++i) {
        if (times[i].fpga < 0.0 || times[i].gpu < 0.0) continue;
        const double crossover = times[i].gpu / times[i].fpga;
        std::cout << "  " << app_names[i] << ": measured "
                  << format_compact(crossover, 3);
        if (paper_crossover[i] > 0.0)
            std::cout << " (paper ~" << format_compact(paper_crossover[i], 3)
                      << ")";
        std::cout << (crossover > 1.0
                          ? "  — FPGA faster: GPU only wins when the FPGA "
                            "price exceeds this multiple"
                          : "  — GPU faster: FPGA wins when the GPU price "
                            "exceeds the reciprocal")
                  << "\n";
    }
    std::cout << "\npaper claims: AdPredictor crossover at FPGA/GPU price "
                 "3.2; Bezier at GPU/FPGA price 2.5\n";

    const auto& reg = trace::Registry::global();
    std::cout << "\nharness cost: " << reg.counter("interp.runs")
              << " interpreter runs, " << reg.counter("profile_cache.hits")
              << " cache hits / " << reg.counter("profile_cache.misses")
              << " misses\n";
    return 0;
}
