// Reproduces Fig. 5: hotspot-region speedups of every auto-generated design
// versus the single-thread CPU reference, for all five benchmarks, in both
// PSA-flow modes:
//   - Uninformed: branch point A selects all paths -> five designs per app;
//   - Informed:   the Fig. 3 strategy selects one target -> the
//                 "Auto-Selected" bar.
// Also prints the per-claim checks of Section IV-B (RTX vs GTX ratios,
// Stratix10 vs Arria10, Rush Larsen FPGA overmap, informed = best target).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/psaflow.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

using namespace psaflow;

namespace {

std::string cell(double measured, double paper) {
    if (paper < 0.0) return "n/a";
    return format_compact(measured, 3) + "x (paper " +
           format_compact(paper, 3) + "x)";
}

double speedup_value(const flow::FlowResult& result,
                     codegen::TargetKind target, platform::DeviceId device) {
    const auto* d = result.find(target, device);
    return (d != nullptr && d->synthesizable) ? d->speedup : -1.0;
}

} // namespace

int main() {
    std::cout << "=== Fig. 5: accelerated hotspot region speedups vs "
                 "single-thread CPU ===\n\n";
    const auto wall_start = std::chrono::steady_clock::now();

    TablePrinter table({"Application", "Auto-Selected", "OMP", "HIP 1080Ti",
                        "HIP 2080Ti", "oneAPI A10", "oneAPI S10"});
    bool informed_always_best = true;
    std::string claims;

    for (const apps::Application* app : apps::all_applications()) {
        RunOptions uninformed_opt;
        uninformed_opt.mode = flow::Mode::Uninformed;
        auto uninformed = compile(*app, uninformed_opt);

        RunOptions informed_opt;
        informed_opt.mode = flow::Mode::Informed;
        auto informed = compile(*app, informed_opt);

        const auto* auto_design = informed.best();
        const double auto_speedup =
            auto_design != nullptr ? auto_design->speedup : 0.0;
        const auto* best_any = uninformed.best();

        using codegen::TargetKind;
        using platform::DeviceId;
        table.add_row({
            app->name,
            format_compact(auto_speedup, 3) + "x (paper " +
                format_compact(app->paper.auto_selected, 3) + "x, " +
                app->paper.auto_target + ")",
            cell(speedup_value(uninformed, TargetKind::CpuOpenMp,
                               DeviceId::Epyc7543),
                 app->paper.omp),
            cell(speedup_value(uninformed, TargetKind::CpuGpu,
                               DeviceId::Gtx1080Ti),
                 app->paper.gpu_1080),
            cell(speedup_value(uninformed, TargetKind::CpuGpu,
                               DeviceId::Rtx2080Ti),
                 app->paper.gpu_2080),
            cell(speedup_value(uninformed, TargetKind::CpuFpga,
                               DeviceId::Arria10),
                 app->paper.fpga_a10),
            cell(speedup_value(uninformed, TargetKind::CpuFpga,
                               DeviceId::Stratix10),
                 app->paper.fpga_s10),
        });

        // --- per-claim checks -------------------------------------------------
        if (auto_design != nullptr && best_any != nullptr) {
            const bool matches =
                auto_design->spec.target == best_any->spec.target;
            if (!matches) informed_always_best = false;
            claims += "  [" + app->name + "] informed PSA selected " +
                      std::string(codegen::to_string(auto_design->spec.target)) +
                      " (paper: " + app->paper.auto_target + "); best design " +
                      "across all targets is " +
                      std::string(codegen::to_string(best_any->spec.target)) +
                      (matches ? "  -- MATCH\n" : "  -- MISMATCH\n");
        }
        const double g1080 = speedup_value(uninformed, TargetKind::CpuGpu,
                                           DeviceId::Gtx1080Ti);
        const double g2080 = speedup_value(uninformed, TargetKind::CpuGpu,
                                           DeviceId::Rtx2080Ti);
        if (g1080 > 0 && g2080 > 0) {
            claims += "  [" + app->name + "] RTX 2080 Ti / GTX 1080 Ti = " +
                      format_compact(g2080 / g1080, 3) + "x (paper " +
                      format_compact(app->paper.gpu_2080 /
                                         app->paper.gpu_1080, 3) +
                      "x)\n";
        }
        const auto* a10 = uninformed.find(TargetKind::CpuFpga,
                                          DeviceId::Arria10);
        const auto* s10 = uninformed.find(TargetKind::CpuFpga,
                                          DeviceId::Stratix10);
        if (app->name == "rushlarsen") {
            const bool a10_overmap = a10 != nullptr && !a10->synthesizable;
            const bool s10_overmap = s10 != nullptr && !s10->synthesizable;
            claims += std::string("  [rushlarsen] FPGA designs overmap: ") +
                      "A10=" + (a10_overmap ? "yes" : "NO (paper: yes)") +
                      ", S10=" + (s10_overmap ? "yes" : "NO (paper: yes)") +
                      "\n";
        }
    }

    table.print(std::cout);
    std::cout << "\n=== Section IV-B claims ===\n" << claims;
    std::cout << "\ninformed PSA selects the best target for all "
                 "benchmarks: "
              << (informed_always_best ? "yes (paper: yes)" : "NO") << "\n";

    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const auto& reg = trace::Registry::global();
    std::cout << "\n=== harness cost (" << format_compact(wall_s, 4)
              << " s wall clock, PSAFLOW_JOBS="
              << ThreadPool::default_jobs() << ") ===\n"
              << "  interpreter runs: " << reg.counter("interp.runs")
              << " (" << reg.counter("interp.steps") << " steps)\n"
              << "  profile cache:    " << reg.counter("profile_cache.hits")
              << " hits / " << reg.counter("profile_cache.misses")
              << " misses\n";
    return 0;
}
