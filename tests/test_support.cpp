#include <gtest/gtest.h>

#include "support/prng.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

namespace psaflow {
namespace {

TEST(StringUtil, SplitKeepsEmptyFields) {
    auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, SplitSingleField) {
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, TrimBothEnds) {
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim("\t\n"), "");
    EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, JoinWithSeparator) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringUtil, CountLocSkipsBlankLines) {
    EXPECT_EQ(count_loc("a\n\n  \nb\n"), 2);
    EXPECT_EQ(count_loc(""), 0);
    EXPECT_EQ(count_loc("single"), 1);
}

TEST(StringUtil, IndentLines) {
    EXPECT_EQ(indent_lines("a\nb", 2), "  a\n  b");
    EXPECT_EQ(indent_lines("a\n\nb", 2), "  a\n\n  b");
}

TEST(StringUtil, FormatCompact) {
    EXPECT_EQ(format_compact(751.0), "751");
    EXPECT_EQ(format_compact(1.5), "1.5");
    EXPECT_EQ(format_compact(0.25), "0.25");
}

TEST(StringUtil, StartsEndsWith) {
    EXPECT_TRUE(starts_with("omp parallel", "omp"));
    EXPECT_FALSE(starts_with("om", "omp"));
    EXPECT_TRUE(ends_with("file.cpp", ".cpp"));
    EXPECT_FALSE(ends_with("cpp", "file.cpp"));
}

TEST(StringUtil, ReplaceAll) {
    EXPECT_EQ(replace_all("a.b.c", ".", "::"), "a::b::c");
    EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
    EXPECT_EQ(replace_all("x", "", "y"), "x");
}

TEST(Table, AlignsColumns) {
    TablePrinter t({"App", "Speedup"});
    t.add_row({"N-Body", "751x"});
    t.add_row({"K", "30x"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| App    |"), std::string::npos);
    EXPECT_NE(s.find("| N-Body | 751x"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ShortRowsPad) {
    TablePrinter t({"a", "b", "c"});
    t.add_row({"1"});
    EXPECT_NE(t.to_string().find("| 1 |"), std::string::npos);
}

TEST(Csv, EscapesSpecialCells) {
    CsvWriter w({"name", "value"});
    w.add_row({"with,comma", "with\"quote"});
    const std::string s = w.to_string();
    EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Prng, DeterministicSequences) {
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DoublesInUnitInterval) {
    SplitMix64 g(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = g.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Prng, UniformRespectsRange) {
    SplitMix64 g(9);
    for (int i = 0; i < 1000; ++i) {
        const double d = g.uniform(-2.0, 3.0);
        EXPECT_GE(d, -2.0);
        EXPECT_LT(d, 3.0);
    }
}

} // namespace
} // namespace psaflow
