#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>

#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/prng.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace psaflow {
namespace {

TEST(StringUtil, SplitKeepsEmptyFields) {
    auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, SplitSingleField) {
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, TrimBothEnds) {
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim("\t\n"), "");
    EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, JoinWithSeparator) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringUtil, CountLocSkipsBlankLines) {
    EXPECT_EQ(count_loc("a\n\n  \nb\n"), 2);
    EXPECT_EQ(count_loc(""), 0);
    EXPECT_EQ(count_loc("single"), 1);
}

TEST(StringUtil, IndentLines) {
    EXPECT_EQ(indent_lines("a\nb", 2), "  a\n  b");
    EXPECT_EQ(indent_lines("a\n\nb", 2), "  a\n\n  b");
}

TEST(StringUtil, FormatCompact) {
    EXPECT_EQ(format_compact(751.0), "751");
    EXPECT_EQ(format_compact(1.5), "1.5");
    EXPECT_EQ(format_compact(0.25), "0.25");
}

TEST(StringUtil, StartsEndsWith) {
    EXPECT_TRUE(starts_with("omp parallel", "omp"));
    EXPECT_FALSE(starts_with("om", "omp"));
    EXPECT_TRUE(ends_with("file.cpp", ".cpp"));
    EXPECT_FALSE(ends_with("cpp", "file.cpp"));
}

TEST(StringUtil, ReplaceAll) {
    EXPECT_EQ(replace_all("a.b.c", ".", "::"), "a::b::c");
    EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
    EXPECT_EQ(replace_all("x", "", "y"), "x");
}

TEST(Table, AlignsColumns) {
    TablePrinter t({"App", "Speedup"});
    t.add_row({"N-Body", "751x"});
    t.add_row({"K", "30x"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| App    |"), std::string::npos);
    EXPECT_NE(s.find("| N-Body | 751x"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ShortRowsPad) {
    TablePrinter t({"a", "b", "c"});
    t.add_row({"1"});
    EXPECT_NE(t.to_string().find("| 1 |"), std::string::npos);
}

TEST(Csv, EscapesSpecialCells) {
    CsvWriter w({"name", "value"});
    w.add_row({"with,comma", "with\"quote"});
    const std::string s = w.to_string();
    EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Prng, DeterministicSequences) {
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DoublesInUnitInterval) {
    SplitMix64 g(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = g.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Prng, UniformRespectsRange) {
    SplitMix64 g(9);
    for (int i = 0; i < 1000; ++i) {
        const double d = g.uniform(-2.0, 3.0);
        EXPECT_GE(d, -2.0);
        EXPECT_LT(d, 3.0);
    }
}

TEST(Prng, NextBelowZeroReturnsZero) {
    SplitMix64 g(1);
    EXPECT_EQ(g.next_below(0), 0u);
    // The n == 0 guard must not consume a draw: the sequence continues as
    // if the call never happened.
    SplitMix64 h(1);
    EXPECT_EQ(g.next_u64(), h.next_u64());
}

TEST(Prng, NextBelowStaysInRange) {
    SplitMix64 g(3);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(g.next_below(7), 7u);
    EXPECT_EQ(g.next_below(1), 0u);
}

TEST(StringUtil, ParseDoubleAcceptsValidNumbers) {
    EXPECT_EQ(parse_double("1.5"), 1.5);
    EXPECT_EQ(parse_double("  -3e2 "), -300.0);
    EXPECT_EQ(parse_double("0"), 0.0);
}

TEST(StringUtil, ParseDoubleRejectsGarbage) {
    EXPECT_FALSE(parse_double("abc").has_value());
    EXPECT_FALSE(parse_double("1.5x").has_value());
    EXPECT_FALSE(parse_double("").has_value());
    EXPECT_FALSE(parse_double("  ").has_value());
    EXPECT_FALSE(parse_double("nan").has_value());
    EXPECT_FALSE(parse_double("inf").has_value());
    EXPECT_FALSE(parse_double("1e9999").has_value());
}

TEST(StringUtil, ParseIntAcceptsAndRejects) {
    EXPECT_EQ(parse_int("42"), 42);
    EXPECT_EQ(parse_int(" -7 "), -7);
    EXPECT_FALSE(parse_int("4.2").has_value());
    EXPECT_FALSE(parse_int("x").has_value());
    EXPECT_FALSE(parse_int("").has_value());
    EXPECT_FALSE(parse_int("99999999999999999999999").has_value());
}

TEST(ThreadPool, DefaultJobsRespectsEnv) {
    EXPECT_GE(ThreadPool::default_jobs(), 1);
}

TEST(ThreadPool, TaskGroupRunsAllJobs) {
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    TaskGroup group(pool);
    for (int i = 1; i <= 100; ++i)
        group.run([&sum, i] { sum.fetch_add(i); });
    group.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, NestedGroupsDoNotDeadlock) {
    // A single-worker pool forces the outer wait() to help execute the
    // inner jobs — the deadlock scenario for a naive blocking join.
    ThreadPool pool(1);
    std::atomic<int> leaves{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 4; ++i) {
        outer.run([&pool, &leaves] {
            TaskGroup inner(pool);
            for (int j = 0; j < 4; ++j)
                inner.run([&leaves] { leaves.fetch_add(1); });
            inner.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(leaves.load(), 16);
}

TEST(ThreadPool, WaitRethrowsFirstSubmittedException) {
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.run([] { throw std::runtime_error("first"); });
    group.run([] { throw std::runtime_error("second"); });
    try {
        group.wait();
        FAIL() << "wait() must rethrow";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(Trace, CountersAccumulate) {
    auto& reg = trace::Registry::global();
    reg.clear();
    reg.count("unit.test", 2);
    reg.count("unit.test", 3);
    EXPECT_EQ(reg.counter("unit.test"), 5u);
    EXPECT_EQ(reg.counter("never.touched"), 0u);
}

TEST(Trace, SpansRecordWhenEnabled) {
    auto& reg = trace::Registry::global();
    reg.set_enabled(true);
    reg.clear();
    {
        trace::ScopedSpan span("unit:span", "test");
        span.set_work_units(12.0);
    }
    const auto spans = reg.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "unit:span");
    EXPECT_EQ(spans[0].category, "test");
    EXPECT_EQ(spans[0].work_units, 12.0);
}

TEST(Trace, DisabledSuppressesSpansNotCounters) {
    auto& reg = trace::Registry::global();
    reg.clear();
    reg.set_enabled(false);
    {
        trace::ScopedSpan span("unit:hidden", "test");
    }
    reg.count("still.counted", 1);
    EXPECT_TRUE(reg.spans().empty());
    EXPECT_EQ(reg.counter("still.counted"), 1u);
    reg.set_enabled(true);
}

TEST(Trace, JsonHasSchemaAndEscapes) {
    auto& reg = trace::Registry::global();
    reg.set_enabled(true);
    reg.clear();
    {
        trace::ScopedSpan span("quote\"back\\slash", "test");
    }
    reg.count("c", 7);
    const std::string json = reg.to_json();
    EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"spans\""), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
    EXPECT_NE(json.find("\"c\": 7"), std::string::npos);
}

TEST(Trace, NestedSpansLinkChildToParent) {
    trace::Registry reg;
    trace::ScopedRegistry scope(reg);
    {
        trace::ScopedSpan outer("outer", "test");
        ASSERT_NE(outer.id(), 0u);
        EXPECT_EQ(trace::current_span_id(), outer.id());
        {
            trace::ScopedSpan inner("inner", "test");
            EXPECT_EQ(trace::current_span_id(), inner.id());
        }
        // The active span pops back to the outer one.
        EXPECT_EQ(trace::current_span_id(), outer.id());
    }
    EXPECT_EQ(trace::current_span_id(), 0u);

    const auto spans = reg.spans();
    ASSERT_EQ(spans.size(), 2u);
    const auto& inner = spans[0]; // closes (and records) first
    const auto& outer = spans[1];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(outer.parent, 0u);
    EXPECT_EQ(inner.parent, outer.id);
    EXPECT_NE(inner.id, outer.id);
}

TEST(Trace, PoolJobsInheritTheSubmittersSinkAndActiveSpan) {
    trace::Registry reg;
    trace::ScopedRegistry scope(reg);
    ThreadPool pool(3);
    std::uint64_t root_id = 0;
    {
        trace::ScopedSpan root("root", "test");
        root_id = root.id();
        TaskGroup group(pool);
        for (int i = 0; i < 8; ++i)
            group.run([i] {
                trace::ScopedSpan job("job-" + std::to_string(i), "test");
            });
        group.wait();
    }
    const auto spans = reg.spans();
    ASSERT_EQ(spans.size(), 9u);
    for (const auto& span : spans) {
        if (span.name == "root") {
            EXPECT_EQ(span.parent, 0u);
        } else {
            // Every pool job parents under the span that forked it, even
            // though it ran on another thread into the same private sink.
            EXPECT_EQ(span.parent, root_id) << span.name;
        }
    }
}

TEST(Trace, MergeRemapsThreadOrdinalsAndKeepsParentLinks) {
    trace::Registry target;
    {
        trace::ScopedRegistry scope(target);
        trace::ScopedSpan span("local", "test");
    }
    ASSERT_EQ(target.spans().size(), 1u);
    const std::uint64_t local_thread = target.spans()[0].thread;

    // A second registry that recorded unrelated work from thread ordinals
    // that collide with the target's.
    trace::Registry other;
    std::uint64_t other_root = 0;
    {
        trace::ScopedRegistry scope(other);
        trace::ScopedSpan root("merged-root", "test");
        other_root = root.id();
        trace::ScopedSpan child("merged-child", "test");
    }

    target.merge_from(other);
    const auto spans = target.spans();
    ASSERT_EQ(spans.size(), 3u);
    std::uint64_t merged_root_id = 0;
    for (const auto& span : spans) {
        if (span.name == "local") continue;
        // Merged spans land on fresh track ordinals so a rendered trace
        // cannot interleave the two registries' unrelated work.
        EXPECT_NE(span.thread, local_thread) << span.name;
        if (span.name == "merged-root") merged_root_id = span.id;
    }
    EXPECT_EQ(merged_root_id, other_root); // ids are process-unique: no remap
    for (const auto& span : spans) {
        if (span.name == "merged-child") {
            EXPECT_EQ(span.parent, merged_root_id);
        }
    }
}

TEST(Trace, MergeRemapsCollidingSpanIds) {
    // Two registries from *different processes* can hold the same span
    // ids (each process numbers sequentially from 1). merge_from must
    // remap the incoming ids off the collision while preserving the
    // incoming parent links — regression for cross-process trace merges.
    trace::Registry target;
    target.set_enabled(true);
    trace::Span mine_root;
    mine_root.name = "mine-root";
    mine_root.id = 100;
    target.add_span(mine_root);
    trace::Span mine_child;
    mine_child.name = "mine-child";
    mine_child.id = 101;
    mine_child.parent = 100;
    target.add_span(mine_child);

    trace::Registry other;
    other.set_enabled(true);
    trace::Span theirs_root;
    theirs_root.name = "theirs-root";
    theirs_root.id = 100; // collides with mine-root
    other.add_span(theirs_root);
    trace::Span theirs_child;
    theirs_child.name = "theirs-child";
    theirs_child.id = 101; // collides with mine-child
    theirs_child.parent = 100;
    other.add_span(theirs_child);

    target.merge_from(other);
    const auto spans = target.spans();
    ASSERT_EQ(spans.size(), 4u);
    std::set<std::uint64_t> ids;
    for (const auto& span : spans)
        EXPECT_TRUE(ids.insert(span.id).second)
            << "id " << span.id << " still duplicated on " << span.name;

    std::uint64_t theirs_root_id = 0;
    for (const auto& span : spans)
        if (span.name == "theirs-root") theirs_root_id = span.id;
    EXPECT_NE(theirs_root_id, 100u); // remapped off the collision
    for (const auto& span : spans) {
        if (span.name == "theirs-child") {
            EXPECT_EQ(span.parent, theirs_root_id);
        }
        if (span.name == "mine-child") { // untouched: the target keeps its ids
            EXPECT_EQ(span.parent, 100u);
        }
    }
}

TEST(Trace, WireSpanIdsAreSaltedDistinctAndJsonExact) {
    const std::uint64_t a = trace::wire_span_id();
    const std::uint64_t b = trace::wire_span_id();
    EXPECT_NE(a, 0u);
    EXPECT_NE(a, b);
    // Below 2^53: survives a JSON double round-trip exactly.
    EXPECT_LT(a, std::uint64_t{1} << 53);
    // Marker bit keeps wire ids disjoint from sequential in-process ids.
    EXPECT_NE(a & (std::uint64_t{1} << 52), 0u);
    // Same process salt, differing only in the sequence bits.
    EXPECT_EQ(a >> 20, b >> 20);
}

TEST(Trace, ScopedTraceIdInstallsAndRestores) {
    EXPECT_EQ(trace::current_trace_id(), 0u);
    {
        trace::ScopedTraceId outer(0xabc);
        EXPECT_EQ(trace::current_trace_id(), 0xabcu);
        {
            trace::ScopedTraceId inner(0xdef);
            EXPECT_EQ(trace::current_trace_id(), 0xdefu);
        }
        EXPECT_EQ(trace::current_trace_id(), 0xabcu);
    }
    EXPECT_EQ(trace::current_trace_id(), 0u);
}

// ------------------------------------------------------------------- json ----

TEST(Json, ParsesScalarsArraysAndObjects) {
    const auto doc = json::parse(
        R"({"name": "nbody", "budget": 1.5, "deep": {"ok": true},
            "list": [1, "two", null, false]})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->is_object());
    EXPECT_EQ(doc->find("name")->string_or(""), "nbody");
    EXPECT_EQ(doc->find("budget")->number_or(0.0), 1.5);
    EXPECT_TRUE(doc->find("deep")->find("ok")->bool_or(false));
    const auto* list = doc->find("list");
    ASSERT_TRUE(list != nullptr && list->is_array());
    ASSERT_EQ(list->elements.size(), 4u);
    EXPECT_EQ(list->elements[0].number_or(0.0), 1.0);
    EXPECT_EQ(list->elements[1].string_or(""), "two");
    EXPECT_TRUE(list->elements[2].is_null());
    EXPECT_FALSE(list->elements[3].bool_or(true));
}

TEST(Json, ObjectMembersStayOrdered) {
    const auto doc = json::parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->members.size(), 3u);
    EXPECT_EQ(doc->members[0].first, "z");
    EXPECT_EQ(doc->members[1].first, "a");
    EXPECT_EQ(doc->members[2].first, "m");
}

TEST(Json, StringEscapes) {
    const auto doc = json::parse(R"(["a\"b", "tab\there", "Aé"])");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->elements[0].string_or(""), "a\"b");
    EXPECT_EQ(doc->elements[1].string_or(""), "tab\there");
    EXPECT_EQ(doc->elements[2].string_or(""), "A\xc3\xa9"); // UTF-8 e-acute
}

TEST(Json, RejectsMalformedInputWithOffset) {
    std::string error;
    EXPECT_FALSE(json::parse("{\"a\": }", &error).has_value());
    EXPECT_NE(error.find("at byte"), std::string::npos);
    EXPECT_FALSE(json::parse("[1, 2,]").has_value());
    EXPECT_FALSE(json::parse("").has_value());
    EXPECT_FALSE(json::parse("[1] trailing").has_value()); // no garbage
}

TEST(Json, TypedGettersDefaultOnWrongKind) {
    const auto doc = json::parse(R"({"n": "not-a-number"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("n")->number_or(-1.0), -1.0);
    EXPECT_EQ(doc->find("absent"), nullptr);
    EXPECT_EQ(doc->string_or("def"), "def"); // object, not string
}

// -------------------------------------------------------------------- cli ----

namespace {

/// Run the parser over a synthetic argv, capturing stderr.
bool parse_args(cli::OptionParser& parser, std::vector<std::string> args,
                std::string* err_out = nullptr) {
    std::vector<char*> argv;
    static std::string program = "tool";
    argv.push_back(program.data());
    for (auto& a : args) argv.push_back(a.data());
    testing::internal::CaptureStderr();
    const bool ok =
        parser.parse(static_cast<int>(argv.size()), argv.data());
    const std::string err = testing::internal::GetCapturedStderr();
    if (err_out != nullptr) *err_out = err;
    return ok;
}

} // namespace

TEST(Cli, ParsesTypedOptions) {
    std::string app;
    long long jobs = 0;
    double budget = -1.0;
    bool verbose = false;
    cli::OptionParser parser("tool", {"--app <name>"});
    parser.str("--app", "<name>", "application", &app);
    parser.integer("--jobs", "<n>", "workers", &jobs, /*min=*/0);
    parser.real("--budget", "<dollars>", "cost cap", &budget);
    parser.flag("--verbose", "chatty", &verbose);

    EXPECT_TRUE(parse_args(
        parser, {"--app", "nbody", "--jobs", "4", "--budget", "2.5",
                 "--verbose"}));
    EXPECT_EQ(app, "nbody");
    EXPECT_EQ(jobs, 4);
    EXPECT_EQ(budget, 2.5);
    EXPECT_TRUE(verbose);
}

TEST(Cli, ReportsHistoricalErrorShapes) {
    auto make_parser = [](long long* jobs) {
        auto parser =
            std::make_unique<cli::OptionParser>("tool",
                                                std::vector<std::string>{""});
        parser->integer("--jobs", "<n>", "workers", jobs, /*min=*/0);
        return parser;
    };

    long long jobs = 0;
    std::string err;
    auto p1 = make_parser(&jobs);
    EXPECT_FALSE(parse_args(*p1, {"--jobs"}, &err));
    EXPECT_NE(err.find("missing value for --jobs"), std::string::npos);
    EXPECT_NE(err.find("usage:"), std::string::npos);

    auto p2 = make_parser(&jobs);
    EXPECT_FALSE(parse_args(*p2, {"--jobs", "abc"}, &err));
    EXPECT_NE(err.find("invalid integer 'abc' for --jobs"),
              std::string::npos);

    auto p3 = make_parser(&jobs);
    EXPECT_FALSE(parse_args(*p3, {"--jobs", "-1"}, &err));
    EXPECT_NE(err.find("--jobs must be >= 0"), std::string::npos);

    auto p4 = make_parser(&jobs);
    EXPECT_FALSE(parse_args(*p4, {"--frobnicate"}, &err));
    EXPECT_NE(err.find("unknown option '--frobnicate'"), std::string::npos);
}

TEST(Cli, HelpPrintsUsageAndReturnsFalse) {
    bool flag = false;
    cli::OptionParser parser("tool", {"[--flag]"});
    parser.flag("--flag", "a switch", &flag);
    std::string err;
    EXPECT_FALSE(parse_args(parser, {"--help"}, &err));
    EXPECT_NE(err.find("usage: tool [--flag]"), std::string::npos);
    EXPECT_NE(err.find("--flag"), std::string::npos);
    EXPECT_FALSE(flag);
}

// Regression (serving PR): joining/shutting down a pool while other
// threads are still enqueueing must neither deadlock nor drop jobs — every
// submitted job runs exactly once, either on a worker, in the shutdown
// drain, or inline on the submitter after the stop flag is visible.
TEST(ThreadPool, ShutdownDuringEnqueueRunsEveryJob) {
    for (int round = 0; round < 20; ++round) {
        auto pool = std::make_unique<ThreadPool>(4);
        constexpr int kSubmitters = 4;
        constexpr int kJobsPerSubmitter = 200;
        std::atomic<int> executed{0};
        std::atomic<bool> go{false};

        std::vector<std::thread> submitters;
        std::vector<std::unique_ptr<TaskGroup>> groups;
        groups.reserve(kSubmitters);
        for (int s = 0; s < kSubmitters; ++s)
            groups.push_back(std::make_unique<TaskGroup>(*pool));
        for (int s = 0; s < kSubmitters; ++s) {
            submitters.emplace_back([&, s] {
                while (!go.load()) {
                }
                for (int j = 0; j < kJobsPerSubmitter; ++j)
                    groups[static_cast<std::size_t>(s)]->run(
                        [&executed] { executed.fetch_add(1); });
            });
        }

        go.store(true);
        // Race shutdown against the submitters (vary the interleaving).
        if (round % 2 == 0) std::this_thread::yield();
        pool->shutdown();
        for (std::thread& t : submitters) t.join();
        for (auto& group : groups) group->wait();
        EXPECT_EQ(executed.load(), kSubmitters * kJobsPerSubmitter)
            << "round " << round;
        EXPECT_TRUE(pool->stopped());
    }
}

TEST(ThreadPool, ShutdownIsIdempotentAndSubmitAfterRunsInline) {
    ThreadPool pool(2);
    pool.shutdown();
    pool.shutdown(); // second call must be a no-op, not a crash
    EXPECT_TRUE(pool.stopped());

    // A group created after shutdown still runs its jobs (inline).
    std::atomic<int> ran{0};
    TaskGroup group(pool);
    group.run([&] { ran.fetch_add(1); });
    group.run([&] { ran.fetch_add(1); });
    group.wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(Cli, FlowFlagsRegisterSharedOptions) {
    cli::FlowFlags flags;
    cli::OptionParser parser("tool", {""});
    cli::add_flow_flags(parser, flags);
    EXPECT_TRUE(parse_args(parser, {"--jobs", "3", "--trace-out", "t.json",
                                    "--cache-dir", "/tmp/cache",
                                    "--cache-max-mb", "64"}));
    EXPECT_EQ(flags.jobs, 3);
    EXPECT_EQ(flags.trace_out, "t.json");
    EXPECT_EQ(flags.cache_dir, "/tmp/cache");
    EXPECT_EQ(flags.cache_max_mb, 64);
}

} // namespace
} // namespace psaflow
