// The bytecode VM (interp/bytecode.hpp + interp/vm.hpp) against its
// contract: the lowering is stable (snapshot tests per opcode class) and
// execution is observationally identical to the tree-walking reference —
// bit-equal results, buffer contents, error strings, serialized execution
// profiles and cancellation behaviour. The five paper applications and the
// full flow engine are covered end-to-end; the `interp:vm` fuzz oracle
// (test_fuzz_regression) extends the same check to generated programs.
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "analysis/profile_cache.hpp"
#include "ast/walk.hpp"
#include "core/psaflow.hpp"
#include "interp/bytecode.hpp"
#include "interp/interpreter.hpp"
#include "interp/vm.hpp"
#include "meta/query.hpp"
#include "support/cancel.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::interp;
using psaflow::testing::parse_and_check;

std::string disasm(std::string_view src) {
    auto [mod, types] = parse_and_check(std::string(src));
    return bc::disassemble(bc::compile(*mod, types));
}

// ----------------------------------------------------------------------
// Lowering snapshots, one per opcode class. These pin the exact register
// assignment, charge placement and operand encoding; an intentional
// lowering change updates them alongside a fresh differential sweep.
// ----------------------------------------------------------------------

TEST(VmLowering, ArithmeticAndReturn) {
    EXPECT_EQ(disasm(R"(double axpy(double a, double x, double y) {
    return a * x + y;
}
)"),
              "func axpy(a: double, x: double, y: double) ret=double "
              "sregs=5 bregs=0\n"
              "   0: MulD s3, s0, s1\n"
              "   1: AddD s4, s3, s2\n"
              "   2: Ret s4\n"
              "   3: Trap \"value is not numeric\"\n");
}

TEST(VmLowering, IntegerDivisionAndModulo) {
    EXPECT_EQ(disasm(R"(int quot(int a, int b) {
    return a / b - a % b;
}
)"),
              "func quot(a: int, b: int) ret=int sregs=5 bregs=0\n"
              "   0: DivI s2, s0, s1\n"
              "   1: ModI s3, s0, s1\n"
              "   2: SubI s4, s2, s3\n"
              "   3: Ret s4\n"
              "   4: Trap \"value is not numeric\"\n");
}

TEST(VmLowering, ForLoopWithCompoundAssign) {
    // LoopEnter/LoopHead/LoopTrip/LoopExit bracket the body; the induction
    // variable advances through a snapshot register (s3 here) so body
    // writes to `i` are overwritten exactly like the tree walker.
    EXPECT_EQ(disasm(R"(int sum_to(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += i;
    }
    return s;
}
)"),
              "func sum_to(n: int) ret=int sregs=5 bregs=0\n"
              "   0: LoadI s3, 0\n"
              "   1: Mov s1, s3\n"
              "   2: ChargeAssign\n"
              "   3: LoopEnter L0\n"
              "   4: LoadI s3, 0\n"
              "   5: Mov s2, s3\n"
              "   6: Mov s3, s2\n"
              "   7: LoopHead s3, s0, @15\n"
              "   8: LoopTrip L0\n"
              "   9: ChargeAssign\n"
              "  10: CAddI s1, s1, s2\n"
              "  11: LoadI s4, 1\n"
              "  12: StepCheck s4, \"3:5: for-loop step must be positive\"\n"
              "  13: IncI s2, s3, s4\n"
              "  14: Jmp @6\n"
              "  15: LoopExit\n"
              "  16: Ret s1\n"
              "  17: Trap \"value is not numeric\"\n");
}

TEST(VmLowering, ShortCircuitAndOr) {
    // `&&`/`||` charge one comparison before the left operand and skip the
    // right one entirely when short-circuiting, mirroring the tree.
    EXPECT_EQ(disasm(R"(bool gate(bool p, bool q, double x) {
    return p && (x < 1.0 || !q);
}
)"),
              "func gate(p: bool, q: bool, x: double) ret=bool "
              "sregs=8 bregs=0\n"
              "   0: ChargeCmp\n"
              "   1: LoadB s3, false\n"
              "   2: JmpF s0, @11\n"
              "   3: ChargeCmp\n"
              "   4: LoadD s5, 1\n"
              "   5: LtD s6, s2, s5\n"
              "   6: LoadB s4, true\n"
              "   7: JmpT s6, @10\n"
              "   8: NotB s7, s1\n"
              "   9: Mov s4, s7\n"
              "  10: Mov s3, s4\n"
              "  11: Ret s3\n"
              "  12: Trap \"value is not bool\"\n");
}

TEST(VmLowering, WhileAndIfElse) {
    EXPECT_EQ(disasm(R"(int halve(int n) {
    int steps = 0;
    while (n > 1) {
        if (n % 2 == 0) {
            n = n / 2;
        } else {
            n = n - 1;
        }
        steps = steps + 1;
    }
    return steps;
}
)"),
              "func halve(n: int) ret=int sregs=6 bregs=0\n"
              "   0: LoadI s2, 0\n"
              "   1: Mov s1, s2\n"
              "   2: ChargeAssign\n"
              "   3: ChargeCmp\n"
              "   4: LoadI s2, 1\n"
              "   5: GtI s3, s0, s2\n"
              "   6: JmpF s3, @27\n"
              "   7: ChargeCmp\n"
              "   8: LoadI s2, 2\n"
              "   9: ModI s3, s0, s2\n"
              "  10: LoadI s4, 0\n"
              "  11: EqI s5, s3, s4\n"
              "  12: JmpF s5, @18\n"
              "  13: ChargeAssign\n"
              "  14: LoadI s2, 2\n"
              "  15: DivI s3, s0, s2\n"
              "  16: Mov s0, s3\n"
              "  17: Jmp @22\n"
              "  18: ChargeAssign\n"
              "  19: LoadI s2, 1\n"
              "  20: SubI s3, s0, s2\n"
              "  21: Mov s0, s3\n"
              "  22: ChargeAssign\n"
              "  23: LoadI s2, 1\n"
              "  24: AddI s3, s1, s2\n"
              "  25: Mov s1, s3\n"
              "  26: Jmp @3\n"
              "  27: Ret s1\n"
              "  28: Trap \"value is not numeric\"\n");
}

TEST(VmLowering, FloatRoundingAndConversions) {
    // Binary float ops compute in float (MulF); float compound assignment
    // computes in double and rounds once (CDivF) — two distinct rounding
    // behaviours the tree walker has, preserved verbatim.
    EXPECT_EQ(disasm(R"(float mix(float a, int k, double d) {
    float t = a * 0.5f;
    t /= d + k;
    return t;
}
)"),
              "func mix(a: float, k: int, d: double) ret=float "
              "sregs=6 bregs=0\n"
              "   0: LoadD s4, 0.5\n"
              "   1: MulF s5, s0, s4\n"
              "   2: Mov s3, s5\n"
              "   3: ChargeAssign\n"
              "   4: ChargeAssign\n"
              "   5: I2D s5, s1\n"
              "   6: AddD s4, s2, s5\n"
              "   7: CDivF s3, s3, s4\n"
              "   8: Ret s3\n"
              "   9: Trap \"value is not numeric\"\n");
}

TEST(VmLowering, LocalArraysAndElementOps) {
    EXPECT_EQ(disasm(R"(double tally(int n, double* buf) {
    double acc[4];
    for (int i = 0; i < 4; i++) {
        acc[i] = 0.0;
    }
    for (int i = 0; i < n; i++) {
        acc[i % 4] += buf[i % n];
    }
    return acc[0] + acc[1] + acc[2] + acc[3];
}
)"),
              "func tally(n: int, buf: double*) ret=double "
              "sregs=13 bregs=2\n"
              "   0: LoadI s2, 4\n"
              "   1: NewBuf b1, s2, double 'acc'\n"
              "   2: ChargeAssign\n"
              "   3: LoopEnter L0\n"
              "   4: LoadI s2, 0\n"
              "   5: Mov s1, s2\n"
              "   6: Mov s2, s1\n"
              "   7: LoadI s3, 4\n"
              "   8: LoopHead s2, s3, @17\n"
              "   9: LoopTrip L0\n"
              "  10: ChargeAssign\n"
              "  11: LoadD s3, 0\n"
              "  12: StoreElem b1[s1], s3\n"
              "  13: LoadI s3, 1\n"
              "  14: StepCheck s3, \"3:5: for-loop step must be positive\"\n"
              "  15: IncI s1, s2, s3\n"
              "  16: Jmp @6\n"
              "  17: LoopExit\n"
              "  18: LoopEnter L1\n"
              "  19: LoadI s2, 0\n"
              "  20: Mov s1, s2\n"
              "  21: Mov s2, s1\n"
              "  22: LoopHead s2, s0, @36\n"
              "  23: LoopTrip L1\n"
              "  24: ChargeAssign\n"
              "  25: ModI s3, s1, s0\n"
              "  26: LoadElemD s4, b0[s3]\n"
              "  27: LoadI s5, 4\n"
              "  28: ModI s6, s1, s5\n"
              "  29: LoadElemD s7, b1[s6]\n"
              "  30: CAddD s7, s7, s4\n"
              "  31: StoreElem b1[s6], s7\n"
              "  32: LoadI s3, 1\n"
              "  33: StepCheck s3, \"6:5: for-loop step must be positive\"\n"
              "  34: IncI s1, s2, s3\n"
              "  35: Jmp @21\n"
              "  36: LoopExit\n"
              "  37: LoadI s2, 0\n"
              "  38: LoadElemD s3, b1[s2]\n"
              "  39: LoadI s4, 1\n"
              "  40: LoadElemD s5, b1[s4]\n"
              "  41: AddD s6, s3, s5\n"
              "  42: LoadI s7, 2\n"
              "  43: LoadElemD s8, b1[s7]\n"
              "  44: AddD s9, s6, s8\n"
              "  45: LoadI s10, 3\n"
              "  46: LoadElemD s11, b1[s10]\n"
              "  47: AddD s12, s9, s11\n"
              "  48: Ret s12\n"
              "  49: Trap \"value is not numeric\"\n");
}

TEST(VmLowering, BuiltinAndUserCalls) {
    EXPECT_EQ(disasm(R"(double norm(double x, double y) {
    return sqrt(x * x + y * y);
}

double run(int n, double* b) {
    return norm(b[0], n) + fmin(b[1], 2.0);
}
)"),
              "func norm(x: double, y: double) ret=double sregs=6 bregs=0\n"
              "   0: MulD s2, s0, s0\n"
              "   1: MulD s3, s1, s1\n"
              "   2: AddD s4, s2, s3\n"
              "   3: CallBuiltin s5, sqrt(s4)\n"
              "   4: Ret s5\n"
              "   5: Trap \"value is not numeric\"\n"
              "\n"
              "func run(n: int, b: double*) ret=double sregs=10 bregs=1\n"
              "   0: LoadI s1, 0\n"
              "   1: LoadElemD s2, b0[s1]\n"
              "   2: I2D s3, s0\n"
              "   3: CallUser s4, norm(s2, s3)\n"
              "   4: LoadI s5, 1\n"
              "   5: LoadElemD s6, b0[s5]\n"
              "   6: LoadD s7, 2\n"
              "   7: CallBuiltin s8, fmin(s6, s7)\n"
              "   8: AddD s9, s4, s8\n"
              "   9: Ret s9\n"
              "  10: Trap \"value is not numeric\"\n");
}

// ----------------------------------------------------------------------
// Dispatch edge cases: the VM and the tree walker must agree on every
// result, every error and the exact error wording.
// ----------------------------------------------------------------------

struct EngineOutcome {
    bool threw = false;
    std::string error;
    Value result = Value::void_value();
};

EngineOutcome run_engine(std::string_view src, const std::string& fn,
                         const std::vector<Arg>& args, Engine engine,
                         InterpOptions options = {}) {
    auto [mod, types] = parse_and_check(std::string(src));
    options.engine = engine;
    EngineOutcome out;
    try {
        out.result = run_function(*mod, types, fn, args, options).result;
    } catch (const InterpError& e) {
        out.threw = true;
        out.error = e.what();
    }
    return out;
}

/// Both engines produce this exact error.
void expect_both_throw(std::string_view src, const std::string& fn,
                       const std::vector<Arg>& args,
                       const std::string& message) {
    for (const Engine engine : {Engine::Tree, Engine::Vm}) {
        const auto out = run_engine(src, fn, args, engine);
        EXPECT_TRUE(out.threw) << to_string(engine) << ": no error";
        EXPECT_EQ(out.error, message) << to_string(engine);
    }
}

/// Both engines produce this exact (bit-compared) result.
void expect_both_return(std::string_view src, const std::string& fn,
                        const std::vector<Arg>& args, const Value& want) {
    for (const Engine engine : {Engine::Tree, Engine::Vm}) {
        const auto out = run_engine(src, fn, args, engine);
        ASSERT_FALSE(out.threw) << to_string(engine) << ": " << out.error;
        ASSERT_EQ(out.result.type(), want.type()) << to_string(engine);
        if (want.type() == ast::Type::Double ||
            want.type() == ast::Type::Float) {
            double a = out.result.as_double();
            double b = want.as_double();
            EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
                << to_string(engine) << ": " << a << " != " << b;
        } else if (want.type() == ast::Type::Int) {
            EXPECT_EQ(out.result.as_int(), want.as_int())
                << to_string(engine);
        } else if (want.type() == ast::Type::Bool) {
            EXPECT_EQ(out.result.as_bool(), want.as_bool())
                << to_string(engine);
        }
    }
}

TEST(VmDispatch, DivisionByZero) {
    expect_both_throw("int f(int a) { return a / 0; }", "f",
                      {Value::of_int(7)}, "integer division by zero");
    expect_both_throw("int f(int a) { return a % 0; }", "f",
                      {Value::of_int(7)}, "integer modulo by zero");
}

TEST(VmDispatch, OutOfBoundsIndex) {
    const char* src = R"(double f(int i) {
    double b[4];
    return b[i];
}
)";
    expect_both_throw(src, "f", {Value::of_int(9)},
                      "buffer 'b' index 9 out of bounds [0, 4)");
    expect_both_throw(src, "f", {Value::of_int(-1)},
                      "buffer 'b' index -1 out of bounds [0, 4)");
}

TEST(VmDispatch, NegativeArraySize) {
    expect_both_throw(R"(double f(int n) {
    double b[n];
    return 0.0;
}
)",
                      "f", {Value::of_int(-3)},
                      "negative array size for 'b'");
}

TEST(VmDispatch, NonPositiveLoopStep) {
    expect_both_throw(R"(int f(int s) {
    int acc = 0;
    for (int i = 0; i < 10; i += s) {
        acc = acc + 1;
    }
    return acc;
}
)",
                      "f", {Value::of_int(0)},
                      "3:5: for-loop step must be positive");
}

TEST(VmDispatch, MaxStepsAbort) {
    InterpOptions options;
    options.max_steps = 1000;
    for (const Engine engine : {Engine::Tree, Engine::Vm}) {
        const auto out = run_engine(R"(int f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc + i;
    }
    return acc;
}
)",
                                    "f", {Value::of_int(1000000)}, engine,
                                    options);
        EXPECT_TRUE(out.threw) << to_string(engine);
        EXPECT_EQ(out.error,
                  "execution exceeded max_steps (runaway loop?)")
            << to_string(engine);
    }
}

TEST(VmDispatch, EmptyAndZeroTripLoops) {
    expect_both_return(R"(int f(int n) {
    int acc = 7;
    for (int i = 0; i < 0; i++) {
        acc = 0;
    }
    for (int i = n; i < n; i++) {
        acc = 0;
    }
    for (int i = 0; i < n; i++) {
    }
    return acc;
}
)",
                       "f", {Value::of_int(5)}, Value::of_int(7));
}

TEST(VmDispatch, DeepNestingAndTruncation) {
    expect_both_return(R"(int f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 3; j++) {
            for (int k = 0; k < 2; k++) {
                for (int l = 0; l < 2; l++) {
                    acc += (i * 7 - n) / (j + 2) - (i - j) % (k + l + 1);
                }
            }
        }
    }
    return acc;
}
)",
                       "f", {Value::of_int(9)}, [] {
                           long long acc = 0;
                           const long long n = 9;
                           for (long long i = 0; i < n; ++i)
                               for (long long j = 0; j < 3; ++j)
                                   for (long long k = 0; k < 2; ++k)
                                       for (long long l = 0; l < 2; ++l)
                                           acc += (i * 7 - n) / (j + 2) -
                                                  (i - j) % (k + l + 1);
                           return Value::of_int(acc);
                       }());
}

TEST(VmDispatch, FloatCompoundRoundsOnceThroughDouble) {
    // Binary float arithmetic rounds each op; compound float assignment
    // computes in double and rounds once. Verify the VM reproduces the
    // tree walker bit-for-bit on a value where the two differ from a
    // naive all-double evaluation.
    const char* src = R"(float f(float a, float b) {
    float t = a;
    t *= b;
    return t + a * b;
}
)";
    const auto tree = run_engine(src, "f",
                                 {Value::of_float(1.1), Value::of_float(3.7)},
                                 Engine::Tree);
    ASSERT_FALSE(tree.threw) << tree.error;
    expect_both_return(src, "f",
                       {Value::of_float(1.1), Value::of_float(3.7)},
                       tree.result);
}

// ----------------------------------------------------------------------
// Cooperative cancellation: the VM polls the ambient CancelToken on the
// same step cadence as the tree walker.
// ----------------------------------------------------------------------

TEST(VmCancellation, CancelledTokenUnwindsMidLoop) {
    const char* src = R"(int spin(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc + i;
    }
    return acc;
}
)";
    auto [mod, types] = parse_and_check(src);
    for (const Engine engine : {Engine::Tree, Engine::Vm}) {
        CancelToken token;
        token.cancel();
        CancelScope scope(&token);
        InterpOptions options;
        options.engine = engine;
        // ~400k steps: far past the first poll point, nowhere near done.
        EXPECT_THROW((void)run_function(*mod, types, "spin",
                                        {Value::of_int(100000)}, options),
                     CancelledError)
            << to_string(engine);
    }
}

TEST(VmCancellation, UncancelledTokenRunsToCompletion) {
    const char* src = R"(int spin(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc + i;
    }
    return acc;
}
)";
    auto [mod, types] = parse_and_check(src);
    CancelToken token;
    CancelScope scope(&token);
    InterpOptions options;
    options.engine = Engine::Vm;
    EXPECT_EQ(run_function(*mod, types, "spin", {Value::of_int(100000)},
                           options)
                  .result.as_int(),
              4999950000LL);
}

// ----------------------------------------------------------------------
// Profile equivalence on the five paper applications: identical results,
// buffers and serialized execution profiles (totals, per-loop stats,
// focus summaries — everything the design flow consumes).
// ----------------------------------------------------------------------

/// Name of the function containing the first for-loop (the flow's default
/// profiling focus for these apps).
std::string first_loop_function(ast::Module& module) {
    for (const auto& fn : module.functions) {
        bool has_loop = false;
        ast::walk(static_cast<ast::Node&>(*fn), [&](ast::Node& n) {
            if (n.kind() == ast::NodeKind::For) has_loop = true;
            return true;
        });
        if (has_loop) return fn->name;
    }
    return module.functions.front()->name;
}

struct AppCapture {
    std::string profile_payload;
    std::vector<std::vector<double>> buffers;
    long long result_bits = 0;
    bool has_result = false;
};

AppCapture run_app(const apps::Application& app, Engine engine) {
    auto [mod, types] = parse_and_check(app.source, app.name);
    const auto loops = meta::for_loops(*mod);
    std::vector<ast::Node::Id> loop_order;
    for (const auto* loop : loops) loop_order.push_back(loop->id);

    InterpOptions options;
    options.engine = engine;
    options.profile = true;
    options.focus_function = first_loop_function(*mod);

    const auto args = app.workload.make_args(app.workload.profile_scale);
    const auto run =
        run_function(*mod, types, app.workload.entry, args, options);

    AppCapture cap;
    cap.profile_payload =
        analysis::serialize_profile_payload(run.profile, loop_order);
    for (const auto& arg : args)
        if (const auto* buf = std::get_if<BufferPtr>(&arg))
            cap.buffers.push_back((*buf)->raw());
    if (run.result.type() == ast::Type::Double ||
        run.result.type() == ast::Type::Float) {
        double d = run.result.as_double();
        std::memcpy(&cap.result_bits, &d, sizeof d);
        cap.has_result = true;
    } else if (run.result.type() == ast::Type::Int) {
        cap.result_bits = run.result.as_int();
        cap.has_result = true;
    }
    return cap;
}

TEST(VmApps, ProfilesMatchTreeWalkerOnAllFiveApps) {
    for (const auto* app : apps::all_applications()) {
        SCOPED_TRACE(app->name);
        const auto tree = run_app(*app, Engine::Tree);
        const auto vm = run_app(*app, Engine::Vm);
        EXPECT_EQ(tree.profile_payload, vm.profile_payload);
        EXPECT_EQ(tree.has_result, vm.has_result);
        EXPECT_EQ(tree.result_bits, vm.result_bits);
        ASSERT_EQ(tree.buffers.size(), vm.buffers.size());
        for (std::size_t i = 0; i < tree.buffers.size(); ++i) {
            ASSERT_EQ(tree.buffers[i].size(), vm.buffers[i].size());
            EXPECT_EQ(std::memcmp(tree.buffers[i].data(),
                                  vm.buffers[i].data(),
                                  tree.buffers[i].size() * sizeof(double)),
                      0)
                << app->name << " buffer " << i << " differs";
        }
    }
}

// ----------------------------------------------------------------------
// Flow-level byte-identity: the full design flow run under each engine
// (and at jobs=1 vs jobs=3) produces identical designs, logs and
// predictions. This is the end-to-end form of the acceptance criterion;
// the per-interpreter checks above localise any failure.
// ----------------------------------------------------------------------

std::string flow_summary(const flow::FlowResult& result) {
    std::ostringstream os;
    os.precision(17);
    os << "reference_seconds=" << result.reference_seconds << "\n";
    for (const auto& line : result.log) os << "| " << line << "\n";
    for (const auto& d : result.designs) {
        os << "design " << d.name() << " speedup=" << d.speedup
           << " loc_delta=" << d.loc_delta
           << " synthesizable=" << d.synthesizable << "\n";
        os << d.source << "\n";
        for (const auto& line : d.log) os << "| " << line << "\n";
    }
    return os.str();
}

TEST(VmFlow, DesignsAreByteIdenticalAcrossEnginesAndJobs) {
    const Engine restore = default_engine();
    std::vector<std::string> summaries;
    for (const Engine engine : {Engine::Tree, Engine::Vm}) {
        set_default_engine(engine);
        for (const int jobs : {1, 3}) {
            RunOptions options;
            options.jobs = jobs;
            summaries.push_back(
                flow_summary(psaflow::compile(apps::kmeans(), options)));
        }
    }
    set_default_engine(restore);
    ASSERT_EQ(summaries.size(), 4u);
    EXPECT_FALSE(summaries[0].empty());
    for (std::size_t i = 1; i < summaries.size(); ++i)
        EXPECT_EQ(summaries[0], summaries[i]) << "variant " << i;
}

TEST(VmFlow, SecondAppAgreesAcrossEngines) {
    const Engine restore = default_engine();
    set_default_engine(Engine::Tree);
    const auto tree = flow_summary(psaflow::compile(apps::bezier(), {}));
    set_default_engine(Engine::Vm);
    const auto vm = flow_summary(psaflow::compile(apps::bezier(), {}));
    set_default_engine(restore);
    EXPECT_FALSE(tree.empty());
    EXPECT_EQ(tree, vm);
}

} // namespace
} // namespace psaflow
