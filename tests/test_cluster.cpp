// Cluster-layer tests: consistent-hash ring stability and failover,
// backoff jitter, shard specs, and an in-process two-shard fleet behind a
// live Router — byte-identity of routed versus direct designs, drain and
// rejoin, transport-failure failover, and the remote-CAS wire round trip.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "cluster/remote_cas.hpp"
#include "cluster/retry.hpp"
#include "cluster/router.hpp"
#include "serve/protocol.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "support/net.hpp"
#include "support/prng.hpp"

namespace psaflow {
namespace {

namespace fs = std::filesystem;

// --------------------------------------------------------------- hash ring ----

TEST(HashRing, SpreadsKeysRoughlyEvenlyAcrossShards) {
    cluster::HashRing ring;
    for (const char* name : {"a", "b", "c", "d"}) ring.add(name);
    ASSERT_EQ(ring.shard_count(), 4u);

    std::map<std::string, int> owned;
    SplitMix64 rng(1);
    const int kKeys = 8192;
    for (int i = 0; i < kKeys; ++i) {
        auto owner = ring.pick(rng.next_u64());
        ASSERT_TRUE(owner.has_value());
        ++owned[*owner];
    }
    // With 64 vnodes per shard no shard should stray far from 25%.
    ASSERT_EQ(owned.size(), 4u);
    for (const auto& [name, count] : owned) {
        EXPECT_GT(count, kKeys / 10) << name << " starved";
        EXPECT_LT(count, kKeys / 2) << name << " overloaded";
    }
}

TEST(HashRing, TopologyChangeMovesOnlyTheJoinersSlice) {
    cluster::HashRing three;
    for (const char* name : {"a", "b", "c"}) three.add(name);
    cluster::HashRing four = three;
    four.add("d");

    // Every key that changed owner moved TO the joiner — nothing shuffles
    // between surviving shards — and roughly 1/N of the keyspace moved.
    SplitMix64 rng(7);
    const int kKeys = 4096;
    int moved = 0;
    for (int i = 0; i < kKeys; ++i) {
        const std::uint64_t key = rng.next_u64();
        const std::string before = *three.pick(key);
        const std::string after = *four.pick(key);
        if (before != after) {
            EXPECT_EQ(after, "d") << "key moved between survivors";
            ++moved;
        }
    }
    EXPECT_GT(moved, kKeys / 10);
    EXPECT_LT(moved, kKeys / 2);

    // Removing the joiner restores the original ownership exactly, so a
    // drained-and-rejoined shard gets its warm keys back.
    four.remove("d");
    rng = SplitMix64(7);
    for (int i = 0; i < kKeys; ++i) {
        const std::uint64_t key = rng.next_u64();
        EXPECT_EQ(*four.pick(key), *three.pick(key));
    }
}

TEST(HashRing, PickIfWalksPastUnusableShardsDeterministically) {
    cluster::HashRing ring;
    for (const char* name : {"a", "b", "c"}) ring.add(name);

    SplitMix64 rng(11);
    for (int i = 0; i < 256; ++i) {
        const std::uint64_t key = rng.next_u64();
        const std::vector<std::string> order = ring.owners(key, 3);
        ASSERT_EQ(order.size(), 3u);
        EXPECT_EQ(order[0], *ring.pick(key));

        // The fallback for a failed owner is the next distinct shard in
        // ring order — the same answer owners() gives, every time.
        const auto fallback = ring.pick_if(
            key, [&](const std::string& s) { return s != order[0]; });
        ASSERT_TRUE(fallback.has_value());
        EXPECT_EQ(*fallback, order[1]);

        EXPECT_FALSE(
            ring.pick_if(key, [](const std::string&) { return false; })
                .has_value());
    }

    EXPECT_FALSE(cluster::HashRing{}.pick(0).has_value());
}

TEST(HashRing, InsertionOrderDoesNotChangeTheRing) {
    cluster::HashRing forward;
    for (const char* name : {"a", "b", "c", "d"}) forward.add(name);
    cluster::HashRing backward;
    for (const char* name : {"d", "c", "b", "a"}) backward.add(name);

    SplitMix64 rng(23);
    for (int i = 0; i < 1024; ++i) {
        const std::uint64_t key = rng.next_u64();
        EXPECT_EQ(*forward.pick(key), *backward.pick(key));
    }
}

// ----------------------------------------------------------------- backoff ----

TEST(Backoff, JitterStaysInWindowAndTheServerHintOverrides) {
    cluster::BackoffPolicy policy; // base 50 ms, cap 2000 ms
    SplitMix64 rng(42);
    for (int attempt = 0; attempt < 8; ++attempt) {
        long long window = policy.base_ms << attempt;
        window = std::min(window, policy.max_ms);
        const long long delay = policy.delay_ms(attempt, rng);
        EXPECT_GE(delay, window / 2) << "attempt " << attempt;
        EXPECT_LE(delay, window) << "attempt " << attempt;
    }

    // A server retry_after_ms hint replaces the exponential window.
    for (int i = 0; i < 32; ++i) {
        const long long delay = policy.delay_ms(0, rng, /*hint_ms=*/400);
        EXPECT_GE(delay, 200);
        EXPECT_LE(delay, 400);
    }

    // Same seed, same jitter sequence: retries are replayable.
    SplitMix64 one(9), two(9);
    for (int attempt = 0; attempt < 6; ++attempt)
        EXPECT_EQ(policy.delay_ms(attempt, one),
                  policy.delay_ms(attempt, two));
}

// -------------------------------------------------------------- shard spec ----

TEST(ShardSpec, ParsesEndpointsAndRejectsMalformedSpecs) {
    std::string error;
    auto tcp = cluster::parse_shard_spec("a=127.0.0.1:4100", &error);
    ASSERT_TRUE(tcp.has_value()) << error;
    EXPECT_EQ(tcp->name, "a");
    EXPECT_EQ(tcp->endpoint.kind, net::Endpoint::Kind::Tcp);
    EXPECT_EQ(tcp->endpoint.host, "127.0.0.1");
    EXPECT_EQ(tcp->endpoint.port, 4100);

    auto unix_spec = cluster::parse_shard_spec("b=unix:/tmp/b.sock", &error);
    ASSERT_TRUE(unix_spec.has_value()) << error;
    EXPECT_EQ(unix_spec->name, "b");
    EXPECT_EQ(unix_spec->endpoint.kind, net::Endpoint::Kind::Unix);
    EXPECT_EQ(unix_spec->endpoint.path, "/tmp/b.sock");

    for (const char* bad : {"noequals", "=endpoint", "name="}) {
        error.clear();
        EXPECT_FALSE(cluster::parse_shard_spec(bad, &error).has_value())
            << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
    // A well-formed spec whose endpoint is malformed fails endpoint-side.
    EXPECT_FALSE(
        cluster::parse_shard_spec("a=127.0.0.1:99999", &error).has_value());
}

// ------------------------------------------------------------- router e2e ----

/// Scratch directory for one cluster test, removed on destruction.
struct ScratchDir {
    fs::path path;
    explicit ScratchDir(const std::string& name) {
        path = fs::path(testing::TempDir()) /
               ("psaflow-cluster-" + name + "-" + std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/// One framed request/response round trip against a Unix endpoint.
json::Value round_trip(const std::string& socket_path,
                       const std::string& request_json) {
    std::string error;
    net::Fd conn = net::connect_unix(socket_path, &error);
    EXPECT_TRUE(conn.valid()) << error;
    if (!conn.valid()) return json::Value::null();
    EXPECT_TRUE(net::write_frame(conn.get(), request_json));
    std::string payload;
    EXPECT_EQ(net::read_frame(conn.get(), payload), net::FrameStatus::Ok);
    auto doc = json::parse(payload, &error);
    EXPECT_TRUE(doc.has_value()) << error;
    return doc.has_value() ? *doc : json::Value::null();
}

/// Two in-process psaflowd shards ("a", "b") on Unix sockets behind a live
/// Router on a third socket — the whole fleet in one address space.
struct ClusterFixture {
    ScratchDir dir;
    std::unique_ptr<serve::Daemon> shard_a;
    std::unique_ptr<serve::Daemon> shard_b;
    std::unique_ptr<cluster::Router> router;
    std::string router_socket;
    std::thread run_a, run_b, run_router;

    explicit ClusterFixture(const std::string& name) : dir(name) {
        shard_a = make_shard("a");
        shard_b = make_shard("b");
    }

    std::unique_ptr<serve::Daemon> make_shard(const std::string& name) {
        serve::DaemonOptions options;
        options.socket_path = (dir.path / (name + ".sock")).string();
        options.shard_name = name;
        options.out_root = (dir.path / ("out-" + name)).string();
        options.cache_dir = (dir.path / "cache").string();
        options.enable_test_endpoints = true;
        return std::make_unique<serve::Daemon>(std::move(options));
    }

    void start(cluster::RouterOptions options = {}) {
        auto error = shard_a->start();
        ASSERT_FALSE(error.has_value()) << *error;
        error = shard_b->start();
        ASSERT_FALSE(error.has_value()) << *error;
        run_a = std::thread([this] { shard_a->run(); });
        run_b = std::thread([this] { shard_b->run(); });

        router_socket = (dir.path / "router.sock").string();
        options.socket_path = router_socket;
        std::string spec_error;
        for (const auto* daemon : {shard_a.get(), shard_b.get()}) {
            auto shard = cluster::parse_shard_spec(
                daemon->options().shard_name + "=unix:" +
                    daemon->options().socket_path,
                &spec_error);
            ASSERT_TRUE(shard.has_value()) << spec_error;
            options.shards.push_back(std::move(*shard));
        }
        if (options.health_interval_ms == 500)
            options.health_interval_ms = 100; // tests want fast detection
        router = std::make_unique<cluster::Router>(std::move(options));
        error = router->start();
        ASSERT_FALSE(error.has_value()) << *error;
        run_router = std::thread([this] { router->run(); });
    }

    void stop_shard(std::unique_ptr<serve::Daemon>& daemon,
                    std::thread& runner) {
        if (daemon) daemon->notify_shutdown();
        if (runner.joinable()) runner.join();
    }

    ~ClusterFixture() {
        if (router) router->notify_shutdown();
        if (run_router.joinable()) run_router.join();
        stop_shard(shard_a, run_a);
        stop_shard(shard_b, run_b);
    }
};

/// The shard name owning `app`'s affinity digest under `router`.
std::string owner_of(cluster::Router& router, const std::string& app) {
    serve::CompileRequest request;
    request.app = app;
    auto owner = router.route_key(serve::affinity_digest(request));
    EXPECT_TRUE(owner.has_value());
    return owner.value_or("");
}

/// All regular files under `root`, relative paths, sorted.
std::vector<fs::path> files_under(const fs::path& root) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(root))
        if (entry.is_regular_file())
            files.push_back(fs::relative(entry.path(), root));
    std::sort(files.begin(), files.end());
    return files;
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string compile_json(const std::string& app, const fs::path& out) {
    return R"({"type":"compile","app":")" + app + R"(","out":")" +
           out.string() + R"("})";
}

TEST(Router, RoutedCompilesAreByteIdenticalToDirectOnes) {
    ClusterFixture fleet("identity");
    fleet.start();

    // Compile once through the router and once directly against the shard
    // the ring owns the module on; the artifacts must match byte for byte
    // (same executor, and the router relays responses verbatim).
    const std::string app = "nbody";
    const std::string owner = owner_of(*fleet.router, app);
    serve::Daemon& direct =
        owner == "a" ? *fleet.shard_a : *fleet.shard_b;

    const fs::path routed_out = fleet.dir.path / "routed";
    const fs::path direct_out = fleet.dir.path / "direct";
    const json::Value routed = round_trip(
        fleet.router_socket, compile_json(app, routed_out));
    const json::Value via_shard = round_trip(
        direct.options().socket_path, compile_json(app, direct_out));

    auto parsed_routed = serve::parse_response(routed);
    auto parsed_direct = serve::parse_response(via_shard);
    ASSERT_TRUE(parsed_routed.has_value() && parsed_routed->ok)
        << json::dump(routed);
    ASSERT_TRUE(parsed_direct.has_value() && parsed_direct->ok)
        << json::dump(via_shard);
    EXPECT_DOUBLE_EQ(routed.find("best_speedup")->number_value,
                     via_shard.find("best_speedup")->number_value);
    EXPECT_DOUBLE_EQ(routed.find("design_count")->number_value,
                     via_shard.find("design_count")->number_value);

    const std::vector<fs::path> routed_files = files_under(routed_out);
    ASSERT_FALSE(routed_files.empty());
    ASSERT_EQ(routed_files, files_under(direct_out));
    for (const fs::path& file : routed_files)
        EXPECT_EQ(slurp(routed_out / file), slurp(direct_out / file))
            << file;

    // The request really went through the ring owner.
    for (const cluster::ShardView& view : fleet.router->shard_views()) {
        if (view.name == owner) {
            EXPECT_GE(view.routed, 1u);
        }
    }
}

TEST(Router, DrainMovesKeysAwayAndRejoinRestoresThem) {
    ClusterFixture fleet("drain");
    fleet.start();

    const std::string app = "kmeans";
    const std::string owner = owner_of(*fleet.router, app);
    const std::string other = owner == "a" ? "b" : "a";

    // The wire admin request flips the drain bit...
    const json::Value drained = round_trip(
        fleet.router_socket,
        R"({"type":"drain","shard":")" + owner + R"(","draining":true})");
    ASSERT_NE(drained.find("ok"), nullptr);
    EXPECT_TRUE(drained.find("ok")->bool_value);

    // ...which deterministically hands the key to the fallback shard, and
    // a drained fleet-of-one-survivor still serves compiles.
    EXPECT_EQ(owner_of(*fleet.router, app), other);
    const json::Value response = round_trip(
        fleet.router_socket,
        compile_json(app, fleet.dir.path / "drained-out"));
    auto parsed = serve::parse_response(response);
    ASSERT_TRUE(parsed.has_value() && parsed->ok) << json::dump(response);

    // Unknown shard names are rejected, not ignored.
    const json::Value unknown = round_trip(
        fleet.router_socket,
        R"({"type":"drain","shard":"zz","draining":true})");
    auto unknown_parsed = serve::parse_response(unknown);
    ASSERT_TRUE(unknown_parsed.has_value());
    EXPECT_EQ(unknown_parsed->error_kind, serve::ErrorKind::BadRequest);

    // Undrain: the ring is immutable, so the key comes straight home.
    EXPECT_TRUE(fleet.router->set_drain(owner, false));
    EXPECT_EQ(owner_of(*fleet.router, app), owner);
}

TEST(Router, FailsOverWhenTheOwningShardDies) {
    cluster::RouterOptions options;
    options.health_interval_ms = 60000; // force the transport-failure path
    ClusterFixture fleet("failover");
    fleet.start(std::move(options));

    const std::string app = "bezier";
    const std::string owner = owner_of(*fleet.router, app);

    // Kill the owner outright — no drain, no health-check grace.
    if (owner == "a")
        fleet.stop_shard(fleet.shard_a, fleet.run_a);
    else
        fleet.stop_shard(fleet.shard_b, fleet.run_b);

    // The router hits the dead socket, marks the shard unhealthy, and
    // retries the survivor inside the same request.
    const json::Value response = round_trip(
        fleet.router_socket,
        compile_json(app, fleet.dir.path / "failover-out"));
    auto parsed = serve::parse_response(response);
    ASSERT_TRUE(parsed.has_value() && parsed->ok) << json::dump(response);

    bool owner_seen = false;
    for (const cluster::ShardView& view : fleet.router->shard_views()) {
        if (view.name != owner) continue;
        owner_seen = true;
        EXPECT_FALSE(view.healthy);
        EXPECT_GE(view.failures, 1u);
        EXPECT_GE(view.rerouted_away, 1u);
    }
    EXPECT_TRUE(owner_seen);
    EXPECT_NE(owner_of(*fleet.router, app), owner);
}

TEST(Router, AnswersStatsAndMetricsItself) {
    ClusterFixture fleet("stats");
    fleet.start();

    const json::Value pong =
        round_trip(fleet.router_socket, R"({"type":"ping"})");
    ASSERT_NE(pong.find("ok"), nullptr);
    EXPECT_TRUE(pong.find("ok")->bool_value);

    const json::Value stats =
        round_trip(fleet.router_socket, R"({"type":"stats"})");
    ASSERT_NE(stats.find("role"), nullptr);
    EXPECT_EQ(stats.find("role")->string_value, "router");
    const json::Value* shards = stats.find("shards");
    ASSERT_NE(shards, nullptr);
    EXPECT_EQ(shards->elements.size(), 2u);

    const json::Value metrics =
        round_trip(fleet.router_socket, R"({"type":"metrics"})");
    const json::Value* body = metrics.find("body");
    ASSERT_NE(body, nullptr);
    EXPECT_NE(body->string_value.find("psaflow_router_requests_total"),
              std::string::npos);
    EXPECT_NE(body->string_value.find("psaflow_router_shard_healthy"),
              std::string::npos);
}

// -------------------------------------------------------------- remote CAS ----

TEST(RemoteCas, PublishThenFetchRoundTripsOverTheWire) {
    ClusterFixture fleet("cas");
    fleet.start();

    std::string error;
    auto upstream = net::parse_endpoint(
        "unix:" + fleet.shard_a->options().socket_path, &error);
    ASSERT_TRUE(upstream.has_value()) << error;
    cluster::RemoteCasClient client(std::move(*upstream));

    // Binary-safe payload (NULs and high bytes ride base64 on the wire).
    const std::uint64_t key = 0x9e3779b97f4a7c15ULL;
    const std::string payload = {'\x00', '\x01', '\xfe', 'p', 's', 'a',
                                 '\n',   '\x00', '\x7f'};
    EXPECT_TRUE(client.publish(key, payload));
    const auto fetched = client.fetch(key);
    ASSERT_TRUE(fetched.has_value());
    EXPECT_EQ(*fetched, payload);

    // A key nobody published is a miss, not an error.
    EXPECT_FALSE(client.fetch(key ^ 1).has_value());

    // An unreachable upstream degrades to miss/dropped-publish — the
    // remote tier is an accelerator, never a correctness dependency.
    auto dead = net::parse_endpoint(
        "unix:" + (fleet.dir.path / "nobody.sock").string(), &error);
    ASSERT_TRUE(dead.has_value()) << error;
    cluster::RemoteCasClient unreachable(std::move(*dead));
    EXPECT_FALSE(unreachable.fetch(key).has_value());
    EXPECT_FALSE(unreachable.publish(key, payload));
}

} // namespace
} // namespace psaflow
