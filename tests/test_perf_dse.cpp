#include <gtest/gtest.h>

#include "analysis/characterize.hpp"
#include "apps/apps.hpp"
#include "dse/dse.hpp"
#include "perf/estimator.hpp"
#include "perf/shape_builder.hpp"
#include "platform/devices.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::platform;
using psaflow::testing::parse_and_check;

interp::Arg integer(long long v) { return interp::Value::of_int(v); }

// ------------------------------------------------------------ registers ----

TEST(RegsEstimate, SmallKernelModest) {
    auto [mod, types] = parse_and_check(R"(
void knl(int n, double* a) {
    for (int i = 0; i < n; i = i + 1) {
        a[i] = a[i] * 2.0;
    }
}
)");
    const int regs =
        perf::estimate_regs_per_thread(*mod->find_function("knl"), true);
    EXPECT_LT(regs, 64);
    EXPECT_GE(regs, 16);
}

TEST(RegsEstimate, DoubleNeedsMoreThanSingle) {
    auto [mod, types] = parse_and_check(R"(
void knl(int n, double* a) {
    for (int i = 0; i < n; i = i + 1) {
        double x = a[i];
        double y = x * 2.0;
        double z = y + x;
        a[i] = z;
    }
}
)");
    const auto& fn = *mod->find_function("knl");
    EXPECT_GT(perf::estimate_regs_per_thread(fn, true),
              perf::estimate_regs_per_thread(fn, false));
}

TEST(RegsEstimate, RushLarsenSaturatesAt255) {
    auto mod = frontend::parse_module(apps::rush_larsen().source, "rl");
    const auto* step = mod->find_function("rush_larsen_step");
    ASSERT_NE(step, nullptr);
    EXPECT_EQ(perf::estimate_regs_per_thread(*step, true), 255);
}

// --------------------------------------------------------- shape builder ---

struct ShapeFixture {
    ast::ModulePtr mod;
    sema::TypeInfo types;
    analysis::KernelCharacterization ch;

    explicit ShapeFixture(const char* src, const char* kernel,
                          std::function<std::vector<interp::Arg>(double)>
                              args) {
        mod = frontend::parse_module(src, "t");
        types = sema::check(*mod);
        analysis::Workload w;
        w.entry = "run";
        w.make_args = std::move(args);
        ch = analysis::characterize_kernel(*mod, types, kernel, w);
    }

    KernelShape shape(perf::ShapeOptions opt = {}) {
        return perf::build_kernel_shape(*mod->find_function(ch.kernel), types,
                                        *mod, ch, opt);
    }
};

const char* kRescanSrc = R"(
void knl(int n, double* pos, double* out) {
    for (int i = 0; i < n; i = i + 1) {
        double acc = 0.0;
        for (int j = 0; j < n; j = j + 1) {
            acc += pos[j];
        }
        out[i] = acc;
    }
}

void run(int n, double* pos, double* out) {
    knl(n, pos, out);
}
)";

ShapeFixture rescan_fixture() {
    return ShapeFixture(kRescanSrc, "knl", [](double scale) {
        const int n = static_cast<int>(64 * scale);
        return std::vector<interp::Arg>{
            integer(n),
            std::make_shared<interp::Buffer>(ast::Type::Double, 1024, "pos"),
            std::make_shared<interp::Buffer>(ast::Type::Double, 1024, "out")};
    });
}

TEST(ShapeBuilder, RescannedArraysPayFullFpgaTraffic) {
    auto fx = rescan_fixture();
    perf::ShapeOptions opt;
    opt.relative_scale = 8.0;
    // Shrink the on-chip threshold so `pos` (512 x 8B at scale 8) is
    // classified off-chip and the rescan rule bites.
    opt.fpga_onchip_threshold_bytes = 1024.0;
    const auto shape = fx.shape(opt);
    // pos is read n times per outer iteration: O(n^2) bytes, far above its
    // footprint.
    EXPECT_GT(shape.fpga_traffic(), 10.0 * shape.footprint_bytes);
}

TEST(ShapeBuilder, StreamedArraysPayFootprintOnly) {
    ShapeFixture fx(R"(
void knl(int n, double* a, double* b) {
    for (int i = 0; i < n; i = i + 1) {
        for (int r = 0; r < 4; r = r + 1) {
            b[i] = b[i] + a[i] * 0.5;
        }
    }
}

void run(int n, double* a, double* b) {
    knl(n, a, b);
}
)",
                    "knl", [](double scale) {
                        const int n = static_cast<int>(64 * scale);
                        return std::vector<interp::Arg>{
                            integer(n),
                            std::make_shared<interp::Buffer>(
                                ast::Type::Double, 1024, "a"),
                            std::make_shared<interp::Buffer>(
                                ast::Type::Double, 1024, "b")};
                    });
    perf::ShapeOptions opt;
    opt.relative_scale = 8.0;
    opt.fpga_onchip_threshold_bytes = 16.0; // force everything off-chip
    const auto shape = fx.shape(opt);
    // a and b are accessed 4-12x per element but advance with i: traffic
    // collapses to ~footprint (x1 invocation).
    EXPECT_LT(shape.fpga_traffic(), 1.5 * shape.footprint_bytes);
    EXPECT_GT(shape.stream_bytes, 3.0 * shape.footprint_bytes);
}

TEST(ShapeBuilder, DependentFractionCountsCarriedOnly) {
    // Reduction-only inner loop => dependent fraction 0.
    auto fx = rescan_fixture();
    const auto shape = fx.shape();
    EXPECT_DOUBLE_EQ(shape.dependent_fraction, 0.0);

    // Carried (non-reduction) inner loop => fraction ~1.
    ShapeFixture carried(R"(
void knl(int n, double* a, double* out) {
    for (int i = 0; i < n; i = i + 1) {
        double s = 1.0;
        for (int j = 0; j < 16; j = j + 1) {
            s = s * 1.5 - a[j] * s;
        }
        out[i] = s;
    }
}

void run(int n, double* a, double* out) {
    knl(n, a, out);
}
)",
                         "knl", [](double scale) {
                             const int n = static_cast<int>(32 * scale);
                             return std::vector<interp::Arg>{
                                 integer(n),
                                 std::make_shared<interp::Buffer>(
                                     ast::Type::Double, 64, "a"),
                                 std::make_shared<interp::Buffer>(
                                     ast::Type::Double, 64, "out")};
                         });
    EXPECT_GT(carried.shape().dependent_fraction, 0.9);
}

TEST(ShapeBuilder, TranscendentalFraction) {
    ShapeFixture fx(R"(
void knl(int n, double* a) {
    for (int i = 0; i < n; i = i + 1) {
        a[i] = exp(a[i]);
    }
}

void run(int n, double* a) {
    knl(n, a);
}
)",
                    "knl", [](double scale) {
                        const int n = static_cast<int>(32 * scale);
                        return std::vector<interp::Arg>{
                            integer(n), std::make_shared<interp::Buffer>(
                                            ast::Type::Double, 64, "a")};
                    });
    const auto shape = fx.shape();
    // exp is the only flop source here.
    EXPECT_NEAR(shape.transcendental_fraction, 1.0, 0.01);
}

TEST(ShapeBuilder, SequentialCyclesPerIter) {
    auto fx = rescan_fixture();
    const auto shape = fx.shape();
    // Inner loop runs n=64 trips per outer iteration at profile scale.
    EXPECT_NEAR(shape.sequential_cycles_per_iter, 64.0, 1.0);
}

TEST(ShapeBuilder, ScaleExtrapolation) {
    auto fx = rescan_fixture();
    perf::ShapeOptions base;
    perf::ShapeOptions big;
    big.relative_scale = 4.0;
    const auto s1 = fx.shape(base);
    const auto s4 = fx.shape(big);
    EXPECT_NEAR(s4.flops / s1.flops, 16.0, 1.5);          // O(n^2)
    EXPECT_NEAR(s4.parallel_iters / s1.parallel_iters, 4.0, 0.2);
}

// ------------------------------------------------------------------ DSE ----

TEST(Dse, UnrollDoublesUntilOvermap) {
    auto [mod, types] = parse_and_check(R"(
void knl(int n, double* a) {
    for (int i = 0; i < n; i = i + 1) {
        a[i] = exp(a[i]) + exp(a[i] * 2.0) + exp(a[i] * 3.0)
             + exp(a[i] * 4.0) + exp(a[i] * 5.0);
    }
}
)");
    FpgaModel fpga(arria10());
    auto result = dse::unroll_until_overmap(fpga, *mod->find_function("knl"),
                                            types, 1 << 12);
    ASSERT_TRUE(result.synthesizable());
    EXPECT_GE(result.unroll, 2);
    // Trace is a doubling sequence ending in the first overmap (or the
    // max_unroll cap).
    for (std::size_t i = 1; i < result.trace.size(); ++i) {
        EXPECT_EQ(result.trace[i].unroll, 2 * result.trace[i - 1].unroll);
        EXPECT_GE(result.trace[i].utilisation,
                  result.trace[i - 1].utilisation);
    }
    if (result.trace.back().overmapped) {
        EXPECT_EQ(result.unroll, result.trace.back().unroll / 2);
    }
    EXPECT_LE(result.report.utilisation(), fpga.spec().overmap_threshold);
}

TEST(Dse, UnrollRespectsMaxBound) {
    auto [mod, types] = parse_and_check(R"(
void knl(int n, double* a) {
    for (int i = 0; i < n; i = i + 1) {
        a[i] = a[i] + 1.0;
    }
}
)");
    FpgaModel fpga(stratix10());
    auto result = dse::unroll_until_overmap(fpga, *mod->find_function("knl"),
                                            types, 8);
    EXPECT_LE(result.unroll, 8);
}

TEST(Dse, BlocksizeSweepsPowersOfTwo) {
    GpuModel gpu(rtx2080ti());
    KernelShape shape;
    shape.flops = 1e11;
    shape.parallel_iters = 1e7;
    shape.double_precision = false;
    shape.regs_per_thread = 64;
    auto result = dse::blocksize_dse(gpu, shape);
    ASSERT_EQ(result.trace.size(), 6u); // 32..1024
    EXPECT_GE(result.block_size, 32);
    EXPECT_LE(result.block_size, 1024);
    // The chosen point is no slower than any traced point.
    for (const auto& step : result.trace) {
        EXPECT_LE(result.seconds, step.seconds * (1.0 + 1e-9));
    }
}

TEST(Dse, BlocksizeAvoidsUnlaunchableConfigs) {
    GpuModel gpu(rtx2080ti());
    KernelShape shape;
    shape.flops = 1e10;
    shape.parallel_iters = 1e7;
    shape.regs_per_thread = 255; // big blocks cannot launch
    shape.double_precision = true;
    auto result = dse::blocksize_dse(gpu, shape);
    EXPECT_LT(result.seconds, 1e20);
    EXPECT_LE(result.block_size, 256);
}

TEST(Dse, OmpThreadsPicksAllCoresForParallelWork) {
    CpuModel cpu(epyc7543());
    KernelShape shape;
    shape.flops = 1e12;
    shape.footprint_bytes = 1e6;
    shape.parallel_iters = 1e8;
    auto result = dse::omp_threads_dse(cpu, shape);
    EXPECT_EQ(result.threads, cpu.spec().cores);
    EXPECT_FALSE(result.trace.empty());
}

TEST(Dse, OmpThreadsStopsAtConcurrencyLimit) {
    CpuModel cpu(epyc7543());
    KernelShape shape;
    shape.flops = 1e12;
    shape.footprint_bytes = 1e6;
    shape.parallel_iters = 2.0; // only two iterations to share
    auto result = dse::omp_threads_dse(cpu, shape);
    EXPECT_LE(result.threads, 4);
}

// ------------------------------------------------------------- estimator ---

TEST(Estimator, TransferEstimateUsesBestLink) {
    KernelShape shape;
    shape.bytes_in = 1e9;
    shape.bytes_out = 1e9;
    const double t = perf::transfer_seconds_estimate(shape);
    const double best_bw =
        std::max({gtx1080ti().pcie_pinned_bw_gbs,
                  rtx2080ti().pcie_pinned_bw_gbs, stratix10().usm_bw_gbs}) *
        1e9;
    EXPECT_NEAR(t, 2e9 / best_bw, 1e-6);
}

TEST(Estimator, CpuReferenceMatchesModel) {
    KernelShape shape;
    shape.flops = 5.6e9;
    shape.footprint_bytes = 1.0;
    EXPECT_NEAR(perf::cpu_reference_seconds(shape), 1.0, 1e-9);
}

} // namespace
} // namespace psaflow
