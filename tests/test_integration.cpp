// End-to-end integration tests: the paper's evaluation claims, asserted.
// Each test runs the complete PSA-flow (parse -> hotspot -> analyses ->
// branch points -> transforms -> DSE -> emission -> performance estimate)
// on the real benchmark applications.
#include <gtest/gtest.h>

#include "core/psaflow.hpp"
#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "support/string_util.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using codegen::TargetKind;
using platform::DeviceId;

flow::FlowResult informed(const apps::Application& app) {
    RunOptions options;
    options.mode = flow::Mode::Informed;
    return compile(app, options);
}

flow::FlowResult uninformed(const apps::Application& app) {
    RunOptions options;
    options.mode = flow::Mode::Uninformed;
    return compile(app, options);
}

// ----------------------------------------------------- informed selection --

TEST(InformedSelection, NBodyGoesGpu) {
    auto result = informed(apps::nbody());
    ASSERT_FALSE(result.designs.empty());
    for (const auto& d : result.designs)
        EXPECT_EQ(d.spec.target, TargetKind::CpuGpu);
}

TEST(InformedSelection, RushLarsenGoesGpu) {
    auto result = informed(apps::rush_larsen());
    ASSERT_FALSE(result.designs.empty());
    for (const auto& d : result.designs)
        EXPECT_EQ(d.spec.target, TargetKind::CpuGpu);
}

TEST(InformedSelection, BezierGoesGpu) {
    auto result = informed(apps::bezier());
    ASSERT_FALSE(result.designs.empty());
    for (const auto& d : result.designs)
        EXPECT_EQ(d.spec.target, TargetKind::CpuGpu);
}

TEST(InformedSelection, AdPredictorGoesFpga) {
    auto result = informed(apps::adpredictor());
    ASSERT_FALSE(result.designs.empty());
    for (const auto& d : result.designs)
        EXPECT_EQ(d.spec.target, TargetKind::CpuFpga);
}

TEST(InformedSelection, KMeansGoesCpu) {
    auto result = informed(apps::kmeans());
    ASSERT_EQ(result.designs.size(), 1u);
    EXPECT_EQ(result.designs[0].spec.target, TargetKind::CpuOpenMp);
}

TEST(InformedSelection, MatchesBestOfAllDesignsForEveryApp) {
    // The paper's headline: "the informed PSA-flow selects the best target
    // for all of the five benchmarks".
    for (const apps::Application* app : apps::all_applications()) {
        auto one = informed(*app);
        auto all = uninformed(*app);
        const auto* chosen = one.best();
        const auto* oracle = all.best();
        ASSERT_NE(chosen, nullptr) << app->name;
        ASSERT_NE(oracle, nullptr) << app->name;
        EXPECT_EQ(chosen->spec.target, oracle->spec.target) << app->name;
        EXPECT_NEAR(chosen->speedup, oracle->speedup,
                    0.02 * oracle->speedup)
            << app->name;
    }
}

// ----------------------------------------------------------- Fig. 5 shape --

TEST(Fig5Shape, OmpSpeedupsNearCoreCount) {
    // Paper: "speedups ranging from 28-30x ... close to the number of
    // cores (32), as expected".
    for (const apps::Application* app : apps::all_applications()) {
        auto all = uninformed(*app);
        const auto* omp = all.find(TargetKind::CpuOpenMp,
                                   DeviceId::Epyc7543);
        ASSERT_NE(omp, nullptr) << app->name;
        EXPECT_GT(omp->speedup, 25.0) << app->name;
        EXPECT_LT(omp->speedup, 32.0) << app->name;
        EXPECT_EQ(omp->spec.omp_threads, 32) << app->name;
    }
}

TEST(Fig5Shape, RtxBeatsGtxOnEveryBenchmark) {
    for (const apps::Application* app : apps::all_applications()) {
        auto all = uninformed(*app);
        const auto* gtx = all.find(TargetKind::CpuGpu, DeviceId::Gtx1080Ti);
        const auto* rtx = all.find(TargetKind::CpuGpu, DeviceId::Rtx2080Ti);
        ASSERT_NE(gtx, nullptr) << app->name;
        ASSERT_NE(rtx, nullptr) << app->name;
        EXPECT_GE(rtx->speedup, gtx->speedup * 0.99) << app->name;
    }
}

TEST(Fig5Shape, StratixBeatsArriaWhereSynthesizable) {
    for (const apps::Application* app : apps::all_applications()) {
        auto all = uninformed(*app);
        const auto* a10 = all.find(TargetKind::CpuFpga, DeviceId::Arria10);
        const auto* s10 = all.find(TargetKind::CpuFpga, DeviceId::Stratix10);
        ASSERT_NE(a10, nullptr) << app->name;
        ASSERT_NE(s10, nullptr) << app->name;
        if (a10->synthesizable && s10->synthesizable)
            EXPECT_GT(s10->speedup, a10->speedup) << app->name;
    }
}

TEST(Fig5Shape, NBodyGpuRatioMatchesPaper) {
    // Paper: RTX 2080 Ti more than 2x the GTX 1080 Ti on N-Body
    // (751x vs 337x): both fully saturated.
    auto all = uninformed(apps::nbody());
    const auto* gtx = all.find(TargetKind::CpuGpu, DeviceId::Gtx1080Ti);
    const auto* rtx = all.find(TargetKind::CpuGpu, DeviceId::Rtx2080Ti);
    EXPECT_GT(rtx->speedup / gtx->speedup, 1.9);
    EXPECT_GT(rtx->speedup, 400.0);
    EXPECT_GT(gtx->speedup, 200.0);
}

TEST(Fig5Shape, RushLarsenRegisterSaturationStory) {
    // Paper: 255 registers/thread saturate the GTX 1080 Ti but not the
    // RTX 2080 Ti (98x vs 63x, a 1.56x gap).
    auto all = uninformed(apps::rush_larsen());
    const auto* gtx = all.find(TargetKind::CpuGpu, DeviceId::Gtx1080Ti);
    const auto* rtx = all.find(TargetKind::CpuGpu, DeviceId::Rtx2080Ti);
    EXPECT_EQ(rtx->shape.regs_per_thread, 255);
    const double ratio = rtx->speedup / gtx->speedup;
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 1.9);
}

TEST(Fig5Shape, BezierGpusNearlyEqual) {
    // Paper: "neither GPU is fully saturated, the difference in
    // performance is less substantial (67x vs 63x)".
    auto all = uninformed(apps::bezier());
    const auto* gtx = all.find(TargetKind::CpuGpu, DeviceId::Gtx1080Ti);
    const auto* rtx = all.find(TargetKind::CpuGpu, DeviceId::Rtx2080Ti);
    EXPECT_LT(rtx->speedup / gtx->speedup, 1.25);
}

TEST(Fig5Shape, RushLarsenFpgaDesignsOvermap) {
    // Paper: "the resulting designs are sizeable and exceed the capacity
    // of our current FPGA devices".
    auto all = uninformed(apps::rush_larsen());
    const auto* a10 = all.find(TargetKind::CpuFpga, DeviceId::Arria10);
    const auto* s10 = all.find(TargetKind::CpuFpga, DeviceId::Stratix10);
    ASSERT_NE(a10, nullptr);
    ASSERT_NE(s10, nullptr);
    EXPECT_FALSE(a10->synthesizable);
    EXPECT_FALSE(s10->synthesizable);
    // The emitted sources still exist and carry the warning.
    EXPECT_NE(a10->source.find("WARNING: design overmaps"),
              std::string::npos);
}

TEST(Fig5Shape, NBodyFpgaBarelyBeatsCpu) {
    // Paper: 1.1x / 1.4x — the O(n^2) rescan of positions is DDR-bound.
    auto all = uninformed(apps::nbody());
    const auto* a10 = all.find(TargetKind::CpuFpga, DeviceId::Arria10);
    const auto* s10 = all.find(TargetKind::CpuFpga, DeviceId::Stratix10);
    EXPECT_GT(a10->speedup, 0.5);
    EXPECT_LT(a10->speedup, 5.0);
    EXPECT_GT(s10->speedup, 1.0);
    EXPECT_LT(s10->speedup, 8.0);
}

TEST(Fig5Shape, AdPredictorStratixIsOverallBest) {
    // Paper: the Stratix10 CPU+FPGA design achieves the best performance
    // across all targets (32x), with II=1 full unrolling of the inner
    // feature loop.
    auto all = uninformed(apps::adpredictor());
    const auto* s10 = all.find(TargetKind::CpuFpga, DeviceId::Stratix10);
    ASSERT_NE(s10, nullptr);
    EXPECT_EQ(all.best(), s10);
    EXPECT_TRUE(s10->spec.zero_copy);
    EXPECT_GE(s10->spec.unroll, 2);
}

// --------------------------------------------------------- Table I shape ---

TEST(Table1Shape, LocOrderingPerApplication) {
    // OMP adds the least code; the oneAPI S10 (USM) variant adds more than
    // the A10 (buffer) variant.
    for (const apps::Application* app : apps::all_applications()) {
        auto all = uninformed(*app);
        const auto* omp = all.find(TargetKind::CpuOpenMp,
                                   DeviceId::Epyc7543);
        const auto* hip = all.find(TargetKind::CpuGpu, DeviceId::Rtx2080Ti);
        const auto* a10 = all.find(TargetKind::CpuFpga, DeviceId::Arria10);
        const auto* s10 = all.find(TargetKind::CpuFpga,
                                   DeviceId::Stratix10);
        ASSERT_NE(omp, nullptr);
        ASSERT_NE(hip, nullptr);
        EXPECT_LT(omp->loc_delta, hip->loc_delta) << app->name;
        if (a10 != nullptr && s10 != nullptr) {
            EXPECT_LT(omp->loc_delta, a10->loc_delta) << app->name;
            EXPECT_GT(s10->loc_delta, a10->loc_delta) << app->name;
        }
    }
}

TEST(Table1Shape, HipDesignsIdenticalAcrossGpus) {
    // Paper Table I reports one HIP column per GPU with identical deltas:
    // blocksize is the only difference and it is one line either way.
    auto all = uninformed(apps::nbody());
    const auto* gtx = all.find(TargetKind::CpuGpu, DeviceId::Gtx1080Ti);
    const auto* rtx = all.find(TargetKind::CpuGpu, DeviceId::Rtx2080Ti);
    EXPECT_NEAR(gtx->loc_delta, rtx->loc_delta, 0.02);
}

// ---------------------------------------------------------- Fig. 6 shape ---

TEST(Fig6Shape, CostCrossoversExist) {
    // AdPredictor: FPGA faster => a price ratio above t_gpu/t_fpga > 1
    // flips the decision to the GPU. Bezier: GPU faster => crossover below 1.
    auto adp = uninformed(apps::adpredictor());
    const auto* adp_fpga = adp.find(TargetKind::CpuFpga,
                                    DeviceId::Stratix10);
    const auto* adp_gpu = adp.find(TargetKind::CpuGpu, DeviceId::Rtx2080Ti);
    const double adp_crossover =
        adp_gpu->hotspot_seconds / adp_fpga->hotspot_seconds;
    EXPECT_GT(adp_crossover, 1.0);

    auto bez = uninformed(apps::bezier());
    const auto* bez_fpga = bez.find(TargetKind::CpuFpga,
                                    DeviceId::Stratix10);
    const auto* bez_gpu = bez.find(TargetKind::CpuGpu, DeviceId::Rtx2080Ti);
    const double bez_crossover =
        bez_gpu->hotspot_seconds / bez_fpga->hotspot_seconds;
    EXPECT_LT(bez_crossover, 1.0);
}

// ------------------------------------------------------- design artefacts --

TEST(Artifacts, EmittedDesignsContainDseDecisions) {
    auto all = uninformed(apps::nbody());
    const auto* rtx = all.find(TargetKind::CpuGpu, DeviceId::Rtx2080Ti);
    ASSERT_NE(rtx, nullptr);
    EXPECT_NE(rtx->source.find("const int block_size = " +
                               std::to_string(rtx->spec.block_size)),
              std::string::npos);
    // The N-Body GPU design stages the broadcast position arrays.
    EXPECT_FALSE(rtx->spec.shared_arrays.empty());
    EXPECT_NE(rtx->source.find("__shared__"), std::string::npos);

    const auto* s10 = all.find(TargetKind::CpuFpga, DeviceId::Stratix10);
    ASSERT_NE(s10, nullptr);
    EXPECT_NE(s10->source.find("#pragma unroll " +
                               std::to_string(s10->spec.unroll)),
              std::string::npos);
    EXPECT_NE(s10->source.find("malloc_host"), std::string::npos);
}

TEST(Artifacts, KMeansArrayAccumulationRemoved) {
    // The Remove Array += Dependency task does not fire on the K-Means
    // assignment hotspot (no invariant-indexed accumulation), but the OMP
    // design still parallelises it and compiles the pragma in.
    auto one = informed(apps::kmeans());
    ASSERT_EQ(one.designs.size(), 1u);
    EXPECT_NE(one.designs[0].source.find("#pragma omp parallel for"),
              std::string::npos);
}

TEST(Artifacts, LogsTellTheWholeStory) {
    auto one = informed(apps::adpredictor());
    ASSERT_FALSE(one.designs.empty());
    const auto& log = one.designs[0].log;
    auto contains = [&](const char* needle) {
        for (const auto& line : log) {
            if (line.find(needle) != std::string::npos) return true;
        }
        return false;
    };
    EXPECT_TRUE(contains("hotspot"));
    EXPECT_TRUE(contains("arithmetic intensity"));
    EXPECT_TRUE(contains("PSA (A)"));
    EXPECT_TRUE(contains("Unroll") || contains("unroll"));
}

TEST(Artifacts, EmittedOmpDesignIsExecutable) {
    // The OpenMP design is HLC plus pragmas: strip the #include lines and
    // it must re-parse, type-check and — run on the real workload — produce
    // exactly the reference results. The strongest possible statement that
    // the generated design is *valid code*, not just plausible text.
    for (const apps::Application* app : apps::all_applications()) {
        auto all = uninformed(*app);
        const auto* omp = all.find(TargetKind::CpuOpenMp,
                                   DeviceId::Epyc7543);
        ASSERT_NE(omp, nullptr) << app->name;

        std::string stripped;
        for (const auto& line : split(omp->source, '\n')) {
            if (starts_with(trim(line), "#include")) continue;
            stripped += line;
            stripped += '\n';
        }

        auto design_mod = frontend::parse_module(stripped, app->name);
        auto design_types = sema::check(*design_mod);
        auto reference_mod =
            frontend::parse_module(app->source, app->name);
        auto reference_types = sema::check(*reference_mod);

        auto run = [&](const ast::Module& mod, const sema::TypeInfo& types) {
            auto args = app->workload.make_args(1.0);
            interp::Interpreter in(mod, types);
            in.call(app->workload.entry, args);
            std::vector<std::vector<double>> out;
            for (const auto& arg : args) {
                if (const auto* buf =
                        std::get_if<interp::BufferPtr>(&arg))
                    out.push_back((*buf)->raw());
            }
            return out;
        };
        EXPECT_EQ(run(*design_mod, design_types),
                  run(*reference_mod, reference_types))
            << app->name;
    }
}

} // namespace
} // namespace psaflow

