#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::frontend;
using namespace psaflow::ast;
using testing::parse;

// ---------------------------------------------------------------- lexer ----

TEST(Lexer, TokenisesOperators) {
    auto toks = lex("+ - * / % < <= > >= == != && || ! = += -= *= /= ++ --");
    std::vector<TokKind> kinds;
    for (const auto& t : toks) kinds.push_back(t.kind);
    const std::vector<TokKind> want = {
        TokKind::Plus,       TokKind::Minus,       TokKind::Star,
        TokKind::Slash,      TokKind::Percent,     TokKind::Lt,
        TokKind::Le,         TokKind::Gt,          TokKind::Ge,
        TokKind::EqEq,       TokKind::NotEq,       TokKind::AndAnd,
        TokKind::OrOr,       TokKind::Not,         TokKind::Assign,
        TokKind::PlusAssign, TokKind::MinusAssign, TokKind::StarAssign,
        TokKind::SlashAssign, TokKind::PlusPlus,   TokKind::MinusMinus,
        TokKind::End};
    EXPECT_EQ(kinds, want);
}

TEST(Lexer, IntAndFloatLiterals) {
    auto toks = lex("42 3.5 1e3 2.5f 7f");
    EXPECT_EQ(toks[0].kind, TokKind::IntLiteral);
    EXPECT_EQ(toks[0].int_value, 42);
    EXPECT_EQ(toks[1].kind, TokKind::FloatLiteral);
    EXPECT_DOUBLE_EQ(toks[1].float_value, 3.5);
    EXPECT_FALSE(toks[1].float_single);
    EXPECT_EQ(toks[2].kind, TokKind::FloatLiteral);
    EXPECT_DOUBLE_EQ(toks[2].float_value, 1000.0);
    EXPECT_EQ(toks[3].kind, TokKind::FloatLiteral);
    EXPECT_TRUE(toks[3].float_single);
    EXPECT_EQ(toks[4].kind, TokKind::FloatLiteral);
    EXPECT_TRUE(toks[4].float_single);
    EXPECT_DOUBLE_EQ(toks[4].float_value, 7.0);
}

TEST(Lexer, KeywordsVsIdentifiers) {
    auto toks = lex("for forty int integer");
    EXPECT_EQ(toks[0].kind, TokKind::KwFor);
    EXPECT_EQ(toks[1].kind, TokKind::Identifier);
    EXPECT_EQ(toks[1].text, "forty");
    EXPECT_EQ(toks[2].kind, TokKind::KwInt);
    EXPECT_EQ(toks[3].kind, TokKind::Identifier);
}

TEST(Lexer, CommentsAreSkipped) {
    auto toks = lex("a // line comment\nb /* block\ncomment */ c");
    ASSERT_EQ(toks.size(), 4u); // a b c eof
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, PragmaCapturesLine) {
    auto toks = lex("#pragma omp parallel for\nx");
    EXPECT_EQ(toks[0].kind, TokKind::Pragma);
    EXPECT_EQ(toks[0].text, "omp parallel for");
    EXPECT_EQ(toks[1].text, "x");
}

TEST(Lexer, TracksLineNumbers) {
    auto toks = lex("a\nb\n  c");
    EXPECT_EQ(toks[0].loc.line, 1u);
    EXPECT_EQ(toks[1].loc.line, 2u);
    EXPECT_EQ(toks[2].loc.line, 3u);
    EXPECT_EQ(toks[2].loc.col, 3u);
}

TEST(Lexer, RejectsUnknownCharacters) {
    EXPECT_THROW(lex("a $ b"), ParseError);
    EXPECT_THROW(lex("a & b"), ParseError);
    EXPECT_THROW(lex("/* unterminated"), ParseError);
}

TEST(Lexer, RejectsNonPragmaHash) {
    EXPECT_THROW(lex("#include <x>"), ParseError);
}

// --------------------------------------------------------------- parser ----

TEST(Parser, ParsesFunctionSignature) {
    auto mod = parse("void f(int n, double* a, float b) { return; }");
    ASSERT_EQ(mod->functions.size(), 1u);
    const Function& f = *mod->functions[0];
    EXPECT_EQ(f.name, "f");
    EXPECT_EQ(f.ret, Type::Void);
    ASSERT_EQ(f.params.size(), 3u);
    EXPECT_EQ(f.params[0]->type, (ValueType{Type::Int, false}));
    EXPECT_EQ(f.params[1]->type, (ValueType{Type::Double, true}));
    EXPECT_EQ(f.params[2]->type, (ValueType{Type::Float, false}));
}

TEST(Parser, CanonicalisesForLoopVariants) {
    const char* variants[] = {
        "void f(int n) { for (int i = 0; i < n; i++) { } }",
        "void f(int n) { for (int i = 0; i < n; ++i) { } }",
        "void f(int n) { for (int i = 0; i < n; i += 1) { } }",
        "void f(int n) { for (int i = 0; i < n; i = i + 1) { } }",
    };
    for (const char* src : variants) {
        auto mod = parse(src);
        auto* loop =
            dyn_cast<For>(mod->functions[0]->body->stmts[0].get());
        ASSERT_NE(loop, nullptr) << src;
        EXPECT_EQ(loop->var, "i");
        auto* step = dyn_cast<IntLit>(loop->step.get());
        ASSERT_NE(step, nullptr);
        EXPECT_EQ(step->value, 1);
    }
}

TEST(Parser, NormalisesLessEqual) {
    auto mod = parse("void f(int n) { for (int i = 0; i <= n; i++) { } }");
    auto* loop = dyn_cast<For>(mod->functions[0]->body->stmts[0].get());
    ASSERT_NE(loop, nullptr);
    // limit becomes n + 1
    auto* limit = dyn_cast<Binary>(loop->limit.get());
    ASSERT_NE(limit, nullptr);
    EXPECT_EQ(limit->op, BinaryOp::Add);
}

TEST(Parser, RejectsMalformedForLoops) {
    EXPECT_THROW(parse("void f(int n) { for (int i = 0; i > n; i++) { } }"),
                 ParseError);
    EXPECT_THROW(parse("void f(int n) { for (int i = 0; j < n; i++) { } }"),
                 ParseError);
    EXPECT_THROW(parse("void f(int n) { for (int i = 0; i < n; j++) { } }"),
                 ParseError);
    EXPECT_THROW(parse("void f(int n) { for (i = 0; i < n; i++) { } }"),
                 ParseError);
}

TEST(Parser, PragmasAttachToNextStatement) {
    auto mod = parse("void f(int n) {\n"
                     "#pragma omp parallel for\n"
                     "#pragma unroll 4\n"
                     "    for (int i = 0; i < n; i++) { }\n"
                     "}");
    auto* loop = dyn_cast<For>(mod->functions[0]->body->stmts[0].get());
    ASSERT_NE(loop, nullptr);
    ASSERT_EQ(loop->pragmas.size(), 2u);
    EXPECT_EQ(loop->pragmas[0], "omp parallel for");
    EXPECT_EQ(loop->pragmas[1], "unroll 4");
}

TEST(Parser, PrecedenceMulBeforeAdd) {
    auto e = frontend::parse_expression("a + b * c");
    auto* add = dyn_cast<Binary>(e.get());
    ASSERT_NE(add, nullptr);
    EXPECT_EQ(add->op, BinaryOp::Add);
    auto* mul = dyn_cast<Binary>(add->rhs.get());
    ASSERT_NE(mul, nullptr);
    EXPECT_EQ(mul->op, BinaryOp::Mul);
}

TEST(Parser, LeftAssociativeSubtraction) {
    auto e = frontend::parse_expression("a - b - c");
    // Must parse as (a - b) - c.
    auto* outer = dyn_cast<Binary>(e.get());
    ASSERT_NE(outer, nullptr);
    auto* inner = dyn_cast<Binary>(outer->lhs.get());
    ASSERT_NE(inner, nullptr);
    auto* rhs = dyn_cast<Ident>(outer->rhs.get());
    ASSERT_NE(rhs, nullptr);
    EXPECT_EQ(rhs->name, "c");
}

TEST(Parser, ComparisonAndLogicalPrecedence) {
    auto e = frontend::parse_expression("a < b && c < d || e < f");
    auto* orr = dyn_cast<Binary>(e.get());
    ASSERT_NE(orr, nullptr);
    EXPECT_EQ(orr->op, BinaryOp::Or);
    auto* andd = dyn_cast<Binary>(orr->lhs.get());
    ASSERT_NE(andd, nullptr);
    EXPECT_EQ(andd->op, BinaryOp::And);
}

TEST(Parser, ElseIfChains) {
    auto mod = parse("void f(int n) {\n"
                     "  if (n < 0) { n = 0; } else if (n < 10) { n = 1; }\n"
                     "  else { n = 2; }\n"
                     "}");
    auto* outer = dyn_cast<If>(mod->functions[0]->body->stmts[0].get());
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(outer->else_body, nullptr);
    auto* nested = dyn_cast<If>(outer->else_body->stmts[0].get());
    ASSERT_NE(nested, nullptr);
    ASSERT_NE(nested->else_body, nullptr);
}

TEST(Parser, SingleStatementBodiesGetBlocks) {
    auto mod = parse("void f(int n) { if (n < 0) n = 0; }");
    auto* iff = dyn_cast<If>(mod->functions[0]->body->stmts[0].get());
    ASSERT_NE(iff, nullptr);
    EXPECT_EQ(iff->then_body->stmts.size(), 1u);
}

TEST(Parser, ArrayDeclAndSubscript) {
    auto mod = parse("void f(double* a) { double t[16]; t[0] = a[3]; }");
    auto* decl = dyn_cast<VarDecl>(mod->functions[0]->body->stmts[0].get());
    ASSERT_NE(decl, nullptr);
    EXPECT_TRUE(decl->is_array);
    auto* assign = dyn_cast<Assign>(mod->functions[0]->body->stmts[1].get());
    ASSERT_NE(assign, nullptr);
    EXPECT_EQ(assign->target->kind(), NodeKind::Index);
}

TEST(Parser, CompoundAssignments) {
    auto mod = parse("void f(double* a, int i) {"
                     " a[i] += 1.0; a[i] -= 2.0; a[i] *= 3.0; a[i] /= 4.0; }");
    const auto& stmts = mod->functions[0]->body->stmts;
    EXPECT_EQ(dyn_cast<Assign>(stmts[0].get())->op, AssignOp::Add);
    EXPECT_EQ(dyn_cast<Assign>(stmts[1].get())->op, AssignOp::Sub);
    EXPECT_EQ(dyn_cast<Assign>(stmts[2].get())->op, AssignOp::Mul);
    EXPECT_EQ(dyn_cast<Assign>(stmts[3].get())->op, AssignOp::Div);
}

TEST(Parser, RejectsAssignToExpression) {
    EXPECT_THROW(parse("void f(int a) { a + 1 = 2; }"), ParseError);
}

TEST(Parser, RejectsGarbageAtFunctionLevel) {
    EXPECT_THROW(parse("banana"), ParseError);
    EXPECT_THROW(parse("void f( { }"), ParseError);
    EXPECT_THROW(parse("void f() { x = ; }"), ParseError);
}

TEST(Parser, EmptyFunctionBodyIsFine) {
    auto mod = parse("void f() { }");
    EXPECT_TRUE(mod->functions[0]->body->stmts.empty());
}

TEST(Parser, WhileLoop) {
    auto mod = parse("int f(int n) { int s = 0; while (s < n) { s = s + 1; } "
                     "return s; }");
    auto* w = dyn_cast<While>(mod->functions[0]->body->stmts[1].get());
    ASSERT_NE(w, nullptr);
}

} // namespace
} // namespace psaflow
