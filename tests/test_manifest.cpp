// Flow-manifest tests: exact located diagnostics, export round-trips,
// strategy lowering, session wiring and execution identity against the
// programmatic standard flow.
#include <gtest/gtest.h>

#include <fstream>

#include "flow/learned_strategy.hpp"
#include "flow/manifest.hpp"
#include "flow/session.hpp"
#include "flow/standard_flow.hpp"
#include "flow/strategy.hpp"
#include "flow/task_registry.hpp"
#include "frontend/parser.hpp"
#include "interp/value.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace psaflow {
namespace {

using namespace psaflow::flow;

// ------------------------------------------------------------ diagnostics ----

/// Expect parse_manifest_text(text) to throw exactly `message`.
void expect_rejected(const std::string& text, const std::string& message) {
    try {
        (void)parse_manifest_text(text);
        FAIL() << "accepted invalid manifest: " << text;
    } catch (const Error& e) {
        EXPECT_EQ(std::string(e.what()), message) << text;
    }
}

TEST(Manifest, RejectsEverySchemaViolationWithALocatedDiagnostic) {
    struct Case {
        const char* name;
        const char* text;
        const char* message;
    };
    const Case table[] = {
        {"not an object", R"([1,2])",
         "flow manifest: $: manifest must be a JSON object"},
        {"missing version", R"({"prologue":[]})",
         "flow manifest: $: missing required \"psaflow_manifest\" version "
         "field"},
        {"unsupported version", R"({"psaflow_manifest":2})",
         "flow manifest: $.psaflow_manifest: unsupported manifest version "
         "2 (this build supports 1)"},
        {"unknown top-level field",
         R"({"psaflow_manifest":1,"frobnicate":true})",
         "flow manifest: $: unknown field \"frobnicate\""},
        {"unknown task id",
         R"({"psaflow_manifest":1,"prologue":["no-such-task"]})",
         "flow manifest: $.prologue[0]: unknown task id 'no-such-task'"},
        {"non-string task id",
         R"({"psaflow_manifest":1,"prologue":[7]})",
         "flow manifest: $.prologue[0]: task id must be a string"},
        {"unknown task in a nested path",
         R"({"psaflow_manifest":1,"branch":{"name":"A","paths":[
             {"name":"cpu","tasks":["bogus-task"]}]}})",
         "flow manifest: $.branch.paths[0].tasks[0]: unknown task id "
         "'bogus-task'"},
        {"unknown strategy",
         R"({"psaflow_manifest":1,"branch":{"name":"A","strategy":"greedy",
             "paths":[{"name":"cpu"}]}})",
         "flow manifest: $.branch.strategy: unknown strategy 'greedy' "
         "(known: fixed-path, informed, learned, select-all)"},
        {"fixed-path without paths",
         R"({"psaflow_manifest":1,"branch":{"name":"A",
             "strategy":{"name":"fixed-path"},
             "paths":[{"name":"cpu"}]}})",
         "flow manifest: $.branch.strategy.paths: fixed-path needs a "
         "\"paths\" array naming at least one path"},
        {"fixed-path naming an unknown path",
         R"({"psaflow_manifest":1,"branch":{"name":"A",
             "strategy":{"name":"fixed-path","paths":["gpu"]},
             "paths":[{"name":"cpu"}]}})",
         "flow manifest: $.branch.strategy.paths[0]: fixed-path names "
         "unknown path 'gpu' of branch 'A'"},
        {"learned with a bad k",
         R"({"psaflow_manifest":1,"branch":{"name":"A",
             "strategy":{"name":"learned","k":0},
             "paths":[{"name":"cpu"}]}})",
         "flow manifest: $.branch.strategy.k: must be an integer >= 1"},
        {"learned with an unknown training app",
         R"({"psaflow_manifest":1,"branch":{"name":"A",
             "strategy":{"name":"learned","train_apps":["voyager"]},
             "paths":[{"name":"cpu"}]}})",
         "flow manifest: $.branch.strategy.train_apps[0]: unknown "
         "application 'voyager'"},
        {"branch without a name",
         R"({"psaflow_manifest":1,"branch":{"paths":[{"name":"cpu"}]}})",
         "flow manifest: $.branch: missing required \"name\""},
        {"branch without paths",
         R"({"psaflow_manifest":1,"branch":{"name":"A"}})",
         "flow manifest: $.branch.paths: a branch needs at least one path"},
        {"duplicate path name",
         R"({"psaflow_manifest":1,"branch":{"name":"A",
             "paths":[{"name":"cpu"},{"name":"cpu"}]}})",
         "flow manifest: $.branch.paths[1]: duplicate path name 'cpu'"},
        {"unknown branch reference",
         R"({"psaflow_manifest":1,"branch":"dev"})",
         "flow manifest: $.branch: unknown branch reference 'dev' (no such "
         "entry in \"branches\")"},
        {"circular branch reference",
         R"({"psaflow_manifest":1,
             "branches":{"loop":{"name":"L",
                                 "paths":[{"name":"p","branch":"loop"}]}},
             "branch":"loop"})",
         "flow manifest: $.branches.loop.paths[0].branch: circular branch "
         "reference 'loop'"},
        {"negative budget",
         R"({"psaflow_manifest":1,"budget":{"max_run_cost":-1}})",
         "flow manifest: $.budget.max_run_cost: must be a non-negative "
         "number"},
        {"budget of the wrong shape",
         R"({"psaflow_manifest":1,"budget":3})",
         "flow manifest: $.budget: must be an object with "
         "\"max_run_cost\""},
        {"non-positive threshold",
         R"({"psaflow_manifest":1,"threshold_x":0})",
         "flow manifest: $.threshold_x: must be a positive number"},
        {"fractional feedback cap",
         R"({"psaflow_manifest":1,"max_feedback_iterations":1.5})",
         "flow manifest: $.max_feedback_iterations: must be a non-negative "
         "integer"},
    };
    for (const Case& c : table) {
        SCOPED_TRACE(c.name);
        expect_rejected(c.text, c.message);
    }
}

TEST(Manifest, RejectsDuplicateNamedBranchDefinitions) {
    // json::parse keeps duplicate keys in member order, so build the
    // document programmatically to make the duplication explicit.
    json::Value def = json::Value::object();
    def.set("name", json::Value::string("D"));
    json::Value path = json::Value::object();
    path.set("name", json::Value::string("p"));
    json::Value paths = json::Value::array();
    paths.push(std::move(path));
    def.set("paths", std::move(paths));

    json::Value defs = json::Value::object();
    defs.members.emplace_back("dev", def);
    defs.members.emplace_back("dev", def);

    json::Value doc = json::Value::object();
    doc.set("psaflow_manifest", json::Value::number(1.0));
    doc.set("branches", std::move(defs));
    try {
        (void)from_manifest(doc);
        FAIL() << "accepted duplicate branch definitions";
    } catch (const Error& e) {
        EXPECT_EQ(std::string(e.what()),
                  "flow manifest: $.branches: duplicate branch name 'dev'");
    }
}

TEST(Manifest, JsonSyntaxErrorsAreWrappedAndFilesCarryTheirPath) {
    EXPECT_THROW((void)parse_manifest_text("{nope"), Error);
    try {
        (void)load_manifest("/nonexistent/manifest.json");
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(std::string(e.what()),
                  "flow manifest: cannot read '/nonexistent/manifest.json'");
    }
}

// ----------------------------------------------------------------- export ----

TEST(Manifest, StandardFlowExportRoundTripsByteStably) {
    for (const Mode mode : {Mode::Informed, Mode::Uninformed}) {
        const json::Value exported = to_manifest(standard_flow(mode));
        const ManifestFlow lowered = from_manifest(exported);
        EXPECT_EQ(json::dump(to_manifest(lowered.flow)),
                  json::dump(exported));
    }
}

TEST(Manifest, StandardFlowExportSpellsTheFig4Flow) {
    const json::Value doc = to_manifest(standard_flow(Mode::Informed));
    const json::Value* prologue = doc.find("prologue");
    ASSERT_NE(prologue, nullptr);
    ASSERT_FALSE(prologue->elements.empty());
    EXPECT_EQ(prologue->elements.front().string_value,
              "identify-hotspot-loops");

    const json::Value* branch = doc.find("branch");
    ASSERT_NE(branch, nullptr);
    EXPECT_EQ(branch->find("name")->string_value, "A (target)");
    EXPECT_EQ(branch->find("strategy")->string_value, "informed");
    EXPECT_EQ(branch->find("paths")->elements.size(), 3u);

    // Every exported task id re-resolves through the registry.
    for (const json::Value& id : prologue->elements)
        EXPECT_TRUE(TaskRegistry::global().contains(id.string_value));
}

TEST(Manifest, UnexportableStrategiesAreAnExplicitError) {
    std::vector<TrainingExample> examples(1);
    examples.front().label = "cpu";
    DesignFlow flow;
    flow.branch = std::make_shared<BranchPoint>();
    flow.branch->name = "A";
    flow.branch->strategy =
        std::make_shared<LearnedStrategy>(std::move(examples));
    flow.branch->paths.push_back(FlowPath{"cpu", {}, nullptr});
    EXPECT_THROW((void)to_manifest(flow), Error);
}

// ------------------------------------------------------------- parameters ----

TEST(Manifest, EngineParametersLowerToOptionals) {
    const ManifestFlow bare =
        parse_manifest_text(R"({"psaflow_manifest":1})");
    EXPECT_FALSE(bare.max_run_cost.has_value());
    EXPECT_FALSE(bare.threshold_x.has_value());
    EXPECT_FALSE(bare.max_feedback_iterations.has_value());
    EXPECT_TRUE(bare.name.empty());

    const ManifestFlow full = parse_manifest_text(
        R"({"psaflow_manifest":1,"name":"tuned",
            "budget":{"max_run_cost":0.001},"threshold_x":2.5,
            "max_feedback_iterations":0})");
    EXPECT_EQ(full.name, "tuned");
    ASSERT_TRUE(full.max_run_cost.has_value());
    EXPECT_DOUBLE_EQ(*full.max_run_cost, 0.001);
    ASSERT_TRUE(full.threshold_x.has_value());
    EXPECT_DOUBLE_EQ(*full.threshold_x, 2.5);
    ASSERT_TRUE(full.max_feedback_iterations.has_value());
    EXPECT_EQ(*full.max_feedback_iterations, 0);
}

TEST(Manifest, NamedBranchDefinitionsResolveAndMayBeShared) {
    const ManifestFlow lowered = parse_manifest_text(
        R"({"psaflow_manifest":1,
            "branches":{"dev":{"name":"D","paths":[{"name":"a"}]}},
            "branch":{"name":"A","paths":[
                {"name":"one","branch":"dev"},
                {"name":"two","branch":"dev"}]}})");
    ASSERT_NE(lowered.flow.branch, nullptr);
    ASSERT_EQ(lowered.flow.branch->paths.size(), 2u);
    for (const FlowPath& path : lowered.flow.branch->paths) {
        ASSERT_NE(path.next, nullptr);
        EXPECT_EQ(path.next->name, "D");
    }
}

// ---------------------------------------------------------------- session ----

TEST(Session, InlineManifestBecomesTheSessionDefaultFlow) {
    SessionOptions options;
    options.flow_manifest =
        R"({"psaflow_manifest":1,"name":"mine",
            "prologue":["identify-hotspot-loops"]})";
    FlowSession session(options);
    ASSERT_NE(session.manifest_flow(), nullptr);
    EXPECT_EQ(session.manifest_flow()->name, "mine");
    EXPECT_EQ(session.manifest_flow()->flow.prologue.size(), 1u);
}

TEST(Session, ManifestFilesLoadAndViolationsThrowEagerly) {
    const std::string path =
        testing::TempDir() + "/psaflow-test-manifest.json";
    {
        std::ofstream file(path);
        file << R"({"psaflow_manifest":1,"name":"from-file"})";
    }
    SessionOptions options;
    options.flow_manifest = path;
    FlowSession session(options);
    ASSERT_NE(session.manifest_flow(), nullptr);
    EXPECT_EQ(session.manifest_flow()->name, "from-file");

    SessionOptions bad;
    bad.flow_manifest = R"({"psaflow_manifest":1,"prologue":["nope"]})";
    EXPECT_THROW(FlowSession{bad}, Error);
    EXPECT_EQ(FlowSession().manifest_flow(), nullptr);
}

// -------------------------------------------------------------- execution ----

interp::Arg integer(long long v) { return interp::Value::of_int(v); }

// The Fig. 3 GPU profile: parallel outer loop over an inner reduction.
const char* kGpuish = R"(
void work(int n, double* a, double* out) {
    for (int i = 0; i < n; i = i + 1) {
        double acc = 0.0;
        for (int j = 0; j < n; j = j + 1) {
            acc += exp(a[j] * 0.001) * a[i];
        }
        out[i] = acc;
    }
}

void run(int n, double* a, double* out) {
    work(n, a, out);
}
)";

analysis::Workload gpuish_workload() {
    analysis::Workload w;
    w.entry = "run";
    w.eval_scale = 256.0;
    w.make_args = [](double scale) {
        const int n = static_cast<int>(32 * scale);
        auto a = std::make_shared<interp::Buffer>(
            ast::Type::Double, static_cast<std::size_t>(n), "a");
        auto out = std::make_shared<interp::Buffer>(
            ast::Type::Double, static_cast<std::size_t>(n), "out");
        for (int i = 0; i < n; ++i) a->store(i, 0.5 + 0.001 * i);
        return std::vector<interp::Arg>{integer(n), a, out};
    };
    return w;
}

FlowContext gpuish_ctx() {
    return FlowContext("manifest-test",
                       frontend::parse_module(kGpuish, "manifest-test"),
                       gpuish_workload());
}

TEST(FixedPath, SelectsNamedPathsInCanonicalBranchOrder) {
    BranchPoint branch;
    branch.name = "A";
    branch.paths.push_back(FlowPath{"cpu", {}, nullptr});
    branch.paths.push_back(FlowPath{"gpu", {}, nullptr});
    branch.paths.push_back(FlowPath{"fpga", {}, nullptr});

    FlowContext ctx = gpuish_ctx();
    const auto strategy = fixed_path_strategy({"fpga", "cpu", "cpu"});
    EXPECT_EQ(strategy->name(), "fixed-path");
    // Duplicates collapse; selection order is branch order, not spelling
    // order.
    EXPECT_EQ(strategy->select(ctx, branch),
              (std::vector<std::size_t>{0, 2}));
}

TEST(FixedPath, UnknownPathNameThrowsAtSelection) {
    BranchPoint branch;
    branch.name = "A";
    branch.paths.push_back(FlowPath{"cpu", {}, nullptr});
    FlowContext ctx = gpuish_ctx();
    const auto strategy = fixed_path_strategy({"tpu"});
    EXPECT_THROW((void)strategy->select(ctx, branch), Error);
    EXPECT_THROW((void)fixed_path_strategy({}), Error);
}

TEST(Manifest, LoweredStandardFlowRunsIdenticallyToTheProgrammaticOne) {
    const FlowResult direct =
        FlowSession().run(standard_flow(Mode::Informed), gpuish_ctx());

    const ManifestFlow lowered =
        from_manifest(to_manifest(standard_flow(Mode::Informed)));
    const FlowResult via_manifest =
        FlowSession().run(lowered.flow, gpuish_ctx());

    EXPECT_EQ(via_manifest.reference_seconds, direct.reference_seconds);
    EXPECT_EQ(via_manifest.log, direct.log);
    ASSERT_EQ(via_manifest.designs.size(), direct.designs.size());
    for (std::size_t i = 0; i < direct.designs.size(); ++i) {
        const DesignArtifact& a = direct.designs[i];
        const DesignArtifact& b = via_manifest.designs[i];
        EXPECT_EQ(b.name(), a.name());
        EXPECT_EQ(b.source, a.source);
        EXPECT_EQ(b.speedup, a.speedup);
        EXPECT_EQ(b.log, a.log);
    }
}

TEST(Manifest, FixedPathFlowRunsOnlyTheNamedFamily) {
    const ManifestFlow lowered = parse_manifest_text(
        R"json({"psaflow_manifest":1,
            "prologue":["identify-hotspot-loops","hotspot-loop-extraction",
                        "pointer-analysis","arithmetic-intensity-analysis",
                        "data-in-out-analysis","loop-dependence-analysis",
                        "loop-trip-count-analysis","remove-array-dependency"],
            "branch":{"name":"A (target)",
                      "strategy":{"name":"fixed-path","paths":["cpu"]},
                      "paths":[{"name":"cpu",
                                "tasks":["multi-thread-parallel-loops",
                                         "omp-num-threads-dse"]}]}})json");
    const FlowResult result =
        FlowSession().run(lowered.flow, gpuish_ctx());
    ASSERT_FALSE(result.designs.empty());
    for (const DesignArtifact& design : result.designs)
        EXPECT_EQ(design.spec.target, codegen::TargetKind::CpuOpenMp);
}

} // namespace
} // namespace psaflow
