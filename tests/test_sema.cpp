#include <cmath>

#include <gtest/gtest.h>

#include "sema/builtins.hpp"
#include "sema/type_check.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::ast;
using psaflow::testing::parse;
using psaflow::testing::parse_and_check;

// ------------------------------------------------------------- builtins ----

TEST(Builtins, CatalogHasPairedSpVariants) {
    for (const auto& b : sema::all_builtins()) {
        if (!b.is_single) {
            ASSERT_FALSE(b.sp_variant.empty()) << b.name;
            const auto* sp = sema::find_builtin(b.sp_variant);
            ASSERT_NE(sp, nullptr) << b.name;
            EXPECT_TRUE(sp->is_single);
            EXPECT_EQ(sp->arity, b.arity);
            EXPECT_EQ(sp->flop_cost, b.flop_cost);
        }
    }
}

TEST(Builtins, EvalMatchesLibm) {
    const auto* sqrt_info = sema::find_builtin("sqrt");
    ASSERT_NE(sqrt_info, nullptr);
    const double args[] = {9.0};
    EXPECT_DOUBLE_EQ(sema::eval_builtin(*sqrt_info, args), 3.0);

    const auto* pow_info = sema::find_builtin("pow");
    const double pargs[] = {2.0, 10.0};
    EXPECT_DOUBLE_EQ(sema::eval_builtin(*pow_info, pargs), 1024.0);
}

TEST(Builtins, SingleVariantsRoundToFloat) {
    const auto* expf_info = sema::find_builtin("expf");
    ASSERT_NE(expf_info, nullptr);
    const double args[] = {1.0};
    const double got = sema::eval_builtin(*expf_info, args);
    EXPECT_EQ(got, static_cast<double>(std::exp(1.0f)));
    EXPECT_NE(got, std::exp(1.0));
}

TEST(Builtins, DomainErrorsThrow) {
    const auto* sqrt_info = sema::find_builtin("sqrt");
    const double neg[] = {-1.0};
    EXPECT_THROW((void)sema::eval_builtin(*sqrt_info, neg), Error);
    const auto* log_info = sema::find_builtin("log");
    const double zero[] = {0.0};
    EXPECT_THROW((void)sema::eval_builtin(*log_info, zero), Error);
}

// --------------------------------------------------------------- checks ----

TEST(Sema, AcceptsWellTypedModule) {
    EXPECT_NO_THROW(parse_and_check(R"(
double norm(int n, double* a) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += a[i] * a[i];
    }
    return sqrt(s);
}
)"));
}

TEST(Sema, ExprTypesArePromoted) {
    auto [mod, types] = parse_and_check(
        "double f(int i, float x, double d) { return i + x * d; }");
    auto* ret =
        dyn_cast<Return>(mod->functions[0]->body->stmts[0].get());
    ASSERT_NE(ret, nullptr);
    EXPECT_EQ(types.type_of(*ret->value), Type::Double);
    const auto* add = dyn_cast<Binary>(ret->value.get());
    EXPECT_EQ(types.type_of(*add->rhs), Type::Double); // x * d
}

TEST(Sema, FloatTimesFloatStaysFloat) {
    auto [mod, types] =
        parse_and_check("float f(float x, float y) { return x * y; }");
    auto* ret = dyn_cast<Return>(mod->functions[0]->body->stmts[0].get());
    EXPECT_EQ(types.type_of(*ret->value), Type::Float);
}

TEST(Sema, RejectsUndeclaredName) {
    EXPECT_THROW(parse_and_check("void f() { x = 1; }"), SemaError);
}

TEST(Sema, RejectsWrongArity) {
    EXPECT_THROW(parse_and_check("double f() { return sqrt(1.0, 2.0); }"),
                 SemaError);
    EXPECT_THROW(parse_and_check("void g(int n) { }\n"
                                 "void f() { g(); }"),
                 SemaError);
}

TEST(Sema, RejectsUnknownFunction) {
    EXPECT_THROW(parse_and_check("void f() { mystery(); }"), SemaError);
}

TEST(Sema, RejectsNonIntSubscript) {
    EXPECT_THROW(parse_and_check("void f(double* a) { a[1.5] = 0.0; }"),
                 SemaError);
}

TEST(Sema, RejectsSubscriptOfScalar) {
    EXPECT_THROW(parse_and_check("void f(double x) { x[0] = 0.0; }"),
                 SemaError);
}

TEST(Sema, RejectsBareArrayUse) {
    EXPECT_THROW(parse_and_check("double f(double* a) { return a; }"),
                 SemaError);
    EXPECT_THROW(parse_and_check("void f(double* a, double* b) { a = b; }"),
                 std::exception);
}

TEST(Sema, RejectsNonBoolCondition) {
    EXPECT_THROW(parse_and_check("void f(int n) { if (n) { } }"), SemaError);
    EXPECT_THROW(parse_and_check("void f(int n) { while (n) { } }"),
                 SemaError);
}

TEST(Sema, RejectsModOnFloats) {
    EXPECT_THROW(parse_and_check("double f(double x) { return x % 2.0; }"),
                 SemaError);
}

TEST(Sema, RejectsReturnMismatch) {
    EXPECT_THROW(parse_and_check("void f() { return 1; }"), SemaError);
    EXPECT_THROW(parse_and_check("int f() { return; }"), SemaError);
}

TEST(Sema, AllowsLoopVarReuseAtSameType) {
    EXPECT_NO_THROW(parse_and_check(R"(
void f(int n, double* a) {
    for (int i = 0; i < n; i++) { a[i] = 0.0; }
    for (int i = 0; i < n; i++) { a[i] = 1.0; }
}
)"));
}

TEST(Sema, RejectsNameReuseAtDifferentType) {
    EXPECT_THROW(parse_and_check(R"(
void f(int n) {
    double x = 0.0;
    int x = 1;
}
)"),
                 SemaError);
}

TEST(Sema, RejectsDuplicateFunctions) {
    EXPECT_THROW(parse_and_check("void f() { }\nvoid f() { }"), SemaError);
}

TEST(Sema, RejectsFunctionShadowingBuiltin) {
    EXPECT_THROW(parse_and_check("double sqrt(double x) { return x; }"),
                 SemaError);
}

TEST(Sema, ArrayArgumentsMustMatchElementType) {
    EXPECT_THROW(parse_and_check(R"(
void g(float* a) { }
void f(double* a) { g(a); }
)"),
                 SemaError);
}

TEST(Sema, ArrayArgumentMustBeName) {
    EXPECT_THROW(parse_and_check(R"(
void g(double* a) { }
void f(double x) { g(x + 1.0); }
)"),
                 SemaError);
}

TEST(Sema, VariablesListsParamsFirst) {
    auto [mod, types] = parse_and_check(
        "void f(int n, double* a) { double t = 0.0; for (int i = 0; i < n; "
        "i++) { t += a[i]; } }");
    const auto& vars = types.variables(*mod->functions[0]);
    ASSERT_GE(vars.size(), 4u);
    EXPECT_EQ(vars[0].name, "n");
    EXPECT_TRUE(vars[0].is_param);
    EXPECT_EQ(vars[1].name, "a");
    EXPECT_TRUE(vars[1].type.is_pointer);
    EXPECT_EQ(vars[2].name, "t");
    EXPECT_FALSE(vars[2].is_param);
}

TEST(Sema, LocalArraysAreFlagged) {
    auto [mod, types] =
        parse_and_check("void f() { double buf[32]; buf[0] = 1.0; }");
    const auto& vars = types.variables(*mod->functions[0]);
    ASSERT_EQ(vars.size(), 1u);
    EXPECT_TRUE(vars[0].is_array);
    EXPECT_TRUE(vars[0].type.is_pointer);
}

TEST(Sema, StaleTypeInfoDetected) {
    auto [mod, types] = parse_and_check("void f(int n) { n = n + 1; }");
    auto other = parse("void g(int m) { m = m + 2; }");
    auto* assign = dyn_cast<Assign>(other->functions[0]->body->stmts[0].get());
    EXPECT_THROW((void)types.type_of(*assign->value), Error);
}

} // namespace
} // namespace psaflow
