// Shared helpers for the psaflow test suite.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "ast/nodes.hpp"
#include "ast/printer.hpp"
#include "frontend/parser.hpp"
#include "sema/type_check.hpp"

namespace psaflow::testing {

/// Parse, returning the module (throws on error).
inline ast::ModulePtr parse(std::string_view src,
                            std::string name = "test") {
    return frontend::parse_module(src, std::move(name));
}

/// Parse and type-check.
struct Checked {
    ast::ModulePtr module;
    sema::TypeInfo types;
};

inline Checked parse_and_check(std::string_view src,
                               std::string name = "test") {
    auto mod = frontend::parse_module(src, std::move(name));
    auto types = sema::check(*mod);
    return Checked{std::move(mod), std::move(types)};
}

/// Normalised source text: parse then print.
inline std::string normalise(std::string_view src) {
    return ast::to_source(*frontend::parse_module(src));
}

} // namespace psaflow::testing
