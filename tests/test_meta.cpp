#include <gtest/gtest.h>

#include "ast/builder.hpp"
#include "ast/printer.hpp"
#include "meta/instrument.hpp"
#include "meta/query.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::ast;
using namespace psaflow::meta;
using psaflow::testing::parse;

const char* kNested = R"(
void knl(int n, double* a) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 8; j++) {
            a[i] = a[i] + 1.0;
        }
    }
    for (int k = 0; k < 4; k++) {
        a[k] = 0.0;
    }
}

void main_fn(int n, double* a) {
    for (int t = 0; t < 10; t++) {
        knl(n, a);
    }
}
)";

// ---------------------------------------------------------------- query ----

TEST(Query, OutermostLoopsOfKernelOnly) {
    // The Fig. 2 query: outermost for-loops enclosed in the kernel function.
    auto mod = parse(kNested);
    Function* knl = mod->find_function("knl");
    ASSERT_NE(knl, nullptr);
    auto loops = outermost_for_loops(*knl);
    ASSERT_EQ(loops.size(), 2u); // i-loop and k-loop; not j (nested)
    EXPECT_EQ(loops[0]->var, "i");
    EXPECT_EQ(loops[1]->var, "k");
}

TEST(Query, InnerLoops) {
    auto mod = parse(kNested);
    auto loops = outermost_for_loops(*mod->find_function("knl"));
    auto inner = inner_for_loops(*loops[0]);
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_EQ(inner[0]->var, "j");
    EXPECT_TRUE(inner_for_loops(*loops[1]).empty());
}

TEST(Query, LoopNestDepth) {
    auto mod = parse(kNested);
    auto loops = outermost_for_loops(*mod->find_function("knl"));
    EXPECT_EQ(loop_nest_depth(*loops[0]), 2);
    EXPECT_EQ(loop_nest_depth(*loops[1]), 1);
}

TEST(Query, FixedBoundsDetection) {
    auto mod = parse(kNested);
    auto all = for_loops(*mod->find_function("knl"));
    ASSERT_EQ(all.size(), 3u);
    EXPECT_FALSE(has_fixed_bounds(*all[0])); // i < n
    EXPECT_TRUE(has_fixed_bounds(*all[1]));  // j < 8
    EXPECT_EQ(constant_trip_count(*all[1]), 8);
    EXPECT_TRUE(has_fixed_bounds(*all[2])); // k < 4
    EXPECT_EQ(constant_trip_count(*all[2]), 4);
}

TEST(Query, ConstantFolding) {
    auto e = frontend::parse_expression("2 * (3 + 4) - 1");
    EXPECT_EQ(fold_int_constant(*e), 13);
    auto e2 = frontend::parse_expression("2 * n");
    EXPECT_EQ(fold_int_constant(*e2), std::nullopt);
    auto e3 = frontend::parse_expression("-8");
    EXPECT_EQ(fold_int_constant(*e3), -8);
}

TEST(Query, ConstantTripCountWithStep) {
    auto mod =
        parse("void f() { for (int i = 0; i < 10; i += 3) { int x = 0; x = x; } }");
    auto loops = for_loops(*mod);
    EXPECT_EQ(constant_trip_count(*loops[0]), 4); // 0,3,6,9
}

TEST(Query, FreeVariablesExcludeDeclared) {
    auto mod = parse(kNested);
    auto loops = outermost_for_loops(*mod->find_function("knl"));
    auto free = free_variables(*loops[0]);
    // Free: n, a. Not free: i, j (declared by the loops).
    EXPECT_EQ(free, (std::vector<std::string>{"n", "a"}));
}

TEST(Query, WritesVariable) {
    auto mod = parse(kNested);
    Function* knl = mod->find_function("knl");
    EXPECT_TRUE(writes_variable(*knl, "a"));
    EXPECT_FALSE(writes_variable(*knl, "n"));
}

TEST(Query, CallsTo) {
    auto mod = parse(kNested);
    EXPECT_EQ(calls_to(*mod, "knl").size(), 1u);
    EXPECT_EQ(calls_to(*mod, "nothing").size(), 0u);
    EXPECT_EQ(calls_to(*mod).size(), 1u);
}

// ----------------------------------------------------------- instrument ----

TEST(Instrument, InsertBeforeAndAfter) {
    auto mod = parse(kNested);
    Function* knl = mod->find_function("knl");
    auto loops = outermost_for_loops(*knl);

    ParentMap parents(*mod);
    insert_before(parents, *loops[0],
                  build::expr_stmt(build::call("timer_start")));
    // ParentMap is stale after the edit for indices, but the anchor's block
    // membership still holds for insert_after of the same anchor only if we
    // rebuild; rebuild to be safe.
    ParentMap parents2(*mod);
    insert_after(parents2, *loops[0],
                 build::expr_stmt(build::call("timer_stop")));

    const std::string src = to_source(*knl);
    const auto start = src.find("timer_start()");
    const auto loop = src.find("for (int i");
    const auto stop = src.find("timer_stop()");
    ASSERT_NE(start, std::string::npos);
    ASSERT_NE(stop, std::string::npos);
    EXPECT_LT(start, loop);
    EXPECT_GT(stop, loop);
}

TEST(Instrument, ReplaceStmtReturnsOriginal) {
    auto mod = parse(kNested);
    Function* knl = mod->find_function("knl");
    auto loops = outermost_for_loops(*knl);
    ParentMap parents(*mod);

    auto original = replace_stmt(
        parents, *loops[0],
        build::expr_stmt(build::call(
            "knl_hotspot", [] {
                std::vector<ExprPtr> args;
                args.push_back(build::ident("n"));
                args.push_back(build::ident("a"));
                return args;
            }())));

    EXPECT_EQ(original->kind(), NodeKind::For);
    const std::string src = to_source(*knl);
    EXPECT_NE(src.find("knl_hotspot(n, a);"), std::string::npos);
    // The j-loop left with the detached original.
    EXPECT_EQ(src.find("for (int j"), std::string::npos);
}

TEST(Instrument, DetachStmt) {
    auto mod = parse(kNested);
    Function* knl = mod->find_function("knl");
    auto loops = outermost_for_loops(*knl);
    ParentMap parents(*mod);
    auto detached = detach_stmt(parents, *loops[1]);
    EXPECT_EQ(detached->kind(), NodeKind::For);
    EXPECT_EQ(to_source(*knl).find("for (int k"), std::string::npos);
}

TEST(Instrument, PragmaEditing) {
    auto mod = parse(kNested);
    auto loops = outermost_for_loops(*mod->find_function("knl"));
    add_pragma(*loops[0], "unroll 2");
    add_pragma(*loops[0], "omp parallel for");
    EXPECT_TRUE(find_pragma(*loops[0], "unroll").has_value());
    EXPECT_EQ(*find_pragma(*loops[0], "unroll"), "unroll 2");
    EXPECT_FALSE(find_pragma(*loops[0], "ivdep").has_value());

    EXPECT_EQ(remove_pragmas(*loops[0], "unroll"), 1);
    EXPECT_FALSE(find_pragma(*loops[0], "unroll").has_value());
    EXPECT_TRUE(find_pragma(*loops[0], "omp").has_value());
}

TEST(Instrument, Fig2UnrollPragmaInsertion) {
    // Reproduce the Fig. 2 instrumentation step: query outermost kernel
    // loops, attach `#pragma unroll <n>`, and confirm the exported source.
    auto mod = parse(kNested);
    Function* knl = mod->find_function("knl");
    for (For* loop : outermost_for_loops(*knl)) {
        add_pragma(*loop, "unroll 2");
    }
    const std::string src = to_source(*mod);
    // Both outermost loops instrumented; the nested j-loop untouched.
    size_t first = src.find("#pragma unroll 2");
    ASSERT_NE(first, std::string::npos);
    size_t second = src.find("#pragma unroll 2", first + 1);
    ASSERT_NE(second, std::string::npos);
    EXPECT_EQ(src.find("#pragma unroll 2", second + 1), std::string::npos);
}

} // namespace
} // namespace psaflow
