#include <cmath>

#include <gtest/gtest.h>

#include "flow/engine.hpp"
#include "flow/learned_strategy.hpp"
#include "flow/session.hpp"
#include "flow/standard_flow.hpp"
#include "frontend/parser.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::flow;

StrategyFeatures features(double intensity, bool parallel, bool inner_deps,
                          bool unrollable) {
    StrategyFeatures f;
    f.log_intensity = std::log10(intensity);
    f.log_compute_transfer = 1.0;
    f.outer_parallel = parallel ? 1.0 : 0.0;
    f.inner_with_deps = inner_deps ? 1.0 : 0.0;
    f.inner_fully_unrollable = unrollable ? 1.0 : 0.0;
    f.log_parallel_iters = 6.0;
    return f;
}

std::vector<TrainingExample> synthetic_corpus() {
    // A textbook-shaped corpus: low-intensity kernels label cpu,
    // high-intensity ones gpu, fully-unrollable dependent inners fpga.
    std::vector<TrainingExample> out;
    out.push_back({features(0.5, true, false, false), "cpu"});
    out.push_back({features(1.0, true, false, false), "cpu"});
    out.push_back({features(2.0, true, true, false), "cpu"});
    out.push_back({features(30.0, true, false, false), "gpu"});
    out.push_back({features(80.0, true, true, false), "gpu"});
    out.push_back({features(200.0, true, false, false), "gpu"});
    out.push_back({features(40.0, true, true, true), "fpga"});
    out.push_back({features(90.0, true, true, true), "fpga"});
    out.push_back({features(25.0, false, true, true), "fpga"});
    return out;
}

TEST(LearnedStrategy, MemorisesTrainingExamples) {
    LearnedStrategy knn(synthetic_corpus(), 1);
    for (const auto& ex : synthetic_corpus()) {
        EXPECT_EQ(knn.classify(ex.features), ex.label);
    }
}

TEST(LearnedStrategy, InterpolatesBetweenNeighbours) {
    LearnedStrategy knn(synthetic_corpus(), 3);
    // Unseen high-intensity parallel kernel without unrollable inners.
    EXPECT_EQ(knn.classify(features(120.0, true, false, false)), "gpu");
    // Unseen low-intensity kernel.
    EXPECT_EQ(knn.classify(features(0.8, true, false, false)), "cpu");
    // Unseen unrollable dependent inner structure.
    EXPECT_EQ(knn.classify(features(60.0, true, true, true)), "fpga");
}

TEST(LearnedStrategy, RejectsEmptyCorpus) {
    EXPECT_THROW(LearnedStrategy({}, 1), Error);
}

TEST(LearnedStrategy, OracleTrainingLabelsMatchPaperTargets) {
    const auto corpus = train_from_oracle(apps::all_applications());
    ASSERT_EQ(corpus.size(), 5u);
    // Paper order: rushlarsen, nbody, bezier, adpredictor, kmeans.
    EXPECT_EQ(corpus[0].label, "gpu");
    EXPECT_EQ(corpus[1].label, "gpu");
    EXPECT_EQ(corpus[2].label, "gpu");
    EXPECT_EQ(corpus[3].label, "fpga");
    EXPECT_EQ(corpus[4].label, "cpu");
}

TEST(LearnedStrategy, LeaveOneOutOnBenchmarks) {
    // Train on four benchmarks, predict the fifth. Folds whose held-out
    // label does not occur in the remaining corpus (K-Means is the only
    // "cpu" app, AdPredictor the only "fpga" one) are impossible by
    // construction and therefore skipped; the three GPU apps must mostly
    // classify each other correctly.
    const auto all = apps::all_applications();
    const auto corpus = train_from_oracle(all);
    int correct = 0;
    int evaluable = 0;
    for (std::size_t hold = 0; hold < corpus.size(); ++hold) {
        std::vector<TrainingExample> train;
        bool label_present = false;
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            if (i == hold) continue;
            train.push_back(corpus[i]);
            if (corpus[i].label == corpus[hold].label) label_present = true;
        }
        if (!label_present) continue;
        ++evaluable;
        LearnedStrategy knn(train, 1);
        if (knn.classify(corpus[hold].features) == corpus[hold].label)
            ++correct;
    }
    ASSERT_EQ(evaluable, 3); // the three GPU-labelled apps
    EXPECT_GE(correct, 2) << "leave-one-out accuracy collapsed";
}

TEST(LearnedStrategy, DrivesTheFlowEndToEnd) {
    // Swap the learned strategy into branch point A and compile K-Means:
    // trained on the benchmark corpus it must reproduce the informed
    // choice (multi-thread CPU).
    const auto corpus = train_from_oracle(apps::all_applications());

    DesignFlow flow = standard_flow(Mode::Informed);
    flow.branch->strategy = std::make_shared<LearnedStrategy>(corpus, 3);

    const auto& app = apps::kmeans();
    FlowContext ctx(app.name, frontend::parse_module(app.source, app.name),
                    app.workload);
    ctx.allow_single_precision = app.allow_single_precision;
    auto result = FlowSession().run(flow, std::move(ctx));
    ASSERT_EQ(result.designs.size(), 1u);
    EXPECT_EQ(result.designs[0].spec.target, codegen::TargetKind::CpuOpenMp);
}

} // namespace
} // namespace psaflow
