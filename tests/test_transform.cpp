#include <cmath>

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "ast/clone.hpp"
#include "ast/printer.hpp"
#include "interp/interpreter.hpp"
#include "meta/query.hpp"
#include "transform/accumulation.hpp"
#include "transform/extract.hpp"
#include "transform/parallel.hpp"
#include "transform/rewrite.hpp"
#include "transform/single_precision.hpp"
#include "transform/unroll.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::ast;
using namespace psaflow::transform;
using psaflow::testing::parse_and_check;

interp::Arg integer(long long v) { return interp::Value::of_int(v); }

/// Runs `fn(n, buf)` on a fresh deterministic buffer and returns the buffer
/// contents — the workhorse for behaviour-preservation checks.
std::vector<double> run_on_buffer(const Module& mod, const std::string& fn,
                                  int n, std::size_t buf_size = 256) {
    auto types = sema::check(mod);
    auto buf = std::make_shared<interp::Buffer>(Type::Double, buf_size, "buf");
    for (std::size_t i = 0; i < buf_size; ++i)
        buf->store(static_cast<long long>(i), 0.25 * static_cast<double>(i) + 1.0);
    interp::Interpreter in(mod, types);
    in.call(fn, {integer(n), buf});
    return buf->raw();
}

// -------------------------------------------------------------- rewrite ----

TEST(Rewrite, SubstituteIdentReplacesScalarUses) {
    auto [mod, types] = parse_and_check(R"(
void f(int i, double* a) {
    a[i] = a[i + 1] * (i * 1.0);
}
)");
    auto& body = *mod->functions[0]->body;
    auto replacement = frontend::parse_expression("i + 8");
    int count = 0;
    for (auto& stmt : body.stmts)
        count += substitute_ident(*stmt, "i", *replacement);
    EXPECT_EQ(count, 3);
    const std::string src = to_source(*mod->functions[0]);
    EXPECT_NE(src.find("a[i + 8]"), std::string::npos);
    EXPECT_NE(src.find("a[i + 8 + 1]"), std::string::npos);
}

TEST(Rewrite, LeavesArrayNamesAlone) {
    auto [mod, types] = parse_and_check("void f(double* a) { a[0] = 1.0; }");
    auto replacement = frontend::parse_expression("b");
    int count = 0;
    for (auto& stmt : mod->functions[0]->body->stmts)
        count += substitute_ident(*stmt, "a", *replacement);
    EXPECT_EQ(count, 0);
}

// -------------------------------------------------------------- extract ----

const char* kApp = R"(
void app(int n, double* buf) {
    for (int i = 0; i < n; i++) {
        buf[i] = buf[i] * 1.5;
    }
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            buf[i] = buf[i] + buf[j] * 0.125;
        }
    }
}
)";

TEST(Extract, MovesLoopIntoKernelFunction) {
    auto [mod, types] = parse_and_check(kApp);
    auto reference = run_on_buffer(*mod, "app", 24);

    auto loops = meta::outermost_for_loops(*mod->find_function("app"));
    auto result = extract_hotspot(*mod, types, *loops[1], "app_hotspot");
    ASSERT_NE(result.kernel, nullptr);
    EXPECT_EQ(result.kernel->name, "app_hotspot");
    EXPECT_EQ(result.host->name, "app");

    // Module still type checks and the kernel call is in place.
    auto types2 = sema::check(*mod);
    const std::string src = to_source(*mod);
    EXPECT_NE(src.find("app_hotspot(n, buf);"), std::string::npos);
    EXPECT_NE(src.find("void app_hotspot(int n, double* buf)"),
              std::string::npos);

    // Behaviour preserved.
    EXPECT_EQ(run_on_buffer(*mod, "app", 24), reference);
}

TEST(Extract, KernelParamsAreTheFreeVariables) {
    auto [mod, types] = parse_and_check(R"(
void app(int n, double f, double* buf) {
    for (int i = 0; i < n; i++) {
        buf[i] = buf[i] * f;
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("app"));
    auto result = extract_hotspot(*mod, types, *loops[0], "knl");
    ASSERT_EQ(result.kernel->params.size(), 3u);
    EXPECT_EQ(result.kernel->params[0]->name, "n");
    EXPECT_EQ(result.kernel->params[1]->name, "buf");
    EXPECT_EQ(result.kernel->params[2]->name, "f");
    EXPECT_TRUE(result.kernel->params[1]->type.is_pointer);
}

TEST(Extract, RefusesEscapingScalarWrites) {
    auto [mod, types] = parse_and_check(R"(
double app(int n, double* buf) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += buf[i];
    }
    return s;
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("app"));
    EXPECT_THROW(extract_hotspot(*mod, types, *loops[0], "knl"), Error);
}

TEST(Extract, RefusesDuplicateKernelName) {
    auto [mod, types] = parse_and_check(kApp);
    auto loops = meta::outermost_for_loops(*mod->find_function("app"));
    EXPECT_THROW(extract_hotspot(*mod, types, *loops[0], "app"), Error);
}

// --------------------------------------------------------------- unroll ----

TEST(Unroll, PartialUnrollPreservesBehaviour) {
    for (int factor : {2, 3, 4, 8}) {
        for (int n : {0, 1, 7, 24, 25}) {
            auto [mod, types] = parse_and_check(R"(
void f(int n, double* buf) {
    for (int i = 0; i < n; i++) {
        buf[i] = buf[i] * 2.0 + 1.0;
    }
}
)");
            auto reference = run_on_buffer(*mod, "f", n);
            auto loops = meta::outermost_for_loops(*mod->find_function("f"));
            unroll_loop(*mod, *loops[0], factor);
            EXPECT_EQ(run_on_buffer(*mod, "f", n), reference)
                << "factor=" << factor << " n=" << n;
        }
    }
}

TEST(Unroll, WidensMainLoopStep) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* buf) {
    for (int i = 0; i < n; i++) {
        buf[i] = buf[i] + 1.0;
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    unroll_loop(*mod, *loops[0], 4);
    const std::string src = to_source(*mod);
    EXPECT_NE(src.find("i = i + 4"), std::string::npos);
    EXPECT_NE(src.find("buf[i + 1]"), std::string::npos);
    EXPECT_NE(src.find("buf[i + 3]"), std::string::npos);
    EXPECT_NE(src.find("int i_main"), std::string::npos);
    // Still type checks after the structural edit.
    EXPECT_NO_THROW((void)sema::check(*mod));
}

TEST(Unroll, SequentialDependenceStillCorrect) {
    // Unrolling must preserve order even with a carried dependence.
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* buf) {
    for (int i = 0; i < n; i++) {
        buf[i + 1] = buf[i + 1] + buf[i];
    }
}
)");
    auto reference = run_on_buffer(*mod, "f", 33);
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    unroll_loop(*mod, *loops[0], 4);
    EXPECT_EQ(run_on_buffer(*mod, "f", 33), reference);
}

TEST(Unroll, FactorOneIsNoOp) {
    auto [mod, types] = parse_and_check(kApp);
    const std::string before = to_source(*mod);
    auto loops = meta::outermost_for_loops(*mod->find_function("app"));
    unroll_loop(*mod, *loops[0], 1);
    EXPECT_EQ(to_source(*mod), before);
}

TEST(Unroll, RejectsNonConstantStep) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, int s, double* buf) {
    for (int i = 0; i < n; i += s) {
        buf[i] = 0.0;
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    EXPECT_THROW(unroll_loop(*mod, *loops[0], 2), Error);
}

TEST(FullUnroll, ReplacesLoopWithConstantBodies) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* buf) {
    for (int j = 0; j < 4; j++) {
        buf[j] = buf[j] * 2.0;
    }
}
)");
    auto reference = run_on_buffer(*mod, "f", 4);
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    fully_unroll_loop(*mod, *loops[0]);
    const std::string src = to_source(*mod);
    EXPECT_EQ(src.find("for (int j"), std::string::npos);
    EXPECT_NE(src.find("buf[0]"), std::string::npos);
    EXPECT_NE(src.find("buf[3]"), std::string::npos);
    EXPECT_EQ(run_on_buffer(*mod, "f", 4), reference);
}

TEST(FullUnroll, RejectsDynamicBounds) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* buf) {
    for (int i = 0; i < n; i++) {
        buf[i] = 0.0;
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    EXPECT_THROW(fully_unroll_loop(*mod, *loops[0]), Error);
}

TEST(FullUnroll, RespectsTripLimit) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* buf) {
    for (int i = 0; i < 64; i++) {
        buf[i] = 0.0;
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    EXPECT_THROW(fully_unroll_loop(*mod, *loops[0], 16), Error);
}

// --------------------------------------------------- single precision ----

TEST(SinglePrecision, RewritesMathLiteralsAndLocals) {
    auto [mod, types] = parse_and_check(R"(
void knl(int n, double* buf) {
    for (int i = 0; i < n; i++) {
        double x = buf[i] * 0.5;
        buf[i] = sqrt(x) + exp(x) * 1.25;
    }
}
)");
    Function& knl = *mod->find_function("knl");
    EXPECT_EQ(employ_sp_math(knl), 2);      // sqrt, exp
    EXPECT_EQ(employ_sp_literals(knl), 2);  // 0.5, 1.25
    EXPECT_EQ(demote_double_locals(knl), 1); // x

    const std::string src = to_source(knl);
    EXPECT_NE(src.find("sqrtf("), std::string::npos);
    EXPECT_NE(src.find("expf("), std::string::npos);
    EXPECT_NE(src.find("0.5f"), std::string::npos);
    EXPECT_NE(src.find("float x"), std::string::npos);
    EXPECT_NO_THROW((void)sema::check(*mod));
}

TEST(SinglePrecision, IsIdempotent) {
    auto [mod, types] = parse_and_check(
        "void knl(double* buf) { buf[0] = sqrt(buf[1]) * 2.0; }");
    Function& knl = *mod->find_function("knl");
    EXPECT_GT(employ_single_precision(knl), 0);
    EXPECT_EQ(employ_single_precision(knl), 0);
}

TEST(SinglePrecision, ResultsWithinFloatTolerance) {
    const char* src = R"(
void knl(int n, double* buf) {
    for (int i = 0; i < n; i++) {
        buf[i] = sqrt(buf[i]) * 0.5 + exp(buf[i] * 0.01);
    }
}
)";
    auto [mod_d, types_d] = parse_and_check(src);
    auto reference = run_on_buffer(*mod_d, "knl", 64);

    auto [mod_f, types_f] = parse_and_check(src);
    employ_single_precision(*mod_f->find_function("knl"));
    auto converted = run_on_buffer(*mod_f, "knl", 64);

    ASSERT_EQ(reference.size(), converted.size());
    bool any_difference = false;
    for (std::size_t i = 0; i < 64; ++i) {
        const double rel = std::abs(converted[i] - reference[i]) /
                           std::max(1.0, std::abs(reference[i]));
        EXPECT_LT(rel, 1e-5) << "element " << i;
        if (converted[i] != reference[i]) any_difference = true;
    }
    EXPECT_TRUE(any_difference); // precision really changed
}

// ----------------------------------------------------------- accumulation --

/// Variant of run_on_buffer for `f(n, buf, out)` kernels; returns `out`.
std::vector<double> run_two_buffers(const Module& mod, const std::string& fn,
                                    int n) {
    auto types = sema::check(mod);
    auto buf = std::make_shared<interp::Buffer>(Type::Double, 256, "buf");
    auto out = std::make_shared<interp::Buffer>(Type::Double, 8, "out");
    for (int i = 0; i < 256; ++i) buf->store(i, 0.25 * i + 1.0);
    for (int i = 0; i < 8; ++i) out->store(i, 100.0 + i);
    interp::Interpreter in(mod, types);
    in.call(fn, {integer(n), buf, out});
    return out->raw();
}

TEST(Accumulation, ScalarisesInvariantIndexedSum) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* buf, double* out) {
    for (int i = 0; i < n; i++) {
        out[3] += buf[i] * 0.5;
    }
}
)");
    auto reference = run_two_buffers(*mod, "f", 100);

    auto [mod2, types2] = parse_and_check(to_source(*mod));
    auto loops = meta::outermost_for_loops(*mod2->find_function("f"));
    EXPECT_EQ(remove_array_accumulation(*mod2, *loops[0]), 1);

    // The loop now carries only a scalar reduction.
    auto types3 = sema::check(*mod2);
    auto info = analysis::analyze_dependence(*mod2, *loops[0]);
    EXPECT_TRUE(info.parallel);
    EXPECT_TRUE(info.has_reductions());

    EXPECT_EQ(run_two_buffers(*mod2, "f", 100), reference);
}

TEST(Accumulation, SubtractionForm) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* buf, double* out) {
    for (int i = 0; i < n; i++) {
        out[2] -= buf[i];
    }
}
)");
    auto reference = run_two_buffers(*mod, "f", 64);
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    EXPECT_EQ(remove_array_accumulation(*mod, *loops[0]), 1);
    EXPECT_EQ(run_two_buffers(*mod, "f", 64), reference);
}

TEST(Accumulation, SkipsInductionDependentIndex) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* buf) {
    for (int i = 0; i < n; i++) {
        buf[i] += 1.0;
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    EXPECT_EQ(remove_array_accumulation(*mod, *loops[0]), 0);
}

TEST(Accumulation, SkipsWhenArrayReadElsewhere) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* buf, double* out) {
    for (int i = 0; i < n; i++) {
        out[0] += buf[i];
        buf[i] = out[0];
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    EXPECT_EQ(remove_array_accumulation(*mod, *loops[0]), 0);
}

// -------------------------------------------------------------- parallel ---

TEST(Parallel, OmpPragmaWithReductions) {
    auto [mod, types] = parse_and_check(R"(
double f(int n, double* a) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += a[i];
    }
    return s;
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    auto info = analysis::analyze_dependence(*mod, *loops[0]);
    insert_omp_parallel_for(*loops[0], 32, info.reductions);
    const std::string src = to_source(*mod);
    EXPECT_NE(
        src.find("#pragma omp parallel for num_threads(32) reduction(+:s)"),
        std::string::npos);

    // Re-inserting replaces rather than stacks.
    insert_omp_parallel_for(*loops[0], 16, {});
    EXPECT_EQ(loops[0]->pragmas.size(), 1u);
}

TEST(Parallel, SharedMemCandidatesNBodyPattern) {
    auto [mod, types] = parse_and_check(R"(
void knl(int n, double* px, double* py, double* vx) {
    for (int i = 0; i < n; i++) {
        double ax = 0.0;
        for (int j = 0; j < n; j++) {
            ax += px[j] * py[j];
        }
        vx[i] = vx[i] + ax * px[i];
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("knl"));
    auto cands = shared_mem_candidates(*loops[0]);
    EXPECT_EQ(cands, (std::vector<std::string>{"px", "py"}));

    annotate_shared_mem(*loops[0], cands);
    EXPECT_EQ(shared_mem_annotation(*loops[0]),
              (std::vector<std::string>{"px", "py"}));
    annotate_shared_mem(*loops[0], {});
    EXPECT_TRUE(shared_mem_annotation(*loops[0]).empty());
}

} // namespace
} // namespace psaflow
