// Golden-snapshot tests: each of the three emitters (OpenMP, HIP, oneAPI)
// rendered for each of the five paper applications, byte-compared against
// checked-in snapshots in tests/golden/. Any emitter change — intended or
// not — shows up as a readable diff of generated design source.
//
// Update path, after a deliberate emitter change:
//
//   PSAFLOW_UPDATE_GOLDEN=1 ./build/tests/test_golden
//   git diff tests/golden/   # review the emitter diff, then commit it
//
// The snapshots are deterministic: the kernel is the first loop in each app
// that hotspot extraction accepts, and every spec parameter is fixed below.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/apps.hpp"
#include "ast/clone.hpp"
#include "ast/nodes.hpp"
#include "codegen/codegen.hpp"
#include "codegen/design_spec.hpp"
#include "frontend/parser.hpp"
#include "meta/query.hpp"
#include "platform/devices.hpp"
#include "sema/type_check.hpp"
#include "support/error.hpp"
#include "transform/extract.hpp"

namespace {

using namespace psaflow;

std::string golden_path(const std::string& app, const std::string& emitter) {
    return std::string(PSAFLOW_GOLDEN_DIR) + "/" + app + "-" + emitter +
           ".golden";
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool update_mode() {
    const char* env = std::getenv("PSAFLOW_UPDATE_GOLDEN");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void check_golden(const std::string& app, const std::string& emitter,
                  const std::string& got) {
    const std::string path = golden_path(app, emitter);
    if (update_mode()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << got;
        return;
    }
    const std::string want = read_file(path);
    ASSERT_FALSE(want.empty())
        << path << " missing; regenerate with PSAFLOW_UPDATE_GOLDEN=1";
    EXPECT_EQ(want, got)
        << emitter << " output changed for " << app
        << "; if intended, refresh with PSAFLOW_UPDATE_GOLDEN=1 and review "
           "the diff";
}

/// Parse the app and extract its first extractable loop into `<app>_hot`.
/// Returns the extracted module; `types` is left current for it.
ast::ModulePtr extracted_module(const apps::Application& app,
                                sema::TypeInfo& types) {
    auto base = frontend::parse_module(app.source, app.name);
    const std::size_t n_loops = meta::for_loops(*base).size();
    for (std::size_t i = 0; i < n_loops; ++i) {
        auto clone = ast::clone_module(*base);
        auto loops = meta::for_loops(*clone);
        try {
            sema::TypeInfo ct = sema::check(*clone);
            (void)transform::extract_hotspot(*clone, ct, *loops[i],
                                             app.name + "_hot");
            types = sema::check(*clone);
            return clone;
        } catch (const Error&) {
            continue; // extraction precondition rejected; try the next loop
        }
    }
    ADD_FAILURE() << app.name << ": no extractable loop";
    return nullptr;
}

TEST(Golden, EmittersMatchSnapshots) {
    for (const apps::Application* app : apps::all_applications()) {
        sema::TypeInfo types;
        auto module = extracted_module(*app, types);
        ASSERT_NE(module, nullptr);

        codegen::DesignSpec omp;
        omp.app_name = app->name;
        omp.kernel_name = app->name + "_hot";
        omp.target = codegen::TargetKind::CpuOpenMp;
        omp.omp_threads = 8;
        check_golden(app->name, "openmp",
                     codegen::emit_design(*module, types, omp));

        codegen::DesignSpec hip = omp;
        hip.target = codegen::TargetKind::CpuGpu;
        hip.device = platform::DeviceId::Rtx2080Ti;
        hip.omp_threads = 0;
        hip.block_size = 128;
        check_golden(app->name, "hip",
                     codegen::emit_design(*module, types, hip));

        codegen::DesignSpec sycl = omp;
        sycl.target = codegen::TargetKind::CpuFpga;
        sycl.device = platform::DeviceId::Stratix10;
        sycl.omp_threads = 0;
        sycl.unroll = 4;
        check_golden(app->name, "oneapi",
                     codegen::emit_design(*module, types, sycl));
    }
}

} // namespace
