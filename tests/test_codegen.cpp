#include <gtest/gtest.h>

#include "codegen/codegen.hpp"
#include "codegen/emit_util.hpp"
#include "meta/instrument.hpp"
#include "meta/query.hpp"
#include "support/string_util.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::codegen;
using psaflow::testing::parse_and_check;

const char* kApp = R"(
void saxpy_kernel(int n, float a, float* x, float* y) {
    for (int i = 0; i < n; i = i + 1) {
        y[i] = a * x[i] + y[i];
    }
}

void run(int n, float a, float* x, float* y) {
    saxpy_kernel(n, a, x, y);
}
)";

DesignSpec base_spec(TargetKind target, platform::DeviceId device) {
    DesignSpec spec;
    spec.app_name = "saxpy";
    spec.kernel_name = "saxpy_kernel";
    spec.target = target;
    spec.device = device;
    return spec;
}

// ------------------------------------------------------------- emit util ---

TEST(EmitUtil, CType) {
    EXPECT_EQ(c_type({ast::Type::Double, true}), "double*");
    EXPECT_EQ(c_type({ast::Type::Int, false}), "int");
    EXPECT_EQ(c_type({ast::Type::Float, true}), "float*");
}

TEST(EmitUtil, ParamSplit) {
    auto [mod, types] = parse_and_check(kApp);
    const auto& fn = *mod->find_function("saxpy_kernel");
    EXPECT_EQ(param_list(fn), "int n, float a, float* x, float* y");
    EXPECT_EQ(array_params(fn).size(), 2u);
    EXPECT_EQ(scalar_params(fn).size(), 2u);
}

TEST(EmitUtil, KernelOuterLoopRequiresExactlyOne) {
    auto [mod, types] = parse_and_check(kApp);
    EXPECT_NO_THROW(
        (void)kernel_outer_loop(*mod->find_function("saxpy_kernel")));
    auto [mod2, types2] = parse_and_check(R"(
void two(int n, double* a) {
    for (int i = 0; i < n; i = i + 1) { a[i] = 0.0; }
    for (int i = 0; i < n; i = i + 1) { a[i] = 1.0; }
}
)");
    EXPECT_THROW((void)kernel_outer_loop(*mod2->find_function("two")), Error);
}

// --------------------------------------------------------------- OpenMP ----

TEST(EmitOpenMp, ContainsPragmaAndWholeProgram) {
    auto [mod, types] = parse_and_check(kApp);
    auto loops = meta::outermost_for_loops(*mod->find_function("saxpy_kernel"));
    meta::add_pragma(*loops[0], "omp parallel for num_threads(32)");

    auto spec = base_spec(TargetKind::CpuOpenMp, platform::DeviceId::Epyc7543);
    spec.omp_threads = 32;
    const std::string src = emit_design(*mod, types, spec);

    EXPECT_NE(src.find("#include <omp.h>"), std::string::npos);
    EXPECT_NE(src.find("#pragma omp parallel for num_threads(32)"),
              std::string::npos);
    EXPECT_NE(src.find("void run(int n, float a, float* x, float* y)"),
              std::string::npos);
}

// ------------------------------------------------------------------ HIP ----

TEST(EmitHip, KernelAndManagementStructure) {
    auto [mod, types] = parse_and_check(kApp);
    auto spec = base_spec(TargetKind::CpuGpu, platform::DeviceId::Rtx2080Ti);
    spec.block_size = 128;
    spec.pinned_host_memory = true;
    const std::string src = emit_design(*mod, types, spec);

    EXPECT_NE(src.find("#include <hip/hip_runtime.h>"), std::string::npos);
    EXPECT_NE(src.find("__global__ void saxpy_kernel_gpu"),
              std::string::npos);
    EXPECT_NE(src.find("blockIdx.x * blockDim.x + threadIdx.x"),
              std::string::npos);
    EXPECT_NE(src.find("const int block_size = 128;"), std::string::npos);
    EXPECT_NE(src.find("hipLaunchKernelGGL"), std::string::npos);
    EXPECT_NE(src.find("HIP_CHECK(hipDeviceSynchronize());"),
              std::string::npos);
    // One hipMalloc + one hipFree per array parameter.
    size_t mallocs = 0;
    size_t pos = 0;
    while ((pos = src.find("hipMalloc", pos)) != std::string::npos) {
        ++mallocs;
        ++pos;
    }
    EXPECT_EQ(mallocs, 2u);
    EXPECT_NE(src.find("hipFree(d_x)"), std::string::npos);
    EXPECT_NE(src.find("hipFree(d_y)"), std::string::npos);
}

TEST(EmitHip, DirectionalCopies) {
    auto [mod, types] = parse_and_check(kApp);
    auto spec = base_spec(TargetKind::CpuGpu, platform::DeviceId::Gtx1080Ti);
    spec.block_size = 256;
    spec.copy_in = {"x", "y"};
    spec.copy_out = {"y"}; // x is read-only
    const std::string src = emit_design(*mod, types, spec);

    EXPECT_NE(src.find("hipMemcpy(d_x, x"), std::string::npos);
    EXPECT_NE(src.find("hipMemcpy(d_y, y"), std::string::npos);
    EXPECT_NE(src.find("hipMemcpy(y, d_y"), std::string::npos);
    EXPECT_EQ(src.find("hipMemcpy(x, d_x"), std::string::npos);
    EXPECT_NE(src.find("x: read-only on the device"), std::string::npos);
}

TEST(EmitHip, SharedMemoryTiling) {
    auto [mod, types] = parse_and_check(R"(
void nb_kernel(int n, double* pos, double* out) {
    for (int i = 0; i < n; i = i + 1) {
        double acc = 0.0;
        for (int j = 0; j < n; j = j + 1) {
            acc += pos[j];
        }
        out[i] = acc + pos[i];
    }
}

void run(int n, double* pos, double* out) {
    nb_kernel(n, pos, out);
}
)");
    DesignSpec spec;
    spec.app_name = "nb";
    spec.kernel_name = "nb_kernel";
    spec.target = TargetKind::CpuGpu;
    spec.device = platform::DeviceId::Rtx2080Ti;
    spec.block_size = 256;
    spec.shared_arrays = {"pos"};
    const std::string src = emit_design(*mod, types, spec);

    EXPECT_NE(src.find("__shared__ double pos_tile[256];"),
              std::string::npos);
    EXPECT_NE(src.find("__syncthreads();"), std::string::npos);
    // Tiled inner loop reads the tile, not global memory.
    EXPECT_NE(src.find("pos_tile[jt]"), std::string::npos);
    // The cooperative load is guarded.
    EXPECT_NE(src.find("pos_tile[threadIdx.x] = pos[j0 + threadIdx.x];"),
              std::string::npos);
    // Post-inner statements remain guarded by the thread id.
    EXPECT_NE(src.find("out[i] = acc + pos[i];"), std::string::npos);
}

TEST(EmitHip, SpecialisedMathMacros) {
    auto [mod, types] = parse_and_check(kApp);
    auto spec = base_spec(TargetKind::CpuGpu, platform::DeviceId::Rtx2080Ti);
    spec.specialised_math = true;
    const std::string src = emit_design(*mod, types, spec);
    EXPECT_NE(src.find("__expf"), std::string::npos);
}

// --------------------------------------------------------------- oneAPI ----

TEST(EmitOneApi, BufferVariantForArria10) {
    auto [mod, types] = parse_and_check(kApp);
    auto spec = base_spec(TargetKind::CpuFpga, platform::DeviceId::Arria10);
    spec.unroll = 8;
    const std::string src = emit_design(*mod, types, spec);

    EXPECT_NE(src.find("#include <sycl/sycl.hpp>"), std::string::npos);
    EXPECT_NE(src.find("sycl::buffer<float, 1> x_buf"), std::string::npos);
    EXPECT_NE(src.find("get_access<sycl::access::mode::read_write>"),
              std::string::npos);
    EXPECT_NE(src.find("h.single_task<saxpy_kernel_id>"), std::string::npos);
    EXPECT_NE(src.find("#pragma unroll 8"), std::string::npos);
    // Accessor-renamed kernel body.
    EXPECT_NE(src.find("y_acc[i] = a * x_acc[i] + y_acc[i];"),
              std::string::npos);
    EXPECT_EQ(src.find("malloc_host"), std::string::npos);
}

TEST(EmitOneApi, UsmVariantForStratix10) {
    auto [mod, types] = parse_and_check(kApp);
    auto spec = base_spec(TargetKind::CpuFpga, platform::DeviceId::Stratix10);
    spec.unroll = 16;
    spec.zero_copy = true;
    const std::string src = emit_design(*mod, types, spec);

    EXPECT_NE(src.find("sycl::malloc_host<float>"), std::string::npos);
    EXPECT_NE(src.find("[[intel::kernel_args_restrict]]"),
              std::string::npos);
    EXPECT_NE(src.find("#pragma unroll 16"), std::string::npos);
    EXPECT_NE(src.find("y_usm[i] = a * x_usm[i] + y_usm[i];"),
              std::string::npos);
    EXPECT_EQ(src.find("sycl::buffer"), std::string::npos);

    // USM variant carries more management code than the buffer variant
    // (Table I's S10 > A10 pattern).
    auto a10_spec = base_spec(TargetKind::CpuFpga,
                              platform::DeviceId::Arria10);
    a10_spec.unroll = 16;
    const std::string a10 = emit_design(*mod, types, a10_spec);
    EXPECT_GT(count_loc(src), count_loc(a10));
}

TEST(EmitOneApi, OvermapWarningInHeader) {
    auto [mod, types] = parse_and_check(kApp);
    auto spec = base_spec(TargetKind::CpuFpga, platform::DeviceId::Arria10);
    spec.unroll = 1;
    spec.synthesizable = false;
    const std::string src = emit_design(*mod, types, spec);
    EXPECT_NE(src.find("WARNING: design overmaps"), std::string::npos);
}

// ------------------------------------------------------------- reference ---

TEST(EmitReference, UnmodifiedProgram) {
    auto [mod, types] = parse_and_check(kApp);
    auto spec = base_spec(TargetKind::None, platform::DeviceId::Epyc7543);
    const std::string src = emit_design(*mod, types, spec);
    EXPECT_NE(src.find("unmodified reference design"), std::string::npos);
    EXPECT_NE(src.find("void saxpy_kernel(int n"), std::string::npos);
}

// ------------------------------------------------------------------ LOC ----

TEST(LocDelta, ComputesAddedFraction) {
    EXPECT_DOUBLE_EQ(loc_delta("a\nb\nc\nd\n", "a\nb\n"), 1.0); // +100%
    EXPECT_DOUBLE_EQ(loc_delta("a\nb\n", "a\nb\n"), 0.0);
    EXPECT_THROW((void)loc_delta("a\n", ""), Error);
}

TEST(LocDelta, CommentsDoNotCount) {
    EXPECT_DOUBLE_EQ(loc_delta("// banner\n// banner\na\nb\n", "a\nb\n"),
                     0.0);
}

TEST(DesignName, EncodesTargetAndDevice) {
    auto spec = base_spec(TargetKind::CpuGpu, platform::DeviceId::Gtx1080Ti);
    EXPECT_EQ(spec.design_name(), "saxpy-hip-gtx1080ti");
    spec.target = TargetKind::None;
    EXPECT_EQ(spec.design_name(), "saxpy-reference");
}

} // namespace
} // namespace psaflow
