// Replays every checked-in corpus program — generator-produced seeds plus
// shrunken reproducers for previously-fixed bugs — through the full
// differential oracle stack. A failure here is a regression in a transform,
// an emitter, or the flow engine that the fuzzer has caught before.
//
// To refresh the generated part of the corpus after a deliberate generator
// change:  psaflow-fuzz --emit-seeds tests/corpus --seed 1 --runs 20
// (reproducer files are hand-curated; never regenerate those).
#include <gtest/gtest.h>

#include <cstdint>

#include "fuzz/corpus.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"

namespace {

using namespace psaflow;

TEST(FuzzRegression, CorpusReplaysClean) {
    const auto corpus = fuzz::load_corpus(PSAFLOW_CORPUS_DIR);
    ASSERT_GE(corpus.size(), 20u)
        << "seed corpus went missing from " << PSAFLOW_CORPUS_DIR;
    for (const auto& entry : corpus) {
        const auto outcome = fuzz::run_oracles(entry.source, {});
        for (const auto& f : outcome.failures)
            ADD_FAILURE() << entry.path << ": " << f.oracle << ": "
                          << f.detail;
    }
}

TEST(FuzzRegression, IdenticalSeedsAreByteIdentical) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234567ULL}) {
        const auto a = fuzz::generate_program(seed, {});
        const auto b = fuzz::generate_program(seed, {});
        EXPECT_EQ(a.source, b.source) << "seed " << seed;
    }
}

TEST(FuzzRegression, DistinctSeedsDiffer) {
    EXPECT_NE(fuzz::generate_program(1, {}).source,
              fuzz::generate_program(2, {}).source);
}

TEST(FuzzRegression, ColdVsWarmCacheOracleHolds) {
    // The "flow:cache" oracle: an uncached run, a run against an empty
    // content-addressed store and a run served from that store must produce
    // byte-identical FlowResults for arbitrary generated programs.
    fuzz::OracleOptions options;
    options.check_roundtrip = false; // focus the time budget on the flow
    options.check_transforms = false;
    options.check_codegen = false;
    options.check_cache = true;
    for (const std::uint64_t seed : {601ULL, 602ULL}) {
        const auto program = fuzz::generate_program(seed, {});
        const auto outcome = fuzz::run_oracles(program.source, options);
        for (const auto& f : outcome.failures)
            ADD_FAILURE() << "seed " << seed << ": " << f.oracle << ": "
                          << f.detail;
    }
}

TEST(FuzzRegression, VmEngineMatchesTreeWalkerOnCorpus) {
    // The "interp:vm" oracle over every checked-in program: the bytecode VM
    // and the tree walker must agree bit-for-bit on results, buffers and
    // serialized profiles. The interp-vm-* entries were curated to stress
    // engine-sensitive constructs (float compound rounding, truncating
    // division, short-circuit charges, zero-trip loops, aliased buffers,
    // early returns through loops, local arrays, builtins, induction-var
    // writes); the rest of the corpus rides along for free.
    fuzz::OracleOptions options;
    options.check_roundtrip = false; // focus the budget on the engine diff
    options.check_transforms = false;
    options.check_codegen = false;
    options.check_flow = false;
    options.check_vm = true;
    const auto corpus = fuzz::load_corpus(PSAFLOW_CORPUS_DIR);
    ASSERT_GE(corpus.size(), 30u)
        << "VM corpus went missing from " << PSAFLOW_CORPUS_DIR;
    for (const auto& entry : corpus) {
        const auto outcome = fuzz::run_oracles(entry.source, options);
        for (const auto& f : outcome.failures)
            ADD_FAILURE() << entry.path << ": " << f.oracle << ": "
                          << f.detail;
    }
}

TEST(FuzzRegression, GeneratedProgramsPassOracles) {
    // A handful of fresh seeds beyond the stored corpus, so the suite also
    // covers the generator/oracle pair itself, not just the snapshot.
    for (const std::uint64_t seed : {501ULL, 502ULL, 503ULL}) {
        const auto program = fuzz::generate_program(seed, {});
        const auto outcome = fuzz::run_oracles(program.source, {});
        for (const auto& f : outcome.failures)
            ADD_FAILURE() << "seed " << seed << ": " << f.oracle << ": "
                          << f.detail;
    }
}

} // namespace
