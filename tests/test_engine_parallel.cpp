// Determinism and caching of the parallel flow engine: any worker count must
// produce a FlowResult byte-identical to the sequential engine, repeated
// identical interpreter runs must hit the profile cache, and the trace
// registry must record the run.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <vector>

#include "analysis/profile_cache.hpp"
#include "ast/clone.hpp"
#include "ast/walk.hpp"
#include "core/psaflow.hpp"
#include "support/cas/cas.hpp"
#include "support/trace.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using analysis::ProfileCache;
using psaflow::testing::parse_and_check;

interp::Arg integer(long long v) { return interp::Value::of_int(v); }

analysis::Workload small_workload() {
    analysis::Workload w;
    w.entry = "app";
    w.make_args = [](double scale) {
        const int n = static_cast<int>(16 * scale);
        return std::vector<interp::Arg>{
            integer(n),
            std::make_shared<interp::Buffer>(ast::Type::Double, 64, "a")};
    };
    return w;
}

constexpr const char* kSmallApp = R"(
void app(int n, double* a) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            a[i] = a[i] + a[j] * 0.5;
        }
    }
}
)";

void expect_identical(const flow::FlowResult& seq,
                      const flow::FlowResult& par, const std::string& what) {
    SCOPED_TRACE(what);
    EXPECT_DOUBLE_EQ(seq.reference_seconds, par.reference_seconds);
    EXPECT_EQ(seq.log, par.log);
    ASSERT_EQ(seq.designs.size(), par.designs.size());
    for (std::size_t i = 0; i < seq.designs.size(); ++i) {
        const auto& a = seq.designs[i];
        const auto& b = par.designs[i];
        SCOPED_TRACE("design #" + std::to_string(i) + " = " + a.name());
        EXPECT_EQ(a.name(), b.name());
        EXPECT_EQ(a.source, b.source);
        EXPECT_DOUBLE_EQ(a.hotspot_seconds, b.hotspot_seconds);
        EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
        EXPECT_DOUBLE_EQ(a.loc_delta, b.loc_delta);
        EXPECT_EQ(a.synthesizable, b.synthesizable);
        EXPECT_EQ(a.log, b.log);
    }
    // Provenance rides along with the result and must be just as
    // deterministic: same branch deliberations in the same order.
    ASSERT_EQ(seq.decisions.size(), par.decisions.size());
    for (std::size_t i = 0; i < seq.decisions.size(); ++i) {
        const auto& a = seq.decisions[i];
        const auto& b = par.decisions[i];
        SCOPED_TRACE("decision #" + std::to_string(i) + " = " + a.branch);
        EXPECT_EQ(a.branch, b.branch);
        EXPECT_EQ(a.strategy, b.strategy);
        EXPECT_EQ(a.feedback_iteration, b.feedback_iteration);
        EXPECT_EQ(a.selected, b.selected);
        EXPECT_EQ(a.rationale, b.rationale);
        ASSERT_EQ(a.candidates.size(), b.candidates.size());
        for (std::size_t j = 0; j < a.candidates.size(); ++j) {
            const auto& ca = a.candidates[j];
            const auto& cb = b.candidates[j];
            EXPECT_EQ(ca.path, cb.path);
            EXPECT_EQ(ca.selected, cb.selected);
            EXPECT_EQ(ca.excluded, cb.excluded);
            EXPECT_DOUBLE_EQ(ca.predicted_seconds, cb.predicted_seconds);
            EXPECT_DOUBLE_EQ(ca.run_cost, cb.run_cost);
            EXPECT_EQ(ca.evaluation, cb.evaluation);
        }
    }
}

// ------------------------------------------------- parallel determinism ----

class EngineDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineDeterminism, ParallelMatchesSequentialBothModes) {
    const apps::Application& app = apps::application_by_name(GetParam());
    for (flow::Mode mode : {flow::Mode::Informed, flow::Mode::Uninformed}) {
        RunOptions sequential;
        sequential.mode = mode;
        sequential.jobs = 1;
        RunOptions parallel = sequential;
        parallel.jobs = 4;

        const auto seq = compile(app, sequential);
        const auto par = compile(app, parallel);
        expect_identical(
            seq, par,
            app.name + (mode == flow::Mode::Informed ? "/informed"
                                                     : "/uninformed"));
    }
}

INSTANTIATE_TEST_SUITE_P(AllApps, EngineDeterminism,
                         ::testing::Values("nbody", "adpredictor", "kmeans",
                                           "rushlarsen", "bezier"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

TEST(EngineParallel, RepeatedRunsIdenticalUnderSharedCache) {
    // Back-to-back runs share the process-wide profile cache; the second
    // run (mostly cache hits) must still produce the identical result.
    const apps::Application& app = apps::application_by_name("nbody");
    RunOptions options;
    options.jobs = 4;
    const auto first = compile(app, options);
    const auto second = compile(app, options);
    expect_identical(first, second, "nbody repeat");
}

TEST(EngineParallel, WarmDiskCacheIdenticalAcrossJobCounts) {
    // The cold/warm contract of the content-addressed store: a run against
    // an empty store, a run served from disk, and a warm parallel run must
    // all produce byte-identical FlowResults.
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(::testing::TempDir()) / "psaflow-engine-warm-cache";
    fs::remove_all(root);
    cas::configure(root.string());
    ProfileCache::global().clear();

    const apps::Application& app = apps::application_by_name("nbody");
    RunOptions sequential;
    sequential.jobs = 1;
    const auto cold = compile(app, sequential);

    // Drop the in-memory tier so the rerun can only warm up from disk.
    ProfileCache::global().clear();
    const auto warm_seq = compile(app, sequential);
    expect_identical(cold, warm_seq, "nbody cold vs warm jobs=1");
    EXPECT_GT(ProfileCache::global().stats().disk_hits, 0u);

    ProfileCache::global().clear();
    RunOptions parallel;
    parallel.jobs = 4;
    const auto warm_par = compile(app, parallel);
    expect_identical(cold, warm_par, "nbody cold vs warm jobs=4");

    cas::configure(""); // disable disk caching for the remaining tests
    std::error_code ec;
    fs::remove_all(root, ec);
}

// ------------------------------------------------------- profile cache -----

TEST(ProfileCacheTest, SecondIdenticalRunHits) {
    auto [mod, types] = parse_and_check(kSmallApp);
    auto& cache = ProfileCache::global();
    cache.clear();
    const analysis::Workload w = small_workload();

    const auto before = cache.stats();
    const auto p1 = cache.run(*mod, types, w.entry, w.make_args(1.0));
    const auto p2 = cache.run(*mod, types, w.entry, w.make_args(1.0));
    const auto after = cache.stats();

    EXPECT_EQ(after.misses, before.misses + 1);
    EXPECT_EQ(after.hits, before.hits + 1);
    EXPECT_DOUBLE_EQ(p1.total_cost, p2.total_cost);
}

TEST(ProfileCacheTest, CloneHitsAndLoopStatsRemapOntoFreshNodeIds) {
    auto [mod, types] = parse_and_check(kSmallApp);
    auto& cache = ProfileCache::global();
    cache.clear();
    const analysis::Workload w = small_workload();

    const auto p1 = cache.run(*mod, types, w.entry, w.make_args(1.0));

    // A clone prints to identical source but carries fresh node ids.
    auto clone = ast::clone_module(*mod);
    auto clone_types = sema::check(*clone);
    const auto p2 =
        cache.run(*clone, clone_types, w.entry, w.make_args(1.0));

    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_DOUBLE_EQ(p1.total_cost, p2.total_cost);

    // The hit's loop stats must be keyed by the *clone's* For-node ids.
    int loops_found = 0;
    ast::walk(static_cast<const ast::Node&>(*clone),
              [&](const ast::Node& n) {
                  if (n.kind() == ast::NodeKind::For &&
                      p2.loops.count(n.id) != 0)
                      ++loops_found;
                  return true;
              });
    EXPECT_EQ(loops_found, 2);
}

TEST(ProfileCacheTest, MutatedModuleMisses) {
    auto [mod, types] = parse_and_check(kSmallApp);
    auto& cache = ProfileCache::global();
    cache.clear();
    const analysis::Workload w = small_workload();

    (void)cache.run(*mod, types, w.entry, w.make_args(1.0));

    // Same shape, different constant: the content hash must differ.
    auto [mutated, mutated_types] = parse_and_check(R"(
void app(int n, double* a) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            a[i] = a[i] + a[j] * 0.25;
        }
    }
}
)");
    (void)cache.run(*mutated, mutated_types, w.entry, w.make_args(1.0));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ProfileCacheTest, DifferentArgsMiss) {
    auto [mod, types] = parse_and_check(kSmallApp);
    auto& cache = ProfileCache::global();
    cache.clear();
    const analysis::Workload w = small_workload();

    (void)cache.run(*mod, types, w.entry, w.make_args(1.0));
    (void)cache.run(*mod, types, w.entry, w.make_args(2.0));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ProfileCacheTest, DisabledCacheNeverHits) {
    auto [mod, types] = parse_and_check(kSmallApp);
    auto& cache = ProfileCache::global();
    cache.clear();
    cache.set_enabled(false);
    const analysis::Workload w = small_workload();

    (void)cache.run(*mod, types, w.entry, w.make_args(1.0));
    (void)cache.run(*mod, types, w.entry, w.make_args(1.0));
    EXPECT_EQ(cache.stats().hits, 0u);
    cache.set_enabled(true);
}

// ---------------------------------------------------------------- trace ----

TEST(TraceIntegration, BranchedFlowEmitsSpansAndCacheHits) {
    auto& registry = trace::Registry::global();
    registry.set_enabled(true);
    registry.clear();
    ProfileCache::global().clear();

    RunOptions options;
    options.mode = flow::Mode::Uninformed; // 5 designs: branched flow
    options.jobs = 4;
    const auto result =
        compile(apps::application_by_name("nbody"), options);
    EXPECT_EQ(result.designs.size(), 5u);

    const auto spans = registry.spans();
    bool saw_flow = false, saw_task = false, saw_finalize = false;
    for (const auto& s : spans) {
        if (s.name.rfind("run_flow:", 0) == 0) saw_flow = true;
        if (s.name.rfind("task:", 0) == 0) saw_task = true;
        if (s.name.rfind("finalize:", 0) == 0) saw_finalize = true;
    }
    EXPECT_TRUE(saw_flow);
    EXPECT_TRUE(saw_task);
    EXPECT_TRUE(saw_finalize);

    // Uninformed branching forks identical contexts down sibling paths; the
    // re-characterisations must be served from the cache.
    EXPECT_GT(registry.counter("profile_cache.hits"), 0u);
    EXPECT_GT(registry.counter("interp.runs"), 0u);
    EXPECT_GT(registry.counter("interp.steps"), 0u);

    const std::string json = registry.to_json();
    EXPECT_NE(json.find("\"spans\""), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("profile_cache.hits"), std::string::npos);
}

TEST(TraceIntegration, ParallelFlowKeepsASingleRootedSpanTree) {
    // Pool workers adopt the submitter's sink and active span, so even a
    // jobs=4 branched flow must trace as one tree: a single root, every
    // other span's parent resolving to a recorded span, and no cycles.
    trace::Registry registry;
    registry.set_enabled(true);
    ProfileCache::global().clear();

    {
        trace::ScopedRegistry install(registry);
        RunOptions options;
        options.mode = flow::Mode::Uninformed;
        options.jobs = 4;
        const auto result =
            compile(apps::application_by_name("nbody"), options);
        EXPECT_EQ(result.designs.size(), 5u);
        EXPECT_FALSE(result.decisions.empty());
    }

    const auto spans = registry.spans();
    ASSERT_GT(spans.size(), 1u);
    std::map<std::uint64_t, std::uint64_t> parent_of;
    std::size_t roots = 0;
    for (const auto& s : spans) {
        ASSERT_NE(s.id, 0u) << s.name;
        ASSERT_TRUE(parent_of.emplace(s.id, s.parent).second)
            << "duplicate span id for " << s.name;
        if (s.parent == 0) ++roots;
    }
    EXPECT_EQ(roots, 1u);
    for (const auto& s : spans) {
        if (s.parent == 0) continue;
        EXPECT_TRUE(parent_of.count(s.parent) != 0)
            << s.name << " has an orphaned parent id";
        // Walk to the root; a cycle would spin past the span count.
        std::uint64_t cursor = s.id;
        std::size_t hops = 0;
        while (cursor != 0 && hops <= spans.size()) {
            cursor = parent_of[cursor];
            ++hops;
        }
        EXPECT_EQ(cursor, 0u) << "cycle reached from " << s.name;
    }
}

} // namespace
} // namespace psaflow
