#include <gtest/gtest.h>

#include "platform/cpu.hpp"
#include "platform/devices.hpp"
#include "platform/fpga.hpp"
#include "platform/gpu.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::platform;
using psaflow::testing::parse_and_check;

KernelShape compute_bound_shape() {
    KernelShape s;
    s.flops = 1e12;
    s.footprint_bytes = 1e6;
    s.stream_bytes = 1e6;
    s.bytes_in = 5e5;
    s.bytes_out = 5e5;
    s.parallel_iters = 1e7;
    s.double_precision = false;
    s.regs_per_thread = 32;
    return s;
}

KernelShape memory_bound_shape() {
    KernelShape s;
    s.flops = 1e8;
    s.footprint_bytes = 4e9;
    s.stream_bytes = 8e9;
    s.bytes_in = 2e9;
    s.bytes_out = 2e9;
    s.parallel_iters = 1e7;
    s.double_precision = false;
    s.regs_per_thread = 32;
    return s;
}

// ------------------------------------------------------------------ CPU ----

TEST(CpuModel, SingleThreadRoofline) {
    CpuModel cpu(epyc7543());
    const double t_compute = cpu.time_single_thread(compute_bound_shape());
    // 1e12 flops at 5.6 GF/s ~ 178 s.
    EXPECT_NEAR(t_compute, 1e12 / (2.8e9 * 2.0), 1.0);

    const double t_memory = cpu.time_single_thread(memory_bound_shape());
    EXPECT_NEAR(t_memory, 4e9 / (epyc7543().mem_bw_core_gbs * 1e9), 0.05);
}

TEST(CpuModel, MultiThreadScalesUntilBandwidth) {
    CpuModel cpu(epyc7543());
    const auto shape = compute_bound_shape();
    const double t1 = cpu.time_single_thread(shape);
    const double t32 = cpu.time_multi_thread(shape, 32);
    const double speedup = t1 / t32;
    EXPECT_GT(speedup, 25.0);
    EXPECT_LE(speedup, 32.0);

    // Memory-bound work saturates the socket: speedup well below cores.
    const auto mem = memory_bound_shape();
    const double m1 = cpu.time_single_thread(mem);
    const double m32 = cpu.time_multi_thread(mem, 32);
    EXPECT_LT(m1 / m32, 20.0);
}

TEST(CpuModel, ThreadsMonotoneUpToConcurrency) {
    CpuModel cpu(epyc7543());
    const auto shape = compute_bound_shape();
    double prev = cpu.time_multi_thread(shape, 1);
    for (int t = 2; t <= 32; t *= 2) {
        const double cur = cpu.time_multi_thread(shape, t);
        EXPECT_LT(cur, prev) << t;
        prev = cur;
    }
}

TEST(CpuModel, ConcurrencyCappedByParallelIters) {
    CpuModel cpu(epyc7543());
    auto shape = compute_bound_shape();
    shape.parallel_iters = 4.0; // only four outer iterations
    const double t4 = cpu.time_multi_thread(shape, 4);
    const double t32 = cpu.time_multi_thread(shape, 32);
    EXPECT_NEAR(t4, t32, t4 * 0.05); // extra threads buy nothing
}

TEST(CpuModel, RejectsBadThreadCount) {
    CpuModel cpu(epyc7543());
    EXPECT_THROW((void)cpu.time_multi_thread(compute_bound_shape(), 0),
                 Error);
}

// ------------------------------------------------------------------ GPU ----

TEST(GpuOccupancy, FullAtModestRegisters) {
    GpuModel gpu(rtx2080ti());
    EXPECT_NEAR(gpu.occupancy(256, 32, 0.0), 1.0, 1e-9);
}

TEST(GpuOccupancy, RegisterPressureLimits) {
    // The paper's Rush Larsen observation: 255 regs/thread saturates the
    // 1080 Ti (2048 threads/SM) but leaves the 2080 Ti (1024 threads/SM)
    // at a workable occupancy.
    GpuModel gtx(gtx1080ti());
    GpuModel rtx(rtx2080ti());
    const double occ_gtx = gtx.occupancy(64, 255, 0.0);
    const double occ_rtx = rtx.occupancy(64, 255, 0.0);
    EXPECT_LT(occ_gtx, 0.15);
    EXPECT_GT(occ_rtx, 0.2);
    EXPECT_GT(occ_rtx, occ_gtx);
}

TEST(GpuOccupancy, SharedMemoryLimits) {
    GpuModel gpu(rtx2080ti());
    const double free_occ = gpu.occupancy(256, 32, 0.0);
    const double smem_occ = gpu.occupancy(256, 32, 32.0); // 32 KB/block
    EXPECT_LT(smem_occ, free_occ);
}

TEST(GpuOccupancy, HugeBlockUnlaunchable) {
    GpuModel gpu(rtx2080ti());
    // 1024-thread blocks with 255 regs need 261k regs/SM: zero blocks fit.
    EXPECT_EQ(gpu.occupancy(1024, 255, 0.0), 0.0);
    KernelShape shape = compute_bound_shape();
    shape.regs_per_thread = 255;
    LaunchConfig config;
    config.block_size = 1024;
    const auto est = gpu.estimate(shape, config);
    EXPECT_GT(est.total_seconds, 1e20); // sentinel: unlaunchable
}

TEST(GpuModel, Fp64PaysThroughputPenalty) {
    GpuModel gpu(rtx2080ti());
    LaunchConfig config;
    auto sp = compute_bound_shape();
    auto dp = sp;
    dp.double_precision = true;
    const double t_sp = gpu.estimate(sp, config).kernel_seconds;
    const double t_dp = gpu.estimate(dp, config).kernel_seconds;
    EXPECT_GT(t_dp, 2.0 * t_sp);
}

TEST(GpuModel, PinnedMemorySpeedsTransfers) {
    GpuModel gpu(rtx2080ti());
    auto shape = memory_bound_shape();
    LaunchConfig pageable;
    LaunchConfig pinned;
    pinned.pinned_host_memory = true;
    const auto slow = gpu.estimate(shape, pageable);
    const auto fast = gpu.estimate(shape, pinned);
    EXPECT_LT(fast.transfer_seconds, slow.transfer_seconds);
    EXPECT_NEAR(slow.transfer_seconds / fast.transfer_seconds,
                rtx2080ti().pcie_pinned_bw_gbs / rtx2080ti().pcie_bw_gbs,
                0.01);
}

TEST(GpuModel, SharedMemReuseCutsMemoryTime) {
    GpuModel gpu(rtx2080ti());
    auto shape = memory_bound_shape();
    LaunchConfig config;
    const double base = gpu.estimate(shape, config).kernel_seconds;
    shape.shared_mem_reuse = 0.9;
    const double staged = gpu.estimate(shape, config).kernel_seconds;
    EXPECT_LT(staged, base * 0.5);
}

TEST(GpuModel, DependentChainsSlowCompute) {
    GpuModel gpu(rtx2080ti());
    LaunchConfig config;
    auto independent = compute_bound_shape();
    auto dependent = independent;
    dependent.dependent_fraction = 1.0;
    EXPECT_GT(gpu.estimate(dependent, config).kernel_seconds,
              3.0 * gpu.estimate(independent, config).kernel_seconds);
}

TEST(GpuModel, SmallGridsAreLatencyBoundAndDeviceSimilar) {
    // The paper's Bezier observation: when neither GPU is saturated the
    // performance difference is small.
    auto shape = compute_bound_shape();
    shape.parallel_iters = 4096; // far below resident thread counts
    shape.flops = shape.parallel_iters * 1e4;
    LaunchConfig config;
    const double t_gtx =
        GpuModel(gtx1080ti()).estimate(shape, config).kernel_seconds;
    const double t_rtx =
        GpuModel(rtx2080ti()).estimate(shape, config).kernel_seconds;
    EXPECT_LT(std::max(t_gtx, t_rtx) / std::min(t_gtx, t_rtx), 1.6);
}

// ----------------------------------------------------------------- FPGA ----

const char* kSmallKernel = R"(
void knl(int n, double* a, double* b) {
    for (int i = 0; i < n; i = i + 1) {
        a[i] = b[i] * 2.0 + 1.0;
    }
}
)";

const char* kHugeKernel = R"(
void knl(int n, double* a) {
    for (int i = 0; i < n; i = i + 1) {
        double x = a[i];
        double r = exp(x) + exp(x * 2.0) + exp(x * 3.0) + exp(x * 4.0)
                 + exp(x * 5.0) + exp(x * 6.0) + exp(x * 7.0) + exp(x * 8.0)
                 + exp(x * 9.0) + exp(x * 10.0) + exp(x * 11.0)
                 + exp(x * 12.0) + exp(x * 13.0) + exp(x * 14.0)
                 + exp(x * 15.0) + exp(x * 16.0) + exp(x * 17.0)
                 + exp(x * 18.0) + exp(x * 19.0) + exp(x * 20.0)
                 + pow(x, 3.0) + pow(x, 4.0) + pow(x, 5.0)
                 + exp(x * 21.0) + exp(x * 22.0) + exp(x * 23.0)
                 + exp(x * 24.0) + exp(x * 25.0) + exp(x * 26.0)
                 + exp(x * 27.0) + exp(x * 28.0) + exp(x * 29.0)
                 + exp(x * 30.0) + exp(x * 31.0) + exp(x * 32.0)
                 + exp(x * 33.0) + exp(x * 34.0) + exp(x * 35.0)
                 + exp(x * 36.0) + exp(x * 37.0) + exp(x * 38.0)
                 + exp(x * 39.0) + exp(x * 40.0) + exp(x * 41.0)
                 + exp(x * 42.0) + exp(x * 43.0) + exp(x * 44.0)
                 + exp(x * 45.0) + exp(x * 46.0) + exp(x * 47.0)
                 + exp(x * 48.0) + exp(x * 49.0) + exp(x * 50.0)
                 + exp(x * 51.0) + exp(x * 52.0) + exp(x * 53.0)
                 + exp(x * 54.0) + exp(x * 55.0) + exp(x * 56.0)
                 + exp(x * 57.0) + exp(x * 58.0) + exp(x * 59.0)
                 + exp(x * 60.0) + exp(x * 61.0) + exp(x * 62.0);
        a[i] = r;
    }
}
)";

TEST(FpgaModel, ResourcesScaleWithUnroll) {
    auto [mod, types] = parse_and_check(kSmallKernel);
    FpgaModel fpga(arria10());
    const auto r1 = fpga.report(*mod->find_function("knl"), types, 1);
    const auto r4 = fpga.report(*mod->find_function("knl"), types, 4);
    EXPECT_GT(r4.total_luts, r1.total_luts);
    EXPECT_NEAR(r4.total_luts - arria10().base_luts,
                4.0 * (r1.total_luts - arria10().base_luts), 1.0);
    EXPECT_FALSE(r1.overmapped);
}

TEST(FpgaModel, DoublePrecisionCostsMoreArea) {
    auto [mod, types] = parse_and_check(kSmallKernel);
    FpgaModel fpga(arria10());
    const auto dp = fpga.report(*mod->find_function("knl"), types, 1, false);
    const auto sp = fpga.report(*mod->find_function("knl"), types, 1, true);
    EXPECT_GT(dp.replica.luts, sp.replica.luts);
}

TEST(FpgaModel, HugeKernelOvermapsAtUnrollOne) {
    // The Rush Larsen scenario: a transcendental-saturated kernel exceeds
    // the Arria10 even without replication.
    auto [mod, types] = parse_and_check(kHugeKernel);
    FpgaModel fpga(arria10());
    const auto report =
        fpga.report(*mod->find_function("knl"), types, 1, false);
    EXPECT_TRUE(report.overmapped);
}

TEST(FpgaModel, StratixIsLargerThanArria) {
    auto [mod, types] = parse_and_check(kHugeKernel);
    const auto a10 =
        FpgaModel(arria10()).report(*mod->find_function("knl"), types, 1,
                                    true);
    const auto s10 =
        FpgaModel(stratix10()).report(*mod->find_function("knl"), types, 1,
                                      true);
    EXPECT_GT(a10.lut_utilisation, s10.lut_utilisation);
}

TEST(FpgaModel, LocalArraysUseBram) {
    auto [mod, types] = parse_and_check(R"(
void knl(int n, double* a) {
    for (int i = 0; i < n; i = i + 1) {
        double scratch[4096];
        scratch[0] = a[i];
        a[i] = scratch[0];
    }
}
)");
    FpgaModel fpga(arria10());
    const auto report = fpga.report(*mod->find_function("knl"), types, 1);
    EXPECT_GE(report.replica.bram_kb, 32.0); // 4096 doubles = 32 KB
}

TEST(FpgaModel, PipelineTimeDropsWithUnroll) {
    auto [mod, types] = parse_and_check(kSmallKernel);
    FpgaModel fpga(stratix10());
    KernelShape shape;
    shape.flops = 1e9;
    shape.parallel_iters = 1e8;
    shape.fpga_stream_bytes = 0.0;
    shape.bytes_in = 0.0;
    shape.bytes_out = 0.0;

    const auto r1 = fpga.report(*mod->find_function("knl"), types, 1);
    const auto r8 = fpga.report(*mod->find_function("knl"), types, 8);
    const double t1 = fpga.estimate(shape, r1).kernel_seconds;
    const double t8 = fpga.estimate(shape, r8).kernel_seconds;
    EXPECT_NEAR(t1 / t8, 8.0, 0.5);
}

TEST(FpgaModel, OvermappedDesignGetsSentinelTime) {
    auto [mod, types] = parse_and_check(kHugeKernel);
    FpgaModel fpga(arria10());
    const auto report = fpga.report(*mod->find_function("knl"), types, 1);
    KernelShape shape;
    shape.flops = 1e9;
    EXPECT_GT(fpga.estimate(shape, report).total_seconds, 1e20);
}

TEST(FpgaModel, UsmOverlapsTransfers) {
    auto [mod, types] = parse_and_check(kSmallKernel);
    KernelShape shape;
    shape.flops = 1e9;
    shape.parallel_iters = 1e6;
    shape.bytes_in = 4e9;
    shape.bytes_out = 1e9;
    shape.fpga_stream_bytes = 5e9;

    const auto a10_rep =
        FpgaModel(arria10()).report(*mod->find_function("knl"), types, 1);
    const auto a10 = FpgaModel(arria10()).estimate(shape, a10_rep);
    // Arria10: bulk PCIe copies add to kernel time.
    EXPECT_GT(a10.transfer_seconds, 0.0);
    EXPECT_NEAR(a10.transfer_seconds, 5e9 / (arria10().pcie_bw_gbs * 1e9),
                1e-3);

    const auto s10_rep =
        FpgaModel(stratix10()).report(*mod->find_function("knl"), types, 1);
    const auto s10 = FpgaModel(stratix10()).estimate(shape, s10_rep);
    // Stratix10 USM: no separate transfer phase; accesses overlap compute.
    EXPECT_EQ(s10.transfer_seconds, 0.0);
    EXPECT_LT(s10.total_seconds, a10.total_seconds);
}

TEST(Devices, RegistryLookups) {
    EXPECT_EQ(gpu_spec(DeviceId::Gtx1080Ti).name, gtx1080ti().name);
    EXPECT_EQ(fpga_spec(DeviceId::Stratix10).name, stratix10().name);
    EXPECT_THROW((void)gpu_spec(DeviceId::Arria10), Error);
    EXPECT_THROW((void)fpga_spec(DeviceId::Rtx2080Ti), Error);
    EXPECT_TRUE(stratix10().supports_usm);
    EXPECT_FALSE(arria10().supports_usm);
}

} // namespace
} // namespace psaflow
