// Observability subsystem tests: the structured logger's ring and levels,
// Prometheus text exposition, the Chrome trace-event exporter, and the
// decision-provenance documents.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/decision.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/prometheus.hpp"
#include "support/histogram.hpp"
#include "support/json.hpp"
#include "support/trace.hpp"

namespace psaflow {
namespace {

// ----------------------------------------------------------------- logger ----

TEST(LogLevel, ParseAndPrintRoundTrip) {
    using obs::LogLevel;
    for (LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Error, LogLevel::Off}) {
        const auto parsed = obs::parse_log_level(obs::to_string(level));
        ASSERT_TRUE(parsed.has_value()) << obs::to_string(level);
        EXPECT_EQ(*parsed, level);
    }
    EXPECT_FALSE(obs::parse_log_level("loud").has_value());
    EXPECT_FALSE(obs::parse_log_level("").has_value());
}

TEST(Logger, CaptureLevelFiltersRecords) {
    obs::Logger logger(8);
    logger.set_level(obs::LogLevel::Warn);
    logger.set_echo_level(obs::LogLevel::Off);
    EXPECT_FALSE(logger.enabled(obs::LogLevel::Info));
    EXPECT_TRUE(logger.enabled(obs::LogLevel::Error));
    logger.log(obs::LogLevel::Info, "test", "dropped by level");
    logger.log(obs::LogLevel::Warn, "test", "kept");
    const auto records = logger.recent();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].message, "kept");
}

TEST(Logger, RingWrapsKeepingNewestAndCountsDropped) {
    obs::Logger logger(4);
    logger.set_level(obs::LogLevel::Trace);
    logger.set_echo_level(obs::LogLevel::Off);
    for (int i = 0; i < 10; ++i)
        logger.log(obs::LogLevel::Info, "test", "m" + std::to_string(i));
    EXPECT_EQ(logger.total(), 10u);
    EXPECT_EQ(logger.dropped(), 6u);
    const auto records = logger.recent();
    ASSERT_EQ(records.size(), 4u);
    // Oldest-first snapshot of the surviving tail, monotonically sequenced.
    EXPECT_EQ(records[0].message, "m6");
    EXPECT_EQ(records[3].message, "m9");
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_GT(records[i].seq, records[i - 1].seq);
}

TEST(Logger, RecentHonoursMaxAndMinLevel) {
    obs::Logger logger(16);
    logger.set_level(obs::LogLevel::Trace);
    logger.set_echo_level(obs::LogLevel::Off);
    logger.log(obs::LogLevel::Debug, "test", "d1");
    logger.log(obs::LogLevel::Warn, "test", "w1");
    logger.log(obs::LogLevel::Debug, "test", "d2");
    logger.log(obs::LogLevel::Error, "test", "e1");
    const auto warnings = logger.recent(10, obs::LogLevel::Warn);
    ASSERT_EQ(warnings.size(), 2u);
    EXPECT_EQ(warnings[0].message, "w1");
    EXPECT_EQ(warnings[1].message, "e1");
    // max trims from the front: the newest records win.
    const auto last_two = logger.recent(2);
    ASSERT_EQ(last_two.size(), 2u);
    EXPECT_EQ(last_two[0].message, "d2");
    EXPECT_EQ(last_two[1].message, "e1");
}

TEST(Logger, LineRenderingQuotesAwkwardFieldValues) {
    obs::LogRecord record;
    record.wall_ms = 0;
    record.level = obs::LogLevel::Warn;
    record.component = "cas";
    record.message = "corrupt cache entry evicted";
    record.fields = {{"path", "/tmp/a b"}, {"bytes", "128"}};
    const std::string line = record.to_line();
    EXPECT_NE(line.find("1970-01-01T00:00:00.000Z"), std::string::npos);
    EXPECT_NE(line.find("warn cas: corrupt cache entry evicted"),
              std::string::npos);
    EXPECT_NE(line.find("path=\"/tmp/a b\""), std::string::npos);
    EXPECT_NE(line.find("bytes=128"), std::string::npos);
}

// ------------------------------------------------------------- prometheus ----

TEST(Prometheus, SanitizesDottedCounterNames) {
    EXPECT_EQ(obs::sanitize_metric_name("cache.profile.hit", "psaflow_"),
              "psaflow_cache_profile_hit");
    EXPECT_EQ(obs::sanitize_metric_name("9lives", ""), "_9lives");
    EXPECT_EQ(obs::sanitize_metric_name("a-b c", "x_"), "x_a_b_c");
}

TEST(Prometheus, HeadersEmittedOncePerMetricName) {
    obs::PrometheusRenderer renderer;
    renderer.counter("psaflowd_requests_total", "Requests by outcome", 3,
                     {{"outcome", "completed"}});
    renderer.counter("psaflowd_requests_total", "Requests by outcome", 1,
                     {{"outcome", "failed"}});
    const std::string& text = renderer.text();
    std::size_t first = text.find("# TYPE psaflowd_requests_total counter");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(
        text.find("# TYPE psaflowd_requests_total counter", first + 1),
        std::string::npos);
    EXPECT_NE(
        text.find("psaflowd_requests_total{outcome=\"completed\"} 3"),
        std::string::npos);
    EXPECT_NE(text.find("psaflowd_requests_total{outcome=\"failed\"} 1"),
              std::string::npos);
}

TEST(Prometheus, HistogramSeriesIsCumulativeWithSumAndCount) {
    Histogram hist;
    hist.record(1);
    hist.record(1);
    hist.record(100);
    obs::PrometheusRenderer renderer;
    renderer.histogram("lat_us", "latency", hist);
    const std::string& text = renderer.text();
    EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
    // Bucket upper bounds are exact inclusive caps (2^b - 1), cumulative.
    EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 2"), std::string::npos);
    EXPECT_NE(text.find("lat_us_bucket{le=\"127\"} 3"), std::string::npos);
    EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("lat_us_sum 102"), std::string::npos);
    EXPECT_NE(text.find("lat_us_count 3"), std::string::npos);
}

TEST(Prometheus, RenderCountersCoversTheWholeMap) {
    const std::map<std::string, std::uint64_t> counters = {
        {"flow.runs", 2}, {"interp.steps", 12345}};
    const std::string text = obs::render_counters(counters);
    EXPECT_NE(text.find("psaflow_flow_runs 2"), std::string::npos);
    EXPECT_NE(text.find("psaflow_interp_steps 12345"), std::string::npos);
}

TEST(Prometheus, EscapesLabelValuesPerTextFormat) {
    // text-format 0.0.4: backslash, double quote and newline must be
    // escaped inside label values — shard names and endpoints are
    // operator-controlled strings, so the exposition can't assume.
    obs::PrometheusRenderer renderer;
    renderer.gauge("awkward", "help", 1.0,
                   {{"shard", "a\\b\"c\nd"}});
    const std::string text = renderer.text();
    EXPECT_NE(text.find("awkward{shard=\"a\\\\b\\\"c\\nd\"} 1"),
              std::string::npos);
}

TEST(Prometheus, NonFiniteValuesRenderPerTextFormat) {
    obs::PrometheusRenderer renderer;
    renderer.gauge("not_a_number", "help",
                   std::numeric_limits<double>::quiet_NaN());
    renderer.gauge("too_big", "help",
                   std::numeric_limits<double>::infinity());
    renderer.gauge("too_small", "help",
                   -std::numeric_limits<double>::infinity());
    const std::string text = renderer.text();
    EXPECT_NE(text.find("not_a_number NaN"), std::string::npos);
    EXPECT_NE(text.find("too_big +Inf"), std::string::npos);
    EXPECT_NE(text.find("too_small -Inf"), std::string::npos);
}

TEST(Prometheus, LabeledHistogramSeriesCoexistAndSumExactly) {
    // The router's cluster exposition re-renders each shard's histogram
    // under one metric name with shard labels; the per-label +Inf counts
    // must add up to the merged (label-free) histogram's count.
    Histogram a, b, merged;
    a.record(3);
    a.record(5);
    b.record(300);
    merged.merge(a);
    merged.merge(b);

    obs::PrometheusRenderer renderer;
    renderer.histogram("shard_lat", "latency", a, {{"shard", "a"}});
    renderer.histogram("shard_lat", "latency", b, {{"shard", "b"}});
    renderer.histogram("fleet_lat", "merged latency", merged);
    const std::string text = renderer.text();
    EXPECT_NE(text.find("shard_lat_bucket{shard=\"a\",le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("shard_lat_bucket{shard=\"b\",le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("fleet_lat_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    // One HELP/TYPE header despite two label sets.
    EXPECT_EQ(text.find("# TYPE shard_lat histogram"),
              text.rfind("# TYPE shard_lat histogram"));
}

// -------------------------------------------------------- flight recorder ----

TEST(Flight, RecordsStampSequenceAndSnapshotOldestFirst) {
    obs::FlightRecorder recorder(8);
    for (int i = 1; i <= 3; ++i) {
        obs::FlightRecord record;
        record.total_us = static_cast<std::uint64_t>(i) * 100;
        record.set_app("nbody");
        record.set_status("ok");
        recorder.record(record);
    }
    EXPECT_EQ(recorder.total(), 3u);
    EXPECT_EQ(recorder.dropped(), 0u);
    const auto snapshot = recorder.snapshot();
    ASSERT_EQ(snapshot.size(), 3u);
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        EXPECT_EQ(snapshot[i].seq, i + 1);
        EXPECT_EQ(snapshot[i].total_us, (i + 1) * 100);
        EXPECT_EQ(std::string(snapshot[i].app), "nbody");
    }
}

TEST(Flight, RingKeepsTheNewestWhenLapped) {
    obs::FlightRecorder recorder(4);
    for (std::uint64_t i = 1; i <= 10; ++i) {
        obs::FlightRecord record;
        record.trace_id = i;
        recorder.record(record);
    }
    EXPECT_EQ(recorder.total(), 10u);
    const auto snapshot = recorder.snapshot();
    ASSERT_EQ(snapshot.size(), 4u);
    for (std::size_t i = 0; i < snapshot.size(); ++i)
        EXPECT_EQ(snapshot[i].seq, 7 + i); // oldest-first, newest retained

    const auto newest = recorder.snapshot(/*max_records=*/2);
    ASSERT_EQ(newest.size(), 2u);
    EXPECT_EQ(newest[0].seq, 9u);
    EXPECT_EQ(newest[1].seq, 10u);
}

TEST(Flight, SloBreachIsFlaggedAndCounted) {
    obs::FlightRecorder recorder(8);
    recorder.set_slo_us(1000);
    obs::FlightRecord fast;
    fast.total_us = 500;
    recorder.record(fast);
    obs::FlightRecord slow;
    slow.total_us = 5000;
    recorder.record(slow);
    EXPECT_EQ(recorder.breaches(), 1u);
    const auto snapshot = recorder.snapshot();
    ASSERT_EQ(snapshot.size(), 2u);
    EXPECT_EQ(snapshot[0].slo_breach, 0u);
    EXPECT_EQ(snapshot[1].slo_breach, 1u);
}

TEST(Flight, ToJsonCarriesHexTraceIdAndTimings) {
    obs::FlightRecord record;
    record.trace_id = 0xabcULL;
    record.seq = 7;
    record.queue_wait_us = 10;
    record.exec_us = 20;
    record.total_us = 30;
    record.retries = 2;
    record.cache_hits = 3;
    record.set_lane("interactive");
    record.set_shard("127.0.0.1:7401");
    record.set_app("nbody");
    record.set_winner("simd");
    record.set_status("ok");

    const json::Value doc = obs::to_json(record);
    EXPECT_EQ(doc.find("trace_id")->string_or(""), "0000000000000abc");
    EXPECT_EQ(doc.find("seq")->number_or(0.0), 7.0);
    EXPECT_EQ(doc.find("queue_wait_us")->number_or(0.0), 10.0);
    EXPECT_EQ(doc.find("exec_us")->number_or(0.0), 20.0);
    EXPECT_EQ(doc.find("total_us")->number_or(0.0), 30.0);
    EXPECT_EQ(doc.find("retries")->number_or(0.0), 2.0);
    EXPECT_EQ(doc.find("cache_hits")->number_or(0.0), 3.0);
    EXPECT_EQ(doc.find("lane")->string_or(""), "interactive");
    EXPECT_EQ(doc.find("shard")->string_or(""), "127.0.0.1:7401");
    EXPECT_EQ(doc.find("app")->string_or(""), "nbody");
    EXPECT_EQ(doc.find("winner")->string_or(""), "simd");
    EXPECT_EQ(doc.find("status")->string_or(""), "ok");
    EXPECT_FALSE(doc.find("slo_breach")->bool_or(true));
}

TEST(Flight, OverlongFieldsTruncateWithoutOverflow) {
    obs::FlightRecord record;
    record.set_app(std::string(100, 'x'));
    record.set_status(std::string(100, 'y'));
    EXPECT_EQ(std::string(record.app).size(), sizeof record.app - 1);
    EXPECT_EQ(std::string(record.status).size(),
              sizeof record.status - 1);
}

TEST(Flight, WraparoundUnderConcurrentWritersStaysConsistent) {
    // The tsan target: writers lapping a small ring while a reader
    // snapshots mid-flight. Each record carries a self-consistency
    // relation (exec = 5*trace, queue = 3*trace) so any torn read —
    // half one record, half another — is detected, not just data races.
    obs::FlightRecorder recorder(8);
    constexpr int kWriters = 4;
    constexpr std::uint64_t kPerWriter = 2000;

    std::atomic<bool> stop{false};
    std::thread reader([&recorder, &stop] {
        while (!stop.load()) {
            for (const obs::FlightRecord& record : recorder.snapshot()) {
                ASSERT_EQ(record.queue_wait_us, record.trace_id * 3);
                ASSERT_EQ(record.exec_us, record.trace_id * 5);
            }
        }
    });
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&recorder, w] {
            for (std::uint64_t i = 0; i < kPerWriter; ++i) {
                const std::uint64_t k =
                    static_cast<std::uint64_t>(w) * kPerWriter + i + 1;
                obs::FlightRecord record;
                record.trace_id = k;
                record.queue_wait_us = k * 3;
                record.exec_us = k * 5;
                record.set_status("ok");
                recorder.record(record);
            }
        });
    for (std::thread& writer : writers) writer.join();
    stop.store(true);
    reader.join();

    EXPECT_EQ(recorder.total(), kWriters * kPerWriter);
    const auto snapshot = recorder.snapshot();
    EXPECT_LE(snapshot.size(), recorder.capacity());
    EXPECT_FALSE(snapshot.empty());
    for (const obs::FlightRecord& record : snapshot) {
        EXPECT_EQ(record.queue_wait_us, record.trace_id * 3);
        EXPECT_EQ(record.exec_us, record.trace_id * 5);
    }
    // Seqlock slot collisions may drop records, never corrupt them.
    EXPECT_LE(recorder.dropped(), recorder.total());
}

// ----------------------------------------------------------- chrome trace ----

TEST(ChromeTrace, EmitsMetadataAndCompleteEventsWithCausality) {
    std::vector<trace::Span> spans;
    trace::Span root;
    root.name = "flow:nbody";
    root.category = "flow";
    root.id = 7;
    root.parent = 0;
    root.thread = 0;
    root.start_us = 10;
    root.duration_us = 500;
    trace::Span child = root;
    child.name = "task:identify-hotspot-loops";
    child.category = "task";
    child.id = 8;
    child.parent = 7;
    child.thread = 1;
    child.start_us = 20;
    child.duration_us = 100;
    child.work_units = 3.0;
    spans = {child, root}; // deliberately out of order

    const std::string document = obs::to_chrome_json(spans, "unit");
    std::string error;
    const auto doc = json::parse(document, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->find("displayTimeUnit")->string_or(""), "ms");

    const json::Value* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());

    std::size_t metadata = 0;
    std::vector<const json::Value*> complete;
    for (const json::Value& event : events->elements) {
        const std::string ph = event.find("ph")->string_or("");
        if (ph == "M") {
            ++metadata;
            continue;
        }
        ASSERT_EQ(ph, "X");
        complete.push_back(&event);
    }
    EXPECT_GE(metadata, 2u); // process name + at least one thread name
    ASSERT_EQ(complete.size(), 2u);
    // Sorted by start time: the root must come first despite input order.
    EXPECT_EQ(complete[0]->find("name")->string_or(""), "flow:nbody");
    EXPECT_EQ(complete[0]->find("ts")->number_or(-1), 10.0);
    EXPECT_EQ(complete[0]->find("dur")->number_or(-1), 500.0);
    const json::Value* args = complete[1]->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("span_id")->number_or(0), 8.0);
    EXPECT_EQ(args->find("parent_id")->number_or(0), 7.0);
    EXPECT_EQ(args->find("work_units")->number_or(0), 3.0);
}

// -------------------------------------------------------------- decisions ----

[[nodiscard]] obs::DecisionRecord sample_record() {
    obs::DecisionRecord record;
    record.branch = "A (target)";
    record.strategy = "informed (Fig. 3)";
    record.feedback_iteration = 1;
    obs::DecisionCandidate gpu;
    gpu.path = "gpu";
    gpu.selected = true;
    gpu.predicted_seconds = 0.5;
    gpu.run_cost = 0.001;
    gpu.evaluation = "Fig. 3 choice: CPU+GPU";
    obs::DecisionCandidate fpga;
    fpga.path = "fpga";
    fpga.excluded = true;
    fpga.evaluation = "excluded by cost-budget feedback";
    record.candidates = {gpu, fpga};
    record.selected = {"gpu"};
    record.rationale = "Fig. 3 selected CPU+GPU";
    return record;
}

TEST(Decisions, JsonReportCarriesEveryCandidateAndTheWinner) {
    const json::Value report =
        obs::decisions_json("nbody", "informed", {sample_record()});
    EXPECT_EQ(report.find("schema_version")->number_or(0), 1.0);
    EXPECT_EQ(report.find("app")->string_or(""), "nbody");
    EXPECT_EQ(report.find("mode")->string_or(""), "informed");
    const json::Value* decisions = report.find("decisions");
    ASSERT_NE(decisions, nullptr);
    ASSERT_EQ(decisions->elements.size(), 1u);
    const json::Value& decision = decisions->elements[0];
    EXPECT_EQ(decision.find("branch")->string_or(""), "A (target)");
    EXPECT_EQ(decision.find("strategy")->string_or(""), "informed (Fig. 3)");
    EXPECT_EQ(decision.find("feedback_iteration")->number_or(-1), 1.0);
    const json::Value* candidates = decision.find("candidates");
    ASSERT_NE(candidates, nullptr);
    ASSERT_EQ(candidates->elements.size(), 2u);
    const json::Value& gpu = candidates->elements[0];
    EXPECT_TRUE(gpu.find("selected")->bool_or(false));
    EXPECT_EQ(gpu.find("predicted_seconds")->number_or(0), 0.5);
    EXPECT_EQ(gpu.find("run_cost_usd")->number_or(0), 0.001);
    const json::Value& fpga = candidates->elements[1];
    EXPECT_TRUE(fpga.find("excluded")->bool_or(false));
    // Unevaluated candidates omit the cost members rather than emitting -1.
    EXPECT_EQ(fpga.find("predicted_seconds"), nullptr);
    const json::Value* selected = decision.find("selected");
    ASSERT_NE(selected, nullptr);
    ASSERT_EQ(selected->elements.size(), 1u);
    EXPECT_EQ(selected->elements[0].string_or(""), "gpu");
}

TEST(Decisions, MarkdownReportNamesBranchStrategyAndVerdicts) {
    const std::string report =
        obs::decisions_markdown("nbody", "informed", {sample_record()});
    EXPECT_NE(report.find("# Flow decisions: nbody (informed)"),
              std::string::npos);
    EXPECT_NE(report.find("Branch A (target)"), std::string::npos);
    EXPECT_NE(report.find("`informed (Fig. 3)`"), std::string::npos);
    EXPECT_NE(report.find("**selected**"), std::string::npos);
    EXPECT_NE(report.find("excluded by cost-budget feedback"),
              std::string::npos);
    EXPECT_NE(report.find("Fig. 3 selected CPU+GPU"), std::string::npos);
}

TEST(Decisions, EmptyReportsStayWellFormed) {
    const json::Value report = obs::decisions_json("app", "uninformed", {});
    ASSERT_NE(report.find("decisions"), nullptr);
    EXPECT_TRUE(report.find("decisions")->elements.empty());
    const std::string markdown =
        obs::decisions_markdown("app", "uninformed", {});
    EXPECT_NE(markdown.find("No branch points were reached."),
              std::string::npos);
}

} // namespace
} // namespace psaflow
