// Serving-layer tests: framing, protocol, admission queue, cancellation,
// the shared request executor, and a full in-process daemon end-to-end.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "flow/manifest.hpp"
#include "flow/standard_flow.hpp"
#include "obs/flight.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire_trace.hpp"
#include "support/cancel.hpp"
#include "support/histogram.hpp"
#include "support/net.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace psaflow {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- framing ----

TEST(Net, FrameRoundTrip) {
    net::Fd a, b;
    ASSERT_TRUE(net::socket_pair(a, b));
    const std::string message = "{\"type\":\"ping\"}";
    ASSERT_TRUE(net::write_frame(a.get(), message));

    std::string payload;
    EXPECT_EQ(net::read_frame(b.get(), payload), net::FrameStatus::Ok);
    EXPECT_EQ(payload, message);
}

TEST(Net, FrameSurvivesDribbledOneByteWrites) {
    net::Fd a, b;
    ASSERT_TRUE(net::socket_pair(a, b));
    const std::string message = "dribbled payload";

    std::thread writer([&] {
        // Rebuild the frame by hand and push it one byte at a time, so the
        // reader sees maximally torn reads.
        std::string frame;
        const std::uint32_t magic = net::kFrameMagic;
        const std::uint32_t length =
            static_cast<std::uint32_t>(message.size());
        for (int i = 0; i < 4; ++i)
            frame.push_back(static_cast<char>((magic >> (8 * i)) & 0xff));
        for (int i = 0; i < 4; ++i)
            frame.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
        frame += message;
        for (char c : frame) {
            ASSERT_TRUE(net::write_exact(a.get(), &c, 1));
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        a.reset();
    });

    std::string payload;
    EXPECT_EQ(net::read_frame(b.get(), payload), net::FrameStatus::Ok);
    EXPECT_EQ(payload, message);
    writer.join();
}

TEST(Net, CleanCloseIsEofTruncatedFrameIsTorn) {
    {
        net::Fd a, b;
        ASSERT_TRUE(net::socket_pair(a, b));
        a.reset(); // close without sending anything
        std::string payload;
        EXPECT_EQ(net::read_frame(b.get(), payload), net::FrameStatus::Eof);
    }
    {
        net::Fd a, b;
        ASSERT_TRUE(net::socket_pair(a, b));
        // Half a header, then close.
        const char half[4] = {'F', 'A', 'S', 'P'};
        ASSERT_TRUE(net::write_exact(a.get(), half, sizeof half));
        a.reset();
        std::string payload;
        EXPECT_EQ(net::read_frame(b.get(), payload), net::FrameStatus::Torn);
    }
    {
        net::Fd a, b;
        ASSERT_TRUE(net::socket_pair(a, b));
        // A full header promising bytes that never arrive.
        std::string frame;
        const std::uint32_t magic = net::kFrameMagic;
        const std::uint32_t length = 64;
        for (int i = 0; i < 4; ++i)
            frame.push_back(static_cast<char>((magic >> (8 * i)) & 0xff));
        for (int i = 0; i < 4; ++i)
            frame.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
        frame += "only a few bytes";
        ASSERT_TRUE(net::write_exact(a.get(), frame.data(), frame.size()));
        a.reset();
        std::string payload;
        EXPECT_EQ(net::read_frame(b.get(), payload), net::FrameStatus::Torn);
    }
}

TEST(Net, BadMagicAndOversizedLengthAreRejected) {
    {
        net::Fd a, b;
        ASSERT_TRUE(net::socket_pair(a, b));
        const char junk[8] = {'j', 'u', 'n', 'k', 0, 0, 0, 1};
        ASSERT_TRUE(net::write_exact(a.get(), junk, sizeof junk));
        std::string payload;
        EXPECT_EQ(net::read_frame(b.get(), payload), net::FrameStatus::Torn);
    }
    {
        net::Fd a, b;
        ASSERT_TRUE(net::socket_pair(a, b));
        std::string frame;
        const std::uint32_t magic = net::kFrameMagic;
        const std::uint32_t length = net::kMaxFramePayload + 1;
        for (int i = 0; i < 4; ++i)
            frame.push_back(static_cast<char>((magic >> (8 * i)) & 0xff));
        for (int i = 0; i < 4; ++i)
            frame.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
        ASSERT_TRUE(net::write_exact(a.get(), frame.data(), frame.size()));
        std::string payload;
        EXPECT_EQ(net::read_frame(b.get(), payload),
                  net::FrameStatus::TooLarge);
    }
}

TEST(Net, PipelinedFramesReadBackInOrder) {
    net::Fd a, b;
    ASSERT_TRUE(net::socket_pair(a, b));
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(net::write_frame(a.get(), "frame-" + std::to_string(i)));
    for (int i = 0; i < 16; ++i) {
        std::string payload;
        ASSERT_EQ(net::read_frame(b.get(), payload), net::FrameStatus::Ok);
        EXPECT_EQ(payload, "frame-" + std::to_string(i));
    }
}

// -------------------------------------------------------------- histogram ----

TEST(Histogram, RecordsCountsSumsAndExtremes) {
    Histogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.percentile(50), 0u);
    for (std::uint64_t v : {3u, 5u, 1000u, 0u}) hist.record(v);
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_EQ(hist.sum(), 1008u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 1000u);
}

TEST(Histogram, PercentilesClampToObservedRange) {
    Histogram hist;
    for (int i = 0; i < 100; ++i) hist.record(100);
    // All mass in one bucket: every percentile must report a value between
    // min and the bucket cap, clamped to max.
    EXPECT_EQ(hist.percentile(0), 100u);
    EXPECT_EQ(hist.percentile(100), 100u);
    EXPECT_LE(hist.percentile(50), 127u);
    EXPECT_GE(hist.percentile(50), 100u);
}

TEST(Histogram, MergeIsPointwise) {
    Histogram a, b;
    a.record(10);
    b.record(1000);
    b.record(2);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.sum(), 1012u);
    EXPECT_EQ(a.min(), 2u);
    EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, EmptyReportsZerosEverywhere) {
    const Histogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.sum(), 0u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 0u);
    EXPECT_EQ(hist.mean(), 0.0);
    for (double p : {0.0, 50.0, 99.0, 100.0})
        EXPECT_EQ(hist.percentile(p), 0u);
}

TEST(Histogram, ZeroSamplesLandInBucketZero) {
    Histogram hist;
    hist.record(0);
    hist.record(0);
    EXPECT_EQ(hist.bucket_count(0), 2u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 0u);
    EXPECT_EQ(hist.percentile(50), 0u);
    EXPECT_EQ(hist.percentile(100), 0u);
}

TEST(Histogram, MaxSampleLandsInTheOverflowBucket) {
    Histogram hist;
    hist.record(UINT64_MAX);
    EXPECT_EQ(hist.bucket_count(Histogram::kBuckets - 1), 1u);
    EXPECT_EQ(hist.max(), UINT64_MAX);
    EXPECT_EQ(hist.percentile(100), UINT64_MAX);
    EXPECT_EQ(hist.percentile(0), UINT64_MAX); // clamped to recorded min
}

TEST(Histogram, BucketFloorsArePowersOfTwo) {
    EXPECT_EQ(Histogram::bucket_floor(0), 0u);
    EXPECT_EQ(Histogram::bucket_floor(1), 1u);
    EXPECT_EQ(Histogram::bucket_floor(2), 2u);
    EXPECT_EQ(Histogram::bucket_floor(10), 512u);
}

TEST(Histogram, MergeOfTwoEmptiesStaysEmpty) {
    Histogram a;
    const Histogram b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.sum(), 0u);
    EXPECT_EQ(a.min(), 0u);
    EXPECT_EQ(a.max(), 0u);
    EXPECT_EQ(a.percentile(99), 0u);
}

TEST(Histogram, MergeDisjointBucketsKeepsBothPopulations) {
    Histogram a, b;
    a.record(1);
    a.record(1);
    b.record(std::uint64_t{1} << 20);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.bucket_count(1), 2u);
    EXPECT_EQ(a.bucket_count(21), 1u); // floor 2^20 lives in bucket 21
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), std::uint64_t{1} << 20);
}

TEST(Histogram, MergeSaturatesCountsInsteadOfWrapping) {
    // from_parts can express counts no realistic record() loop could;
    // merging two such histograms must pin at UINT64_MAX, not wrap to 0.
    Histogram::Parts parts;
    parts.count = UINT64_MAX;
    parts.sum = UINT64_MAX;
    parts.min = 1;
    parts.max = 1;
    parts.buckets = {{1, UINT64_MAX}};
    Histogram a = Histogram::from_parts(parts);
    const Histogram b = Histogram::from_parts(parts);
    a.merge(b);
    EXPECT_EQ(a.count(), UINT64_MAX);
    EXPECT_EQ(a.sum(), UINT64_MAX);
    EXPECT_EQ(a.bucket_count(1), UINT64_MAX);
}

TEST(Histogram, MergedPercentilesMatchPooledSamples) {
    // Merging per-shard histograms must answer percentile queries exactly
    // as if every sample had been recorded into one histogram.
    Histogram a, b, merged, pooled;
    for (std::uint64_t v = 0; v < 500; ++v) {
        a.record(v);
        pooled.record(v);
    }
    for (std::uint64_t v = 5000; v < 5500; ++v) {
        b.record(v);
        pooled.record(v);
    }
    merged.merge(a);
    merged.merge(b);
    for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 100.0})
        EXPECT_EQ(merged.percentile(p), pooled.percentile(p)) << p;
}

TEST(Histogram, FromPartsRebuildsExactBucketCounts) {
    Histogram original;
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{3}, std::uint64_t{700},
                            std::uint64_t{900}, std::uint64_t{1} << 30})
        original.record(v);

    Histogram::Parts parts;
    parts.count = original.count();
    parts.sum = original.sum();
    parts.min = original.min();
    parts.max = original.max();
    for (int b = 0; b < Histogram::kBuckets; ++b)
        if (original.bucket_count(b) != 0)
            parts.buckets.emplace_back(Histogram::bucket_floor(b),
                                       original.bucket_count(b));

    const Histogram rebuilt = Histogram::from_parts(parts);
    EXPECT_EQ(rebuilt.count(), original.count());
    EXPECT_EQ(rebuilt.sum(), original.sum());
    EXPECT_EQ(rebuilt.min(), original.min());
    EXPECT_EQ(rebuilt.max(), original.max());
    for (int b = 0; b < Histogram::kBuckets; ++b)
        EXPECT_EQ(rebuilt.bucket_count(b), original.bucket_count(b)) << b;
    for (double p : {50.0, 90.0, 99.0})
        EXPECT_EQ(rebuilt.percentile(p), original.percentile(p)) << p;
}

TEST(Histogram, FromPartsOfNothingIsEmpty) {
    const Histogram rebuilt = Histogram::from_parts(Histogram::Parts{});
    EXPECT_EQ(rebuilt.count(), 0u);
    EXPECT_EQ(rebuilt.min(), 0u); // not the internal UINT64_MAX sentinel
    EXPECT_EQ(rebuilt.percentile(50), 0u);
}

// ------------------------------------------------------------------ queue ----

TEST(BoundedQueue, RejectsWhenFullAndRecoversAfterPop) {
    serve::BoundedQueue<int> queue(2);
    EXPECT_TRUE(queue.try_push(1));
    EXPECT_TRUE(queue.try_push(2));
    EXPECT_FALSE(queue.try_push(3)); // full: the backpressure signal
    EXPECT_EQ(queue.depth(), 2u);
    EXPECT_EQ(queue.pop().value(), 1);
    EXPECT_TRUE(queue.try_push(3));
}

TEST(BoundedQueue, CloseDrainsAdmittedItemsThenSignalsExit) {
    serve::BoundedQueue<int> queue(4);
    EXPECT_TRUE(queue.try_push(1));
    EXPECT_TRUE(queue.try_push(2));
    queue.close();
    EXPECT_FALSE(queue.try_push(3)); // no admissions after close
    EXPECT_EQ(queue.pop().value(), 1);
    EXPECT_EQ(queue.pop().value(), 2);
    EXPECT_FALSE(queue.pop().has_value()); // closed and drained
}

TEST(BoundedQueue, CloseWakesBlockedPoppers) {
    serve::BoundedQueue<int> queue(1);
    std::atomic<int> woke{0};
    std::vector<std::thread> poppers;
    for (int i = 0; i < 4; ++i)
        poppers.emplace_back([&] {
            while (queue.pop().has_value()) {
            }
            woke.fetch_add(1);
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.close();
    for (std::thread& t : poppers) t.join();
    EXPECT_EQ(woke.load(), 4);
}

// -------------------------------------------------------------- lane queue ----

TEST(LaneQueue, InteractiveLaneDrainsBeforeBatch) {
    serve::LaneQueue<int> queue(/*capacity=*/8, /*lanes=*/2, /*workers=*/1);
    ASSERT_TRUE(queue.try_push(10, /*lane=*/1, /*affinity=*/0)); // batch
    ASSERT_TRUE(queue.try_push(11, 1, 0));
    ASSERT_TRUE(queue.try_push(20, /*lane=*/0, 0)); // interactive, later
    EXPECT_EQ(queue.lane_depth(0), 1u);
    EXPECT_EQ(queue.lane_depth(1), 2u);

    auto first = queue.pop(0);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->item, 20); // pushed last, drained first
    EXPECT_EQ(first->lane, 0u);
    auto second = queue.pop(0);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->item, 10); // batch FIFO resumes
}

TEST(LaneQueue, AffinityPinsToWorkerSubQueue) {
    serve::LaneQueue<int> queue(8, 1, /*workers=*/2);
    // Affinity 0 → worker 0's sub-queue; affinity 1 → worker 1's.
    ASSERT_TRUE(queue.try_push(100, 0, /*affinity=*/0));
    ASSERT_TRUE(queue.try_push(200, 0, /*affinity=*/1));
    auto for_one = queue.pop(1);
    ASSERT_TRUE(for_one.has_value());
    EXPECT_EQ(for_one->item, 200); // own sub-queue wins over a steal
    EXPECT_FALSE(for_one->stolen);
    EXPECT_EQ(queue.steals(), 0u);
}

TEST(LaneQueue, IdleWorkerStealsFromLongestSibling) {
    serve::LaneQueue<int> queue(8, 1, /*workers=*/2);
    // Everything lands on worker 0; worker 1 must steal to stay busy.
    ASSERT_TRUE(queue.try_push(1, 0, 0));
    ASSERT_TRUE(queue.try_push(2, 0, 0));
    ASSERT_TRUE(queue.try_push(3, 0, 0));
    auto stolen = queue.pop(1);
    ASSERT_TRUE(stolen.has_value());
    EXPECT_EQ(stolen->item, 1); // the oldest, preserving FIFO fairness
    EXPECT_TRUE(stolen->stolen);
    EXPECT_EQ(queue.steals(), 1u);
    auto own = queue.pop(0);
    ASSERT_TRUE(own.has_value());
    EXPECT_EQ(own->item, 2);
    EXPECT_FALSE(own->stolen);
}

TEST(LaneQueue, CapacityIsSharedAcrossLanesAndCloseDrains) {
    serve::LaneQueue<int> queue(/*capacity=*/2, 2, 2);
    ASSERT_TRUE(queue.try_push(1, 0, 0));
    ASSERT_TRUE(queue.try_push(2, 1, 1));
    EXPECT_FALSE(queue.try_push(3, 0, 0)) << "one bound for all lanes";
    queue.close();
    EXPECT_FALSE(queue.try_push(4, 0, 0));
    EXPECT_TRUE(queue.pop(0).has_value());
    EXPECT_TRUE(queue.pop(0).has_value()); // steals across lanes on drain
    EXPECT_FALSE(queue.pop(0).has_value()); // closed + drained → exit signal
}

// ----------------------------------------------------------- cancellation ----

TEST(Cancel, TokenFlagAndDeadline) {
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    token.set_deadline_after(std::chrono::hours(1));
    EXPECT_FALSE(token.cancelled());
    token.cancel();
    EXPECT_TRUE(token.cancelled());

    CancelToken expired;
    expired.set_deadline_after(std::chrono::nanoseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(expired.cancelled());
}

TEST(Cancel, PollThrowsForFiredTokenOnly) {
    EXPECT_NO_THROW(poll_cancellation(nullptr));
    CancelToken token;
    EXPECT_NO_THROW(poll_cancellation(&token));
    token.cancel();
    EXPECT_THROW(poll_cancellation(&token), CancelledError);
}

TEST(Cancel, ScopeInstallsAmbientToken) {
    CancelToken token;
    token.cancel();
    EXPECT_NO_THROW(poll_cancellation()); // nothing installed
    {
        CancelScope scope(&token);
        EXPECT_EQ(current_cancel_token(), &token);
        EXPECT_THROW(poll_cancellation(), CancelledError);
    }
    EXPECT_EQ(current_cancel_token(), nullptr);
}

// --------------------------------------------------------------- protocol ----

TEST(Protocol, ParsesCompileRequestWithManifestFields) {
    const auto doc = json::parse(
        R"({"type":"compile","app":"nbody","mode":"uninformed",
            "budget":0.25,"threshold_x":2.5,"out":"x","deadline_ms":40})");
    ASSERT_TRUE(doc.has_value());
    serve::WireRequest request;
    EXPECT_FALSE(serve::parse_wire_request(*doc, request).has_value());
    EXPECT_EQ(request.type, serve::RequestType::Compile);
    EXPECT_EQ(request.compile.app, "nbody");
    EXPECT_EQ(request.compile.mode, "uninformed");
    EXPECT_DOUBLE_EQ(request.compile.budget, 0.25);
    EXPECT_DOUBLE_EQ(request.compile.threshold_x, 2.5);
    EXPECT_EQ(request.compile.out_dir, "x");
    EXPECT_EQ(request.compile.deadline_ms, 40);
}

TEST(Protocol, RejectsUnknownTypeMissingAppAndBadMode) {
    serve::WireRequest request;
    auto doc = json::parse(R"({"type":"frobnicate"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(serve::parse_wire_request(*doc, request).has_value());

    doc = json::parse(R"({"type":"compile"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(serve::parse_wire_request(*doc, request).has_value());

    doc = json::parse(R"({"type":"compile","app":"nbody","mode":"bogus"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(serve::parse_wire_request(*doc, request).has_value());
}

TEST(Protocol, ErrorResponseRoundTripsThroughParseResponse) {
    const json::Value error = serve::make_error_response(
        serve::ErrorKind::Overloaded, "queue full", /*retry_after_ms=*/250);
    const auto doc = json::parse(json::dump(error));
    ASSERT_TRUE(doc.has_value());
    const auto view = serve::parse_response(*doc);
    ASSERT_TRUE(view.has_value());
    EXPECT_FALSE(view->ok);
    EXPECT_EQ(view->error_kind, serve::ErrorKind::Overloaded);
    EXPECT_EQ(view->error, "queue full");
    EXPECT_EQ(view->retry_after_ms, 250);

    EXPECT_FALSE(serve::parse_response(json::Value::array()).has_value());
}

TEST(Protocol, SchemaVersionAbsentOrCurrentAcceptsFutureRejects) {
    serve::WireRequest request;
    // Absent = version 1 (pre-versioning clients keep working).
    auto doc = json::parse(R"({"type":"ping"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(serve::parse_wire_request(*doc, request).has_value());

    doc = json::parse(R"({"schema_version":1,"type":"ping"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(serve::parse_wire_request(*doc, request).has_value());

    doc = json::parse(R"({"schema_version":2,"type":"ping"})");
    ASSERT_TRUE(doc.has_value());
    auto error = serve::parse_wire_request(*doc, request);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(*error, "unsupported schema_version 2 (supported: 1)");

    // Non-numeric versions are rejected too, echoing the offending value.
    doc = json::parse(R"({"schema_version":"1","type":"ping"})");
    ASSERT_TRUE(doc.has_value());
    error = serve::parse_wire_request(*doc, request);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(*error, "unsupported schema_version \"1\" (supported: 1)");
}

TEST(Protocol, ResponsesStampTheSchemaVersion) {
    const json::Value docs[] = {
        serve::make_error_response(serve::ErrorKind::BadRequest, "nope",
                                   /*retry_after_ms=*/0),
        serve::make_pong_response(),
    };
    for (const json::Value& doc : docs) {
        const json::Value* version = doc.find("schema_version");
        ASSERT_NE(version, nullptr);
        EXPECT_DOUBLE_EQ(version->number_value,
                         double(serve::kSchemaVersion));
    }
}

TEST(Protocol, CompileRequestCarriesAValidatedInlineFlow) {
    const json::Value manifest =
        flow::to_manifest(flow::standard_flow(flow::Mode::Informed));
    json::Value doc = json::Value::object();
    doc.set("type", json::Value::string("compile"));
    doc.set("app", json::Value::string("nbody"));
    doc.set("flow", manifest);

    serve::WireRequest request;
    EXPECT_FALSE(serve::parse_wire_request(doc, request).has_value());
    EXPECT_EQ(request.compile.flow_json, json::dump(manifest));
}

TEST(Protocol, BrokenInlineFlowIsAParseErrorNotAMidRunFailure) {
    const auto doc = json::parse(
        R"({"type":"compile","app":"nbody",
            "flow":{"psaflow_manifest":1,"prologue":["no-such-task"]}})");
    ASSERT_TRUE(doc.has_value());
    serve::WireRequest request;
    const auto error = serve::parse_wire_request(*doc, request);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(*error,
              "flow manifest: $.prologue[0]: unknown task id "
              "'no-such-task'");

    const auto bad_shape = json::parse(
        R"({"type":"compile","app":"nbody","flow":7})");
    ASSERT_TRUE(bad_shape.has_value());
    const auto shape_error =
        serve::parse_wire_request(*bad_shape, request);
    ASSERT_TRUE(shape_error.has_value());
    EXPECT_EQ(*shape_error,
              "flow must be a manifest object or a file path");
}

TEST(Protocol, ParsesPriorityLane) {
    const auto batch = json::parse(
        R"({"type":"compile","app":"nbody","priority":"batch"})");
    ASSERT_TRUE(batch.has_value());
    serve::WireRequest request;
    EXPECT_FALSE(serve::parse_wire_request(*batch, request).has_value());
    EXPECT_EQ(request.compile.priority, serve::Priority::Batch);

    const auto implicit =
        json::parse(R"({"type":"compile","app":"nbody"})");
    ASSERT_TRUE(implicit.has_value());
    serve::WireRequest fresh;
    EXPECT_FALSE(serve::parse_wire_request(*implicit, fresh).has_value());
    EXPECT_EQ(fresh.compile.priority, serve::Priority::Interactive);

    const auto bogus = json::parse(
        R"({"type":"compile","app":"nbody","priority":"urgent"})");
    ASSERT_TRUE(bogus.has_value());
    serve::WireRequest rejected;
    EXPECT_TRUE(serve::parse_wire_request(*bogus, rejected).has_value());
}

TEST(Protocol, CasRequestsRoundTripKeysAndPayloads) {
    const auto get = json::parse(
        R"({"type":"cas_get","key":"00000000000000ff"})");
    ASSERT_TRUE(get.has_value());
    serve::WireRequest request;
    EXPECT_FALSE(serve::parse_wire_request(*get, request).has_value());
    EXPECT_EQ(request.type, serve::RequestType::CasGet);
    EXPECT_EQ(request.cas_key, 0xffu);

    // put carries the payload as base64; binary bytes survive.
    const std::string bytes = {'\x00', '\x01', '\xfe', 'z', 'z', '\n'};
    json::Value put = json::Value::object();
    put.set("type", json::Value::string("cas_put"));
    put.set("key", json::Value::string(hex_u64(0xdeadbeefULL)));
    put.set("payload", json::Value::string(base64_encode(bytes)));
    serve::WireRequest stored;
    EXPECT_FALSE(serve::parse_wire_request(put, stored).has_value());
    EXPECT_EQ(stored.type, serve::RequestType::CasPut);
    EXPECT_EQ(stored.cas_key, 0xdeadbeefULL);
    EXPECT_EQ(stored.cas_payload, bytes);

    // Malformed keys and payloads are parse errors, not crashes.
    const auto short_key =
        json::parse(R"({"type":"cas_get","key":"ff"})");
    ASSERT_TRUE(short_key.has_value());
    serve::WireRequest bad;
    EXPECT_TRUE(serve::parse_wire_request(*short_key, bad).has_value());
    const auto bad_b64 = json::parse(
        R"({"type":"cas_put","key":"00000000000000ff","payload":"!!"})");
    ASSERT_TRUE(bad_b64.has_value());
    EXPECT_TRUE(serve::parse_wire_request(*bad_b64, bad).has_value());

    // Response constructors: found carries the payload back, miss omits it.
    const json::Value hit = serve::make_cas_get_response(bytes);
    EXPECT_TRUE(hit.find("found")->bool_value);
    EXPECT_EQ(*base64_decode(hit.find("payload")->string_value), bytes);
    const json::Value miss = serve::make_cas_get_response(std::nullopt);
    EXPECT_FALSE(miss.find("found")->bool_value);
    EXPECT_EQ(miss.find("payload"), nullptr);
}

// -------------------------------------------------------------- wire trace ----

TEST(WireTrace, TraceMemberRoundTripsThroughRequestParse) {
    json::Value doc = json::Value::object();
    doc.set("type", json::Value::string("ping"));
    serve::WireTraceContext ctx;
    ctx.trace_id = 0xabcdef12u;
    ctx.parent_span = 42;
    serve::set_trace_member(doc, ctx);

    serve::WireRequest request;
    ASSERT_FALSE(serve::parse_wire_request(doc, request).has_value());
    EXPECT_TRUE(request.trace.traced());
    EXPECT_EQ(request.trace.trace_id, 0xabcdef12u);
    EXPECT_EQ(request.trace.parent_span, 42u);
}

TEST(WireTrace, UntracedContextLeavesTheDocumentUntouched) {
    json::Value doc = json::Value::object();
    serve::set_trace_member(doc, serve::WireTraceContext{});
    EXPECT_EQ(doc.find("trace"), nullptr);
}

TEST(WireTrace, MalformedTraceMemberDegradesToUntraced) {
    const auto doc = json::parse(
        R"({"type":"ping","trace":{"trace_id":"not-hex"}})");
    ASSERT_TRUE(doc.has_value());
    serve::WireRequest request;
    // Tolerant parse: a garbled trace context degrades to an untraced
    // request, it never fails an otherwise valid one.
    ASSERT_FALSE(serve::parse_wire_request(*doc, request).has_value());
    EXPECT_FALSE(request.trace.traced());
}

TEST(WireTrace, ResponseSpansRoundTrip) {
    std::vector<trace::Span> spans(2);
    spans[0].name = "root";
    spans[0].category = "serve";
    spans[0].id = 7;
    spans[0].parent = 3;
    spans[0].duration_us = 10;
    spans[1].name = "child";
    spans[1].id = 8;
    spans[1].parent = 7;
    spans[1].start_us = 2;
    spans[1].duration_us = 5;
    spans[1].work_units = 1.5;

    json::Value response = json::Value::object();
    serve::attach_response_trace(response, 0x77, spans);
    EXPECT_EQ(serve::response_trace_id(response), 0x77u);
    const std::vector<trace::Span> back =
        serve::response_trace_spans(response);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "root");
    EXPECT_EQ(back[0].category, "serve");
    EXPECT_EQ(back[0].id, 7u);
    EXPECT_EQ(back[0].parent, 3u);
    EXPECT_EQ(back[1].start_us, 2u);
    EXPECT_EQ(back[1].duration_us, 5u);
    EXPECT_EQ(back[1].work_units, 1.5);
}

TEST(WireTrace, NestSpansCentersChildrenInsideTheWrapperWindow) {
    std::vector<trace::Span> spans(1);
    spans[0].id = 2;
    spans[0].parent = 1;
    spans[0].start_us = 0;
    spans[0].duration_us = 10;
    trace::Span wrapper;
    wrapper.id = 1;
    wrapper.start_us = 100;
    wrapper.duration_us = 50;
    serve::nest_spans(spans, wrapper);

    ASSERT_EQ(spans.size(), 2u); // the wrapper itself is appended last
    const trace::Span& child = spans[0];
    const trace::Span& window = spans[1];
    EXPECT_EQ(window.id, 1u);
    EXPECT_EQ(child.start_us, 120u); // slack (50-10)/2 on each side
    EXPECT_GE(child.start_us, window.start_us);
    EXPECT_LE(child.start_us + child.duration_us,
              window.start_us + window.duration_us);
}

TEST(WireTrace, NestSpansStretchesTheWrapperOnClockSkew) {
    std::vector<trace::Span> spans(1);
    spans[0].id = 2;
    spans[0].start_us = 0;
    spans[0].duration_us = 80; // longer than the wrapper window
    trace::Span wrapper;
    wrapper.id = 1;
    wrapper.start_us = 100;
    wrapper.duration_us = 50;
    serve::nest_spans(spans, wrapper);

    ASSERT_EQ(spans.size(), 2u);
    EXPECT_GE(spans[1].duration_us, 80u);
    EXPECT_LE(spans[0].start_us + spans[0].duration_us,
              spans[1].start_us + spans[1].duration_us);
}

TEST(Protocol, ParsesFlightAndClusterRequestTypes) {
    serve::WireRequest request;
    const auto flight = json::parse(R"({"type":"flight","max":5})");
    ASSERT_TRUE(flight.has_value());
    ASSERT_FALSE(serve::parse_wire_request(*flight, request).has_value());
    EXPECT_EQ(request.type, serve::RequestType::Flight);
    EXPECT_EQ(request.flight_max, 5);

    const auto stats = json::parse(R"({"type":"cluster_stats"})");
    ASSERT_FALSE(serve::parse_wire_request(*stats, request).has_value());
    EXPECT_EQ(request.type, serve::RequestType::ClusterStats);

    const auto metrics = json::parse(R"({"type":"cluster_metrics"})");
    ASSERT_FALSE(serve::parse_wire_request(*metrics, request).has_value());
    EXPECT_EQ(request.type, serve::RequestType::ClusterMetrics);

    const auto bad = json::parse(R"({"type":"flight","max":-1})");
    EXPECT_TRUE(serve::parse_wire_request(*bad, request).has_value());
}

TEST(Protocol, FlightResponseCarriesRecorderStateAndRecords) {
    obs::FlightRecorder recorder(4);
    obs::FlightRecord record;
    record.trace_id = 0x99;
    record.total_us = 1234;
    record.set_app("nbody");
    record.set_status("ok");
    recorder.record(record);

    const json::Value response = serve::make_flight_response(recorder, 0);
    EXPECT_TRUE(response.find("ok")->bool_value);
    EXPECT_EQ(response.find("type")->string_or(""), "flight");
    EXPECT_EQ(response.find("schema_version")->number_or(0.0), 1.0);
    EXPECT_EQ(response.find("capacity")->number_or(0.0), 4.0);
    const json::Value* records = response.find("records");
    ASSERT_NE(records, nullptr);
    ASSERT_EQ(records->elements.size(), 1u);
    EXPECT_EQ(records->elements[0].find("app")->string_or(""), "nbody");
    EXPECT_EQ(records->elements[0].find("total_us")->number_or(0.0),
              1234.0);
}

TEST(Net, WriteFrameStatusDistinguishesOversizeFromTransport) {
    net::Fd a, b;
    ASSERT_TRUE(net::socket_pair(a, b));
    EXPECT_EQ(net::write_frame_status(a.get(), "ok"), net::WriteStatus::Ok);
    std::string echoed;
    ASSERT_EQ(net::read_frame(b.get(), echoed), net::FrameStatus::Ok);
    EXPECT_EQ(echoed, "ok");

    // An oversized payload is refused before any byte hits the wire.
    std::string oversized(net::kMaxFramePayload + 1, 'x');
    EXPECT_EQ(net::write_frame_status(a.get(), oversized),
              net::WriteStatus::TooLarge);
    // The peer saw nothing: the next frame reads back cleanly.
    EXPECT_EQ(net::write_frame_status(a.get(), "after"),
              net::WriteStatus::Ok);
    ASSERT_EQ(net::read_frame(b.get(), echoed), net::FrameStatus::Ok);
    EXPECT_EQ(echoed, "after");

    // A vanished peer is a transport error, not a silent true.
    b.reset();
    std::string big(1 << 20, 'y');
    net::WriteStatus gone = net::write_frame_status(a.get(), big);
    if (gone == net::WriteStatus::Ok) // kernel buffered the first frame
        gone = net::write_frame_status(a.get(), big);
    EXPECT_EQ(gone, net::WriteStatus::Error);
}

// --------------------------------------------------------------- executor ----

/// Scratch directory for one serve test, removed on destruction.
struct ScratchDir {
    fs::path path;
    explicit ScratchDir(const std::string& name) {
        // PID-suffixed so concurrently running test processes (ctest -j
        // spawns one per test) can never clobber each other's scratch
        // trees or live daemon sockets.
        path = fs::path(testing::TempDir()) /
               ("psaflow-serve-" + name + "-" + std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

TEST(ExecuteRequest, CompilesAndIsolatesPerRequestCounters) {
    ScratchDir dir("executor");
    flow::FlowSession session;

    serve::CompileRequest req;
    req.app = "adpredictor";
    req.out_dir = (dir.path / "one").string();
    const serve::CompileOutcome first = serve::execute_request(session, req);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_GT(first.design_count, 0u);
    EXPECT_FALSE(first.designs.empty());
    EXPECT_TRUE(fs::exists(first.summary_path));

    req.out_dir = (dir.path / "two").string();
    const serve::CompileOutcome second =
        serve::execute_request(session, req);
    ASSERT_TRUE(second.ok) << second.error;

    // Satellite regression: counters must be scoped to one request, not
    // accumulated across consecutive runs in the same process.
    EXPECT_EQ(first.counters.at("flow.runs"), 1u);
    EXPECT_EQ(second.counters.at("flow.runs"), 1u);
    EXPECT_GT(first.counters.at("interp.runs"), 0u);
}

TEST(ExecuteRequest, TracedRequestYieldsOneRootedHopTree) {
    ScratchDir dir("traced");
    flow::FlowSession session;
    serve::CompileRequest req;
    req.app = "adpredictor";
    req.out_dir = (dir.path / "out").string();

    serve::RequestTrace trace;
    trace.trace_id = 0xfeedu;
    trace.parent_span = 77; // the requester's span, not in this process
    trace.queue_wait_us = 500;
    const serve::CompileOutcome outcome = serve::execute_request(
        session, req, nullptr, nullptr, &trace);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    ASSERT_GE(outcome.spans.size(), 3u); // at least the synthesized hops

    // Exactly one span (serve:request) parents on the remote span; every
    // other parent resolves inside the returned set — the requester can
    // graft the whole thing under its own span and get a single tree.
    std::map<std::uint64_t, const trace::Span*> by_id;
    for (const trace::Span& span : outcome.spans) {
        EXPECT_NE(span.id, 0u) << span.name;
        EXPECT_TRUE(by_id.emplace(span.id, &span).second)
            << "duplicate id on " << span.name;
    }
    std::size_t roots = 0;
    const trace::Span* root = nullptr;
    for (const trace::Span& span : outcome.spans) {
        if (span.parent == 77) {
            ++roots;
            root = &span;
            continue;
        }
        EXPECT_TRUE(by_id.count(span.parent) == 1)
            << span.name << " has unresolved parent " << span.parent;
    }
    ASSERT_EQ(roots, 1u);
    EXPECT_EQ(root->name, "serve:request");
    EXPECT_EQ(root->start_us, 0u);

    bool saw_queue_wait = false, saw_execute = false;
    for (const trace::Span& span : outcome.spans) {
        if (span.name == "serve:queue-wait") {
            saw_queue_wait = true;
            EXPECT_EQ(span.duration_us, 500u);
            EXPECT_EQ(span.parent, root->id);
        }
        if (span.name == "serve:execute") {
            saw_execute = true;
            EXPECT_EQ(span.start_us, 500u); // starts after the queue wait
            EXPECT_EQ(span.parent, root->id);
        }
        // Timing containment: the root's window covers every hop.
        EXPECT_GE(span.start_us, root->start_us) << span.name;
        EXPECT_LE(span.start_us + span.duration_us,
                  root->start_us + root->duration_us)
            << span.name;
    }
    EXPECT_TRUE(saw_queue_wait);
    EXPECT_TRUE(saw_execute);
}

TEST(ExecuteRequest, UntracedRequestSynthesizesNoHopSpans) {
    ScratchDir dir("untraced");
    flow::FlowSession session;
    serve::CompileRequest req;
    req.app = "adpredictor";
    req.out_dir = (dir.path / "out").string();
    const serve::CompileOutcome outcome =
        serve::execute_request(session, req);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    for (const trace::Span& span : outcome.spans)
        EXPECT_NE(span.name, "serve:request");
}

TEST(ExecuteRequest, UnknownAppIsBadRequest) {
    ScratchDir dir("badapp");
    flow::FlowSession session;
    serve::CompileRequest req;
    req.app = "no_such_app";
    req.out_dir = (dir.path / "out").string();
    const serve::CompileOutcome outcome =
        serve::execute_request(session, req);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error_kind, serve::ErrorKind::BadRequest);
    EXPECT_NE(outcome.error.find("no_such_app"), std::string::npos);
}

TEST(ExecuteRequest, FiredTokenYieldsDeadlineExceeded) {
    ScratchDir dir("cancelled");
    flow::FlowSession session;
    serve::CompileRequest req;
    req.app = "adpredictor";
    req.out_dir = (dir.path / "out").string();

    CancelToken token;
    token.cancel();
    const serve::CompileOutcome outcome =
        serve::execute_request(session, req, &token);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error_kind, serve::ErrorKind::DeadlineExceeded);
    EXPECT_EQ(outcome.error.rfind("flow failed:", 0), 0u) << outcome.error;
}

TEST(ExecuteRequest, TightDeadlineCancelsColdCompile) {
    ScratchDir dir("deadline");
    flow::FlowSession session;
    serve::CompileRequest req;
    req.app = "rushlarsen"; // the slowest bundled app (~0.5 s cold)
    req.out_dir = (dir.path / "out").string();
    req.deadline_ms = 1;
    const serve::CompileOutcome outcome =
        serve::execute_request(session, req);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error_kind, serve::ErrorKind::DeadlineExceeded);

    // The session stays healthy for the next request (failure isolation).
    req.deadline_ms = 0;
    req.app = "adpredictor";
    const serve::CompileOutcome after = serve::execute_request(session, req);
    EXPECT_TRUE(after.ok) << after.error;
}

TEST(ExecuteRequest, ExportedStandardFlowMatchesTheBuiltin) {
    ScratchDir dir("manifestflow");
    flow::FlowSession session;

    serve::CompileRequest req;
    req.app = "adpredictor";
    req.out_dir = (dir.path / "builtin").string();
    const serve::CompileOutcome builtin =
        serve::execute_request(session, req);
    ASSERT_TRUE(builtin.ok) << builtin.error;

    req.out_dir = (dir.path / "manifest").string();
    req.flow_json = json::dump(
        flow::to_manifest(flow::standard_flow(flow::Mode::Informed)));
    const serve::CompileOutcome exported =
        serve::execute_request(session, req);
    ASSERT_TRUE(exported.ok) << exported.error;

    // The exported-and-reimported standard flow is the same program: same
    // designs with the same measurements, byte-identical sources on disk.
    ASSERT_EQ(exported.designs.size(), builtin.designs.size());
    for (std::size_t i = 0; i < builtin.designs.size(); ++i) {
        const serve::DesignRow& a = builtin.designs[i];
        const serve::DesignRow& b = exported.designs[i];
        EXPECT_EQ(b.name, a.name);
        EXPECT_EQ(b.device, a.device);
        EXPECT_EQ(b.speedup, a.speedup);

        std::ifstream fa(fs::path(builtin.summary_path).parent_path() /
                         a.filename);
        std::ifstream fb(fs::path(exported.summary_path).parent_path() /
                         b.filename);
        std::stringstream sa, sb;
        sa << fa.rdbuf();
        sb << fb.rdbuf();
        EXPECT_EQ(sb.str(), sa.str()) << a.filename;
    }
}

// ------------------------------------------------------------- daemon e2e ----

/// One request/response round trip against a daemon socket.
json::Value client_round_trip(const std::string& socket_path,
                              const std::string& request_json) {
    std::string error;
    net::Fd conn = net::connect_unix(socket_path, &error);
    EXPECT_TRUE(conn.valid()) << error;
    if (!conn.valid()) return json::Value::null();
    EXPECT_TRUE(net::write_frame(conn.get(), request_json));
    std::string payload;
    EXPECT_EQ(net::read_frame(conn.get(), payload), net::FrameStatus::Ok);
    auto doc = json::parse(payload, &error);
    EXPECT_TRUE(doc.has_value()) << error;
    return doc.has_value() ? *doc : json::Value::null();
}

/// A daemon on a scratch socket whose run() loop owns a background thread.
struct DaemonFixture {
    ScratchDir dir;
    serve::Daemon daemon;
    std::thread runner;

    explicit DaemonFixture(const std::string& name,
                           serve::DaemonOptions options = {})
        : dir(name), daemon([&] {
              options.socket_path = (dir.path / "d.sock").string();
              if (options.out_root == "designs")
                  options.out_root = (dir.path / "out").string();
              options.enable_test_endpoints = true;
              return options;
          }()) {}

    void start() {
        auto error = daemon.start();
        ASSERT_FALSE(error.has_value()) << *error;
        runner = std::thread([this] { daemon.run(); });
    }

    void drain() {
        daemon.notify_shutdown();
        if (runner.joinable()) runner.join();
    }

    ~DaemonFixture() { drain(); }

    [[nodiscard]] const std::string& socket() const {
        return daemon.options().socket_path;
    }
};

TEST(Daemon, ServesConcurrentCompilesIdenticalToDirectExecution) {
    DaemonFixture fixture("e2e", [] {
        serve::DaemonOptions options;
        options.workers = 4;
        return options;
    }());
    fixture.start();

    const std::vector<std::string> apps = {"adpredictor", "kmeans",
                                           "adpredictor", "kmeans",
                                           "adpredictor", "kmeans",
                                           "adpredictor", "kmeans"};
    std::vector<json::Value> responses(apps.size());
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < apps.size(); ++i)
        clients.emplace_back([&, i] {
            const std::string request =
                "{\"type\":\"compile\",\"app\":\"" + apps[i] +
                "\",\"out\":\"req-" + std::to_string(i) + "\"}";
            responses[i] = client_round_trip(fixture.socket(), request);
        });
    for (std::thread& t : clients) t.join();

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const json::Value* ok = responses[i].find("ok");
        ASSERT_NE(ok, nullptr) << "request " << i;
        EXPECT_TRUE(ok->bool_value) << json::dump(responses[i]);
        // Per-request metrics isolation across daemon workers too.
        const json::Value* counters = responses[i].find("counters");
        ASSERT_NE(counters, nullptr);
        const json::Value* runs = counters->find("flow.runs");
        ASSERT_NE(runs, nullptr);
        EXPECT_DOUBLE_EQ(runs->number_value, 1.0);
    }

    // Byte-identical to running the same request directly in-process.
    ScratchDir direct("e2e-direct");
    flow::FlowSession session;
    serve::CompileRequest req;
    req.app = "adpredictor";
    req.out_dir = (direct.path / "out").string();
    const serve::CompileOutcome outcome =
        serve::execute_request(session, req);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    for (const serve::DesignRow& row : outcome.designs) {
        const fs::path daemon_file =
            fs::path(fixture.daemon.options().out_root) / "req-0" /
            row.filename;
        ASSERT_TRUE(fs::exists(daemon_file)) << daemon_file;
        std::ifstream a(fs::path(req.out_dir) / row.filename);
        std::ifstream b(daemon_file);
        const std::string direct_bytes(
            (std::istreambuf_iterator<char>(a)),
            std::istreambuf_iterator<char>());
        const std::string daemon_bytes(
            (std::istreambuf_iterator<char>(b)),
            std::istreambuf_iterator<char>());
        EXPECT_EQ(direct_bytes, daemon_bytes) << row.filename;
    }

    fixture.drain();
    EXPECT_FALSE(fs::exists(fixture.socket()));
}

TEST(Daemon, FullQueueRejectsWithRetryHint) {
    DaemonFixture fixture("overload", [] {
        serve::DaemonOptions options;
        options.workers = 1;
        options.queue_depth = 1;
        return options;
    }());
    fixture.start();

    // Occupy the worker, then the single queue slot, with sleeps — staggered
    // so the first is already executing (not queued) when the second is
    // admitted — then poke.
    std::vector<std::thread> sleepers;
    for (int i = 0; i < 2; ++i) {
        sleepers.emplace_back([&] {
            (void)client_round_trip(fixture.socket(),
                                    R"({"type":"sleep","ms":800})");
        });
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    const json::Value response = client_round_trip(
        fixture.socket(), R"({"type":"sleep","ms":1})");
    const auto view = serve::parse_response(response);
    ASSERT_TRUE(view.has_value());
    EXPECT_FALSE(view->ok);
    EXPECT_EQ(view->error_kind, serve::ErrorKind::Overloaded);
    EXPECT_GT(view->retry_after_ms, 0);

    // Stats answer inline even while the worker is saturated.
    const json::Value stats =
        client_round_trip(fixture.socket(), R"({"type":"stats"})");
    const json::Value* requests = stats.find("requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_GE(requests->find("rejected_overload")->number_value, 1.0);

    for (std::thread& t : sleepers) t.join();
}

TEST(Daemon, DeadlineExpiredRequestDoesNotDisturbOthers) {
    DaemonFixture fixture("deadline", [] {
        serve::DaemonOptions options;
        options.workers = 2;
        return options;
    }());
    fixture.start();

    std::vector<json::Value> responses(3);
    std::vector<std::thread> clients;
    clients.emplace_back([&] {
        responses[0] = client_round_trip(
            fixture.socket(),
            R"({"type":"sleep","ms":500,"deadline_ms":30})");
    });
    clients.emplace_back([&] {
        responses[1] = client_round_trip(fixture.socket(),
                                         R"({"type":"sleep","ms":60})");
    });
    clients.emplace_back([&] {
        responses[2] = client_round_trip(
            fixture.socket(),
            R"({"type":"compile","app":"adpredictor","out":"iso"})");
    });
    for (std::thread& t : clients) t.join();

    const auto timed_out = serve::parse_response(responses[0]);
    ASSERT_TRUE(timed_out.has_value());
    EXPECT_FALSE(timed_out->ok);
    EXPECT_EQ(timed_out->error_kind, serve::ErrorKind::DeadlineExceeded);

    for (int i = 1; i < 3; ++i) {
        const auto view = serve::parse_response(responses[i]);
        ASSERT_TRUE(view.has_value());
        EXPECT_TRUE(view->ok) << json::dump(responses[static_cast<std::size_t>(i)]);
    }

    const json::Value stats =
        client_round_trip(fixture.socket(), R"({"type":"stats"})");
    const json::Value* requests = stats.find("requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_GE(requests->find("deadline_exceeded")->number_value, 1.0);
    EXPECT_GE(requests->find("completed")->number_value, 2.0);
}

TEST(Daemon, MalformedFramesGetStructuredErrors) {
    DaemonFixture fixture("malformed");
    fixture.start();

    // Invalid JSON in a well-formed frame: connection survives, the next
    // request on the same connection still works.
    std::string error;
    net::Fd conn = net::connect_unix(fixture.socket(), &error);
    ASSERT_TRUE(conn.valid()) << error;
    ASSERT_TRUE(net::write_frame(conn.get(), "{nope"));
    std::string payload;
    ASSERT_EQ(net::read_frame(conn.get(), payload), net::FrameStatus::Ok);
    auto doc = json::parse(payload);
    ASSERT_TRUE(doc.has_value());
    auto view = serve::parse_response(*doc);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->error_kind, serve::ErrorKind::BadRequest);

    ASSERT_TRUE(net::write_frame(conn.get(), R"({"type":"ping"})"));
    ASSERT_EQ(net::read_frame(conn.get(), payload), net::FrameStatus::Ok);
    doc = json::parse(payload);
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(doc->find("ok")->bool_value);

    // Garbage bytes (bad magic): structured complaint, then close.
    net::Fd conn2 = net::connect_unix(fixture.socket(), &error);
    ASSERT_TRUE(conn2.valid()) << error;
    const char junk[8] = {'x', 'x', 'x', 'x', 9, 9, 9, 9};
    ASSERT_TRUE(net::write_exact(conn2.get(), junk, sizeof junk));
    ASSERT_EQ(net::read_frame(conn2.get(), payload), net::FrameStatus::Ok);
    doc = json::parse(payload);
    ASSERT_TRUE(doc.has_value());
    view = serve::parse_response(*doc);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->error_kind, serve::ErrorKind::BadRequest);
    EXPECT_EQ(net::read_frame(conn2.get(), payload), net::FrameStatus::Eof);
}

TEST(Daemon, DrainFinishesAdmittedWorkAndRemovesSocket) {
    DaemonFixture fixture("drain", [] {
        serve::DaemonOptions options;
        options.workers = 1;
        return options;
    }());
    fixture.start();

    // Admit a slow job, then shut down while it is in flight: the client
    // must still get its response, and the socket file must disappear.
    json::Value response;
    std::thread client([&] {
        response = client_round_trip(fixture.socket(),
                                     R"({"type":"sleep","ms":150})");
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    fixture.drain();
    client.join();

    const auto view = serve::parse_response(response);
    ASSERT_TRUE(view.has_value());
    EXPECT_TRUE(view->ok);
    EXPECT_FALSE(fs::exists(fixture.socket()));
}

TEST(Daemon, ServesPrometheusMetricsAndRecentLogsOverTheSocket) {
    DaemonFixture fixture("obs-endpoints");
    fixture.start();

    // One compile so latency histograms and flow counters have samples, and
    // so the response's new decision_count member is exercised.
    const json::Value compile = client_round_trip(
        fixture.socket(),
        R"({"type":"compile","app":"adpredictor","out":"req"})");
    const json::Value* ok = compile.find("ok");
    ASSERT_NE(ok, nullptr);
    ASSERT_TRUE(ok->bool_value) << json::dump(compile);
    const json::Value* decision_count = compile.find("decision_count");
    ASSERT_NE(decision_count, nullptr);
    EXPECT_GE(decision_count->number_value, 1.0);

    const json::Value metrics =
        client_round_trip(fixture.socket(), R"({"type":"metrics"})");
    ASSERT_NE(metrics.find("ok"), nullptr);
    EXPECT_TRUE(metrics.find("ok")->bool_value) << json::dump(metrics);
    ASSERT_NE(metrics.find("content_type"), nullptr);
    EXPECT_EQ(metrics.find("content_type")->string_or(""),
              "text/plain; version=0.0.4");
    ASSERT_NE(metrics.find("body"), nullptr);
    const std::string body = metrics.find("body")->string_or("");
    EXPECT_NE(body.find("# TYPE psaflowd_requests_total counter"),
              std::string::npos);
    EXPECT_NE(body.find("psaflowd_requests_total{outcome=\"completed\"} 1"),
              std::string::npos);
    EXPECT_NE(body.find("# TYPE psaflowd_request_latency_us histogram"),
              std::string::npos);
    EXPECT_NE(body.find("psaflowd_request_latency_us_count 1"),
              std::string::npos);
    EXPECT_NE(body.find("psaflow_flow_decisions"), std::string::npos);
    EXPECT_NE(body.find("psaflowd_workers 2"), std::string::npos);

    const json::Value logs = client_round_trip(
        fixture.socket(), R"({"type":"logs","max":200})");
    ASSERT_NE(logs.find("ok"), nullptr);
    EXPECT_TRUE(logs.find("ok")->bool_value) << json::dump(logs);
    const json::Value* records = logs.find("records");
    ASSERT_NE(records, nullptr);
    ASSERT_TRUE(records->is_array());
    // The daemon logs its own startup; the ring is process-global, so just
    // require the listening line for *this* fixture's socket to be present.
    bool found_listening = false;
    for (const json::Value& record : records->elements) {
        const json::Value* message = record.find("message");
        const json::Value* line = record.find("line");
        ASSERT_NE(message, nullptr);
        ASSERT_NE(line, nullptr);
        if (message->string_or("") == "daemon listening" &&
            line->string_or("").find(fixture.socket()) != std::string::npos)
            found_listening = true;
    }
    EXPECT_TRUE(found_listening) << json::dump(logs);

    // A bad max is a structured bad_request, not a dropped connection.
    const json::Value bad = client_round_trip(
        fixture.socket(), R"({"type":"logs","max":-1})");
    const auto bad_view = serve::parse_response(bad);
    ASSERT_TRUE(bad_view.has_value());
    EXPECT_FALSE(bad_view->ok);
    EXPECT_EQ(bad_view->error_kind, serve::ErrorKind::BadRequest);
}

} // namespace
} // namespace psaflow
