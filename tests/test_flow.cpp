#include <gtest/gtest.h>

#include <algorithm>

#include "flow/engine.hpp"
#include "flow/session.hpp"
#include "flow/standard_flow.hpp"
#include "flow/strategy.hpp"
#include "flow/task_registry.hpp"
#include "flow/tasks.hpp"
#include "support/error.hpp"
#include "ast/printer.hpp"
#include "frontend/parser.hpp"
#include "meta/instrument.hpp"
#include "meta/query.hpp"
#include "interp/value.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::flow;

interp::Arg integer(long long v) { return interp::Value::of_int(v); }

// A small compute-bound app with a parallel outer loop and an inner
// reduction over a runtime bound — the Fig. 3 GPU profile.
const char* kGpuish = R"(
void work(int n, double* a, double* out) {
    for (int i = 0; i < n; i = i + 1) {
        double acc = 0.0;
        for (int j = 0; j < n; j = j + 1) {
            acc += exp(a[j] * 0.001) * a[i];
        }
        out[i] = acc;
    }
}

void run(int n, double* a, double* out) {
    work(n, a, out);
}
)";

analysis::Workload gpuish_workload(double eval_scale = 256.0) {
    analysis::Workload w;
    w.entry = "run";
    w.eval_scale = eval_scale;
    w.make_args = [](double scale) {
        const int n = static_cast<int>(32 * scale);
        auto a = std::make_shared<interp::Buffer>(
            ast::Type::Double, static_cast<std::size_t>(n), "a");
        auto out = std::make_shared<interp::Buffer>(
            ast::Type::Double, static_cast<std::size_t>(n), "out");
        for (int i = 0; i < n; ++i) a->store(i, 0.5 + 0.001 * i);
        return std::vector<interp::Arg>{integer(n), a, out};
    };
    return w;
}

FlowContext make_ctx(const char* src, analysis::Workload w,
                     const std::string& name = "test") {
    return FlowContext(name, frontend::parse_module(src, name), std::move(w));
}

// ---------------------------------------------------------------- fig 3 ----

TEST(Fig3Decide, MemoryBoundParallelGoesCpu) {
    Fig3Inputs in;
    in.transfer_seconds = 0.01;
    in.cpu_seconds = 1.0;
    in.flops_per_byte = 2.0; // < X
    in.threshold_x = 4.0;
    in.outer_parallel = true;
    EXPECT_EQ(fig3_decide(in), Fig3Choice::CpuOpenMp);
}

TEST(Fig3Decide, MemoryBoundSequentialTerminates) {
    Fig3Inputs in;
    in.transfer_seconds = 0.01;
    in.cpu_seconds = 1.0;
    in.flops_per_byte = 1.0;
    in.outer_parallel = false;
    EXPECT_EQ(fig3_decide(in), Fig3Choice::Terminate);
}

TEST(Fig3Decide, TransferDominatedNeverOffloads) {
    Fig3Inputs in;
    in.transfer_seconds = 2.0;
    in.cpu_seconds = 1.0;
    in.flops_per_byte = 100.0; // compute bound, but transfers eat the win
    in.outer_parallel = true;
    EXPECT_EQ(fig3_decide(in), Fig3Choice::CpuOpenMp);
}

TEST(Fig3Decide, ComputeBoundParallelGoesGpu) {
    Fig3Inputs in;
    in.transfer_seconds = 0.01;
    in.cpu_seconds = 1.0;
    in.flops_per_byte = 50.0;
    in.outer_parallel = true;
    EXPECT_EQ(fig3_decide(in), Fig3Choice::CpuGpu);
}

TEST(Fig3Decide, UnrollableDependentInnersGoFpga) {
    Fig3Inputs in;
    in.transfer_seconds = 0.01;
    in.cpu_seconds = 1.0;
    in.flops_per_byte = 50.0;
    in.outer_parallel = true;
    in.inner_loop_with_deps = true;
    in.inner_fully_unrollable = true;
    EXPECT_EQ(fig3_decide(in), Fig3Choice::CpuFpga);
}

TEST(Fig3Decide, NonUnrollableDependentInnersStayGpu) {
    Fig3Inputs in;
    in.transfer_seconds = 0.01;
    in.cpu_seconds = 1.0;
    in.flops_per_byte = 50.0;
    in.outer_parallel = true;
    in.inner_loop_with_deps = true;
    in.inner_fully_unrollable = false; // runtime bounds (N-Body)
    EXPECT_EQ(fig3_decide(in), Fig3Choice::CpuGpu);
}

TEST(Fig3Decide, SequentialOuterGoesFpga) {
    Fig3Inputs in;
    in.transfer_seconds = 0.01;
    in.cpu_seconds = 1.0;
    in.flops_per_byte = 50.0;
    in.outer_parallel = false;
    EXPECT_EQ(fig3_decide(in), Fig3Choice::CpuFpga);
}

// ---------------------------------------------------------------- context --

TEST(Context, ForkIsolatesModuleState) {
    auto ctx = make_ctx(kGpuish, gpuish_workload());
    for (const auto& task :
         {identify_hotspot_loops(), hotspot_loop_extraction()}) {
        task->run(ctx);
    }
    FlowContext forked = ctx.fork();

    // Mutate the fork; the original stays untouched.
    meta::add_pragma(forked.outer_loop(), "unroll 4");
    EXPECT_EQ(ast::to_source(ctx.module()).find("unroll 4"),
              std::string::npos);
    EXPECT_NE(ast::to_source(forked.module()).find("unroll 4"),
              std::string::npos);
    // The fork carries the spec and reference time.
    EXPECT_EQ(forked.spec.kernel_name, ctx.spec.kernel_name);
    EXPECT_DOUBLE_EQ(forked.reference_seconds(), ctx.reference_seconds());
}

TEST(Context, KernelAccessorsRequireExtraction) {
    auto ctx = make_ctx(kGpuish, gpuish_workload());
    EXPECT_THROW((void)ctx.kernel(), Error);
    identify_hotspot_loops()->run(ctx);
    hotspot_loop_extraction()->run(ctx);
    EXPECT_EQ(ctx.kernel().name, "test_kernel");
    EXPECT_NO_THROW((void)ctx.outer_loop());
}

// ------------------------------------------------------------------ tasks --

TEST(Tasks, HotspotExtractionPicksTheHotLoop) {
    auto ctx = make_ctx(kGpuish, gpuish_workload());
    identify_hotspot_loops()->run(ctx);
    EXPECT_EQ(ctx.hotspot_function, "work");
    EXPECT_GT(ctx.hotspot_fraction, 0.5);
    hotspot_loop_extraction()->run(ctx);
    // The extracted kernel contains the O(n^2) nest.
    EXPECT_EQ(meta::for_loops(ctx.kernel()).size(), 2u);
}

TEST(Tasks, PointerAnalysisRejectsAliasedKernels) {
    const char* aliased = R"(
void work(int n, double* a, double* b) {
    for (int i = 0; i < n; i = i + 1) {
        a[i] = b[i] * 2.0;
    }
}

void run(int n, double* a) {
    work(n, a, a);
}
)";
    analysis::Workload w;
    w.entry = "run";
    w.make_args = [](double scale) {
        const int n = static_cast<int>(16 * scale);
        return std::vector<interp::Arg>{
            integer(n),
            std::make_shared<interp::Buffer>(ast::Type::Double, 64, "a")};
    };
    auto ctx = make_ctx(aliased, w);
    identify_hotspot_loops()->run(ctx);
    hotspot_loop_extraction()->run(ctx);
    EXPECT_THROW(pointer_analysis()->run(ctx), Error);
}

TEST(Tasks, SpTasksRespectPrecisionSensitivity) {
    auto ctx = make_ctx(kGpuish, gpuish_workload());
    identify_hotspot_loops()->run(ctx);
    hotspot_loop_extraction()->run(ctx);
    ctx.allow_single_precision = false;
    employ_sp_math_fns()->run(ctx);
    employ_sp_numeric_literals()->run(ctx);
    EXPECT_FALSE(ctx.spec.single_precision);
    EXPECT_EQ(ast::to_source(ctx.kernel()).find("expf"), std::string::npos);

    ctx.allow_single_precision = true;
    employ_sp_math_fns()->run(ctx);
    EXPECT_TRUE(ctx.spec.single_precision);
    EXPECT_NE(ast::to_source(ctx.kernel()).find("expf"), std::string::npos);
}

TEST(Tasks, UnrollFixedLoopsFlattensSmallFixedInners) {
    const char* fixed_inner = R"(
void work(int n, double* a, double* out) {
    for (int i = 0; i < n; i = i + 1) {
        double s = 0.0;
        for (int j = 0; j < 4; j = j + 1) {
            s += a[i * 4 + j];
        }
        out[i] = s;
    }
}

void run(int n, double* a, double* out) {
    work(n, a, out);
}
)";
    analysis::Workload w;
    w.entry = "run";
    w.make_args = [](double scale) {
        const int n = static_cast<int>(16 * scale);
        return std::vector<interp::Arg>{
            integer(n),
            std::make_shared<interp::Buffer>(ast::Type::Double, 256, "a"),
            std::make_shared<interp::Buffer>(ast::Type::Double, 64, "out")};
    };
    auto ctx = make_ctx(fixed_inner, w);
    identify_hotspot_loops()->run(ctx);
    hotspot_loop_extraction()->run(ctx);
    unroll_fixed_loops()->run(ctx);
    // The fixed j-loop is gone; only the outer loop remains.
    EXPECT_EQ(meta::for_loops(ctx.kernel()).size(), 1u);
    EXPECT_NE(ast::to_source(ctx.kernel()).find("a[i * 4 + 3]"),
              std::string::npos);
}

TEST(Tasks, OmpDseInsertsFinalPragma) {
    auto ctx = make_ctx(kGpuish, gpuish_workload());
    identify_hotspot_loops()->run(ctx);
    hotspot_loop_extraction()->run(ctx);
    multi_thread_parallel_loops()->run(ctx);
    omp_num_threads_dse()->run(ctx);
    EXPECT_EQ(ctx.spec.omp_threads, 32);
    const std::string src = ast::to_source(ctx.kernel());
    EXPECT_NE(src.find("omp parallel for num_threads(32)"),
              std::string::npos);
    // The DSE replaced the provisional pragma rather than stacking one.
    EXPECT_EQ(ctx.outer_loop().pragmas.size(), 1u);
}

TEST(Tasks, RepositoryMatchesFig4Inventory) {
    const auto tasks = repository();
    EXPECT_EQ(tasks.size(), 25u); // Fig. 4's task list
    int analysis_count = 0;
    int dynamic_count = 0;
    for (const auto& t : tasks) {
        if (t->cls() == TaskClass::Analysis) ++analysis_count;
        if (t->dynamic()) ++dynamic_count;
    }
    EXPECT_EQ(analysis_count, 6);
    EXPECT_GE(dynamic_count, 8);
}

// ------------------------------------------------------------------ engine -

TEST(Engine, UninformedGeneratesFiveDesigns) {
    auto ctx = make_ctx(kGpuish, gpuish_workload());
    auto result =
        FlowSession().run(standard_flow(Mode::Uninformed), std::move(ctx));
    EXPECT_EQ(result.designs.size(), 5u);
    EXPECT_NE(result.find(codegen::TargetKind::CpuOpenMp,
                          platform::DeviceId::Epyc7543),
              nullptr);
    EXPECT_NE(result.find(codegen::TargetKind::CpuGpu,
                          platform::DeviceId::Gtx1080Ti),
              nullptr);
    EXPECT_NE(result.find(codegen::TargetKind::CpuGpu,
                          platform::DeviceId::Rtx2080Ti),
              nullptr);
    EXPECT_NE(result.find(codegen::TargetKind::CpuFpga,
                          platform::DeviceId::Arria10),
              nullptr);
    EXPECT_NE(result.find(codegen::TargetKind::CpuFpga,
                          platform::DeviceId::Stratix10),
              nullptr);
}

TEST(Engine, InformedGeneratesOneTargetFamily) {
    auto ctx = make_ctx(kGpuish, gpuish_workload());
    auto result =
        FlowSession().run(standard_flow(Mode::Informed), std::move(ctx));
    // GPU branch selected (compute-bound, parallel outer, runtime-bound
    // inner): two designs, one per GPU device.
    ASSERT_EQ(result.designs.size(), 2u);
    for (const auto& d : result.designs) {
        EXPECT_EQ(d.spec.target, codegen::TargetKind::CpuGpu);
        EXPECT_GT(d.spec.block_size, 0);
        EXPECT_GT(d.speedup, 1.0);
    }
}

TEST(Engine, DesignsCarrySourcesAndLocDeltas) {
    auto ctx = make_ctx(kGpuish, gpuish_workload());
    auto result =
        FlowSession().run(standard_flow(Mode::Uninformed), std::move(ctx));
    for (const auto& d : result.designs) {
        EXPECT_FALSE(d.source.empty());
        EXPECT_GT(d.loc_delta, 0.0);
    }
    // OMP adds less code than any accelerator design.
    const auto* omp = result.find(codegen::TargetKind::CpuOpenMp,
                                  platform::DeviceId::Epyc7543);
    for (const auto& d : result.designs) {
        if (&d == omp) continue;
        EXPECT_GT(d.loc_delta, omp->loc_delta);
    }
}

TEST(Engine, BudgetFeedbackRevisesSelection) {
    // Unconstrained, the informed flow picks the GPU. A budget below the
    // GPU run cost must push the selection to a cheaper target.
    auto baseline = FlowSession().run(standard_flow(Mode::Informed),
                                      make_ctx(kGpuish, gpuish_workload()));
    ASSERT_FALSE(baseline.designs.empty());
    ASSERT_EQ(baseline.designs[0].spec.target, codegen::TargetKind::CpuGpu);

    EngineOptions options;
    const double gpu_cost = options.cost_model.run_cost(
        codegen::TargetKind::CpuGpu, baseline.best()->hotspot_seconds);
    options.budget.max_run_cost = gpu_cost * 0.01;

    auto constrained = FlowSession().run(standard_flow(Mode::Informed),
                                         make_ctx(kGpuish, gpuish_workload()),
                                         options);
    ASSERT_FALSE(constrained.designs.empty());
    bool all_gpu = true;
    for (const auto& d : constrained.designs) {
        if (d.spec.target != codegen::TargetKind::CpuGpu) all_gpu = false;
    }
    EXPECT_FALSE(all_gpu); // feedback moved away from the GPU
}

TEST(Engine, BestSkipsUnsynthesizableDesigns) {
    FlowResult result;
    DesignArtifact bad;
    bad.synthesizable = false;
    bad.speedup = 0.0;
    DesignArtifact good;
    good.synthesizable = true;
    good.speedup = 5.0;
    result.designs.push_back(std::move(bad));
    result.designs.push_back(std::move(good));
    ASSERT_NE(result.best(), nullptr);
    EXPECT_DOUBLE_EQ(result.best()->speedup, 5.0);
}

TEST(Engine, EnergyModelRanksDevices) {
    CostModel model;
    const double second = 1.0;
    // Same runtime: the Arria10 is the most frugal device, the CPU socket
    // the hungriest.
    const double cpu = energy_joules(model, platform::DeviceId::Epyc7543,
                                     second);
    const double gpu = energy_joules(model, platform::DeviceId::Rtx2080Ti,
                                     second);
    const double a10 = energy_joules(model, platform::DeviceId::Arria10,
                                     second);
    const double s10 = energy_joules(model, platform::DeviceId::Stratix10,
                                     second);
    EXPECT_LT(a10, s10);
    EXPECT_LT(s10, cpu);
    EXPECT_LT(cpu, gpu);
    // Energy scales linearly with time.
    EXPECT_DOUBLE_EQ(
        energy_joules(model, platform::DeviceId::Arria10, 2.0), 2.0 * a10);
}

TEST(Strategy, CostFeedbackFallbackOrder) {
    // With the GPU excluded, a GPU-profiled kernel must fall back to the
    // FPGA path (the documented preference order), then to the CPU.
    auto run_excluding = [&](std::set<std::string> excluded) {
        auto ctx = make_ctx(kGpuish, gpuish_workload());
        DesignFlow flow = standard_flow(Mode::Informed);
        for (const TaskPtr& task : flow.prologue) task->run(ctx);
        auto strategy = informed_strategy(std::move(excluded));
        return strategy->select(ctx, *flow.branch);
    };
    const auto gpu_choice = run_excluding({});
    ASSERT_EQ(gpu_choice.size(), 1u);
    EXPECT_EQ(standard_flow(Mode::Informed).branch->paths[gpu_choice[0]].name,
              "gpu");

    const auto no_gpu = run_excluding({"gpu"});
    ASSERT_EQ(no_gpu.size(), 1u);
    EXPECT_EQ(standard_flow(Mode::Informed).branch->paths[no_gpu[0]].name,
              "fpga");

    const auto cpu_only = run_excluding({"gpu", "fpga"});
    ASSERT_EQ(cpu_only.size(), 1u);
    EXPECT_EQ(standard_flow(Mode::Informed).branch->paths[cpu_only[0]].name,
              "cpu");

    const auto nothing = run_excluding({"gpu", "fpga", "cpu"});
    EXPECT_TRUE(nothing.empty()); // terminate unmodified
}

TEST(Engine, CostModelPrices) {
    CostModel model;
    EXPECT_GT(model.run_cost(codegen::TargetKind::CpuGpu, 3600.0), 0.0);
    EXPECT_DOUBLE_EQ(model.run_cost(codegen::TargetKind::CpuGpu, 3600.0),
                     model.gpu_per_hour);
    EXPECT_LT(model.run_cost(codegen::TargetKind::CpuFpga, 100.0),
              model.run_cost(codegen::TargetKind::CpuGpu, 100.0));
}

// --------------------------------------------------------- task registry ----

TEST(TaskIds, StableSlugsFromDisplayNames) {
    EXPECT_EQ(identify_hotspot_loops()->id(), "identify-hotspot-loops");
    EXPECT_EQ(remove_array_plus_eq()->id(), "remove-array-dependency");
    // Device names fold into the slug, so each DSE variant is distinct.
    EXPECT_EQ(blocksize_dse(platform::DeviceId::Gtx1080Ti)->id(),
              "gtx-1080-ti-blocksize-dse");
    EXPECT_EQ(blocksize_dse(platform::DeviceId::Rtx2080Ti)->id(),
              "rtx-2080-ti-blocksize-dse");
    EXPECT_EQ(unroll_until_overmap_dse(platform::DeviceId::Arria10)->id(),
              "arria10-unroll-until-overmap-dse");
}

TEST(TaskRegistry, BuiltinsRegisteredAndSorted) {
    const auto ids = TaskRegistry::global().ids();
    EXPECT_EQ(ids.size(), 23u); // the full Fig. 4 repository
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    for (const auto& id : ids) {
        EXPECT_TRUE(TaskRegistry::global().contains(id)) << id;
        const auto task = TaskRegistry::global().make(id);
        ASSERT_NE(task, nullptr);
        EXPECT_EQ(task->id(), id); // make() and id() agree
    }
}

TEST(TaskRegistry, UnknownIdThrows) {
    EXPECT_FALSE(TaskRegistry::global().contains("no-such-task"));
    EXPECT_THROW((void)TaskRegistry::global().make("no-such-task"), Error);
}

TEST(TaskRegistry, StandardFlowAssembledFromRegisteredTasks) {
    // Every task the standard flows reference must resolve through the
    // registry: a task rename that forgets standard_flow breaks loudly here.
    for (const Mode mode : {Mode::Informed, Mode::Uninformed}) {
        const DesignFlow flow = standard_flow(mode);
        for (const TaskPtr& task : flow.prologue)
            EXPECT_TRUE(TaskRegistry::global().contains(task->id()))
                << task->id();
        for (const FlowPath& path : flow.branch->paths) {
            for (const TaskPtr& task : path.tasks)
                EXPECT_TRUE(TaskRegistry::global().contains(task->id()))
                    << task->id();
        }
    }
}

// ------------------------------------------------------------ FlowSession ----

TEST(Session, FreshSessionsProduceIdenticalResults) {
    // The session facade holds no hidden per-instance state: two
    // default-configured sessions yield byte-identical results.
    const DesignFlow flow = standard_flow(Mode::Uninformed);
    auto first = FlowSession().run(flow, make_ctx(kGpuish, gpuish_workload()));

    FlowSession session;
    auto second = session.run(flow, make_ctx(kGpuish, gpuish_workload()));

    ASSERT_EQ(second.designs.size(), first.designs.size());
    for (std::size_t i = 0; i < second.designs.size(); ++i) {
        EXPECT_EQ(second.designs[i].source, first.designs[i].source);
        EXPECT_EQ(second.designs[i].log, first.designs[i].log);
        EXPECT_EQ(second.designs[i].speedup, first.designs[i].speedup);
    }
}

TEST(Session, JobsDefaultFromSessionOptions) {
    SessionOptions options;
    options.jobs = 2;
    FlowSession session(options);
    const DesignFlow flow = standard_flow(Mode::Uninformed);
    auto parallel = session.run(flow, make_ctx(kGpuish, gpuish_workload()));

    auto sequential =
        FlowSession().run(flow, make_ctx(kGpuish, gpuish_workload()));
    ASSERT_EQ(parallel.designs.size(), sequential.designs.size());
    for (std::size_t i = 0; i < parallel.designs.size(); ++i) {
        EXPECT_EQ(parallel.designs[i].source, sequential.designs[i].source);
        EXPECT_EQ(parallel.designs[i].log, sequential.designs[i].log);
    }
}

} // namespace
} // namespace psaflow
