// Edge cases and randomised property tests for the language substrate:
// printer/parser round-trip algebra, a small random-program fuzzer, and
// interpreter corner behaviour.
#include <cmath>

#include <gtest/gtest.h>

#include "ast/builder.hpp"
#include "ast/clone.hpp"
#include "ast/printer.hpp"
#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "support/prng.hpp"
#include "support/string_util.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::ast;
using psaflow::testing::parse_and_check;

// -------------------------------------------------- precedence property ----

/// Evaluate a double-valued expression by wrapping it into a function.
double eval_expr(ExprPtr expr) {
    auto fn = std::make_unique<Function>();
    fn->ret = Type::Double;
    fn->name = "f";
    fn->body = build::block({});
    fn->body->stmts.push_back(build::ret(std::move(expr)));
    auto mod = std::make_unique<Module>();
    mod->functions.push_back(std::move(fn));

    auto types = sema::check(*mod);
    interp::Interpreter in(*mod, types);
    return in.call("f", {}).as_double();
}

class PrecedencePairs
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(PrecedencePairs, PrintParseRoundTripPreservesTreeShape) {
    // Build (a op1 b) op2 c and a op1 (b op2 c) explicitly, print them,
    // reparse, and check the reparsed tree evaluates identically — i.e.
    // the printer emitted exactly the parentheses the parser needs.
    const BinaryOp ops[] = {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul,
                            BinaryOp::Div};
    const auto [i, j, left_grouped] = GetParam();
    const BinaryOp op1 = ops[i];
    const BinaryOp op2 = ops[j];
    const double a = 7.5;
    const double b = -2.25;
    const double c = 3.0;

    ExprPtr tree;
    if (left_grouped) {
        tree = build::binary(
            op2,
            build::binary(op1, build::float_lit(a), build::float_lit(b)),
            build::float_lit(c));
    } else {
        tree = build::binary(
            op1, build::float_lit(a),
            build::binary(op2, build::float_lit(b), build::float_lit(c)));
    }
    const std::string printed = to_source(*tree);
    const double direct = eval_expr(clone_expr(*tree));
    const double reparsed = eval_expr(frontend::parse_expression(printed));
    EXPECT_DOUBLE_EQ(direct, reparsed) << printed;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PrecedencePairs,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4),
                                            ::testing::Bool()));

// --------------------------------------------------- random-program fuzz ---

/// Tiny generator of valid HLC functions: straight-line arithmetic over a
/// growing pool of scalar variables plus one array, wrapped in a loop.
std::string random_program(std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::string body;
    std::vector<std::string> vars = {"x0"};
    body += "        double x0 = a[i] + 1.5;\n";
    const int stmts = 3 + static_cast<int>(rng.next_below(8));
    for (int s = 1; s <= stmts; ++s) {
        const std::string& lhs_src =
            vars[rng.next_below(vars.size())];
        const std::string& rhs_src =
            vars[rng.next_below(vars.size())];
        const char* op = nullptr;
        switch (rng.next_below(4)) {
            case 0: op = "+"; break;
            case 1: op = "-"; break;
            case 2: op = "*"; break;
            default: op = "+"; break;
        }
        const std::string name = "x" + std::to_string(s);
        body += "        double " + name + " = " + lhs_src + " " + op + " " +
                rhs_src + " * " +
                format_compact(rng.uniform(-2.0, 2.0), 6) + ";\n";
        vars.push_back(name);
    }
    body += "        a[i] = " + vars.back() + ";\n";

    std::string src;
    src += "void f(int n, double* a) {\n";
    src += "    for (int i = 0; i < n; i = i + 1) {\n";
    src += body;
    src += "    }\n";
    src += "}\n";
    return src;
}

std::vector<double> run_random(const Module& mod) {
    auto types = sema::check(mod);
    auto a = std::make_shared<interp::Buffer>(Type::Double, 32, "a");
    for (int i = 0; i < 32; ++i) a->store(i, 0.1 * i - 1.0);
    interp::Interpreter in(mod, types);
    in.call("f", {interp::Value::of_int(32), a});
    return a->raw();
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RoundTripIsIdempotentOnRandomPrograms) {
    const std::string src = random_program(GetParam());
    const std::string once = testing::normalise(src);
    EXPECT_EQ(testing::normalise(once), once) << src;
}

TEST_P(FuzzSeeds, ReparsedProgramBehavesIdentically) {
    const std::string src = random_program(GetParam());
    auto original = frontend::parse_module(src, "f");
    auto reparsed = frontend::parse_module(to_source(*original), "f");
    EXPECT_EQ(run_random(*original), run_random(*reparsed)) << src;
}

TEST_P(FuzzSeeds, CloneBehavesIdentically) {
    const std::string src = random_program(GetParam());
    auto original = frontend::parse_module(src, "f");
    auto copy = clone_module(*original);
    EXPECT_EQ(run_random(*original), run_random(*copy)) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------- corner cases ---

TEST(EdgeCases, DeeplyNestedExpressionsParse) {
    std::string expr = "1.0";
    for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1.0)";
    auto e = frontend::parse_expression(expr);
    EXPECT_DOUBLE_EQ(eval_expr(std::move(e)), 201.0);
}

TEST(EdgeCases, LargeIntLiterals) {
    auto [mod, types] =
        parse_and_check("int f() { return 123456789012345; }");
    interp::Interpreter in(*mod, types);
    EXPECT_EQ(in.call("f", {}).as_int(), 123456789012345LL);
}

TEST(EdgeCases, NegativeArraySizeRejectedAtRuntime) {
    auto [mod, types] = parse_and_check(R"(
void f(int n) {
    double buf[n];
    buf[0] = 0.0;
}
)");
    interp::Interpreter in(*mod, types);
    EXPECT_THROW(in.call("f", {interp::Value::of_int(-4)}), Error);
}

TEST(EdgeCases, BufferElementTypeMismatchRejected) {
    auto [mod, types] = parse_and_check("void f(float* a) { a[0] = 1.0; }");
    auto wrong = std::make_shared<interp::Buffer>(Type::Double, 4, "a");
    interp::Interpreter in(*mod, types);
    EXPECT_THROW(in.call("f", {wrong}), Error);
}

TEST(EdgeCases, EntryArityMismatchRejected) {
    auto [mod, types] = parse_and_check("void f(int a, int b) { a = b; }");
    interp::Interpreter in(*mod, types);
    EXPECT_THROW(in.call("f", {interp::Value::of_int(1)}), Error);
}

TEST(EdgeCases, UnknownEntryRejected) {
    auto [mod, types] = parse_and_check("void f() { }");
    interp::Interpreter in(*mod, types);
    EXPECT_THROW(in.call("nope", {}), Error);
}

TEST(EdgeCases, ZeroTripLoopsAreFine) {
    auto [mod, types] = parse_and_check(R"(
int f(int n) {
    int count = 0;
    for (int i = 5; i < n; i = i + 1) {
        count = count + 1;
    }
    return count;
}
)");
    interp::Interpreter in(*mod, types);
    EXPECT_EQ(in.call("f", {interp::Value::of_int(3)}).as_int(), 0);
    EXPECT_EQ(in.call("f", {interp::Value::of_int(5)}).as_int(), 0);
    EXPECT_EQ(in.call("f", {interp::Value::of_int(6)}).as_int(), 1);
}

TEST(EdgeCases, RecursionWorksWithinStepBudget) {
    auto [mod, types] = parse_and_check(R"(
int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
)");
    interp::Interpreter in(*mod, types);
    EXPECT_EQ(in.call("fib", {interp::Value::of_int(15)}).as_int(), 610);
}

TEST(EdgeCases, PragmaOnlyAtStatementPositionSurvivesRoundTrip) {
    const char* src = "void f(int n, double* a) {\n"
                      "#pragma omp parallel for\n"
                      "#pragma unroll 2\n"
                      "    for (int i = 0; i < n; i = i + 1) {\n"
                      "        a[i] = 0.0;\n"
                      "    }\n"
                      "}\n";
    const std::string once = testing::normalise(src);
    EXPECT_EQ(testing::normalise(once), once);
    EXPECT_NE(once.find("#pragma omp parallel for"), std::string::npos);
    EXPECT_NE(once.find("#pragma unroll 2"), std::string::npos);
}

TEST(EdgeCases, FloatLiteralPrecisionSurvivesRoundTrip) {
    // A value with no short decimal representation must survive
    // parse -> print -> parse exactly (spelling preservation).
    const char* src = "double f() { return 0.1234567890123456789; }";
    auto mod1 = frontend::parse_module(src, "m");
    auto mod2 = frontend::parse_module(to_source(*mod1), "m");
    auto t1 = sema::check(*mod1);
    auto t2 = sema::check(*mod2);
    interp::Interpreter i1(*mod1, t1);
    interp::Interpreter i2(*mod2, t2);
    EXPECT_EQ(i1.call("f", {}).as_double(), i2.call("f", {}).as_double());
}

} // namespace
} // namespace psaflow
