#include <gtest/gtest.h>

#include "ast/builder.hpp"
#include "ast/clone.hpp"
#include "ast/printer.hpp"
#include "ast/walk.hpp"
#include "support/string_util.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::ast;
using testing::normalise;
using testing::parse;

const char* kSample = R"(
double dot(int n, double* a, double* b) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += a[i] * b[i];
    }
    return s;
}

void scale(int n, double* a, double f) {
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * f;
    }
}
)";

// ------------------------------------------------------------- printing ----

TEST(Printer, RoundTripIsIdempotent) {
    const std::string once = normalise(kSample);
    const std::string twice = normalise(once);
    EXPECT_EQ(once, twice);
}

TEST(Printer, PreservesPragmas) {
    const std::string out = normalise(kSample);
    EXPECT_NE(out.find("#pragma omp parallel for"), std::string::npos);
}

TEST(Printer, PreservesFloatSpelling) {
    const std::string out =
        normalise("void f(double* a) { a[0] = 0.5f + 1e-3; }");
    EXPECT_NE(out.find("0.5f"), std::string::npos);
    EXPECT_NE(out.find("1e-3"), std::string::npos);
}

TEST(Printer, ParenthesisesByPrecedence) {
    auto e = frontend::parse_expression("(a + b) * c");
    EXPECT_EQ(to_source(*e), "(a + b) * c");
    auto e2 = frontend::parse_expression("a + b * c");
    EXPECT_EQ(to_source(*e2), "a + b * c");
    auto e3 = frontend::parse_expression("a - (b - c)");
    EXPECT_EQ(to_source(*e3), "a - (b - c)");
    auto e4 = frontend::parse_expression("-(a + b)");
    EXPECT_EQ(to_source(*e4), "-(a + b)");
}

TEST(Printer, SynthesisedFloatLiteralsAreLexable) {
    auto lit = build::float_lit(2.0);
    EXPECT_EQ(to_source(*lit), "2.0");
    auto single = build::float_lit(0.5, /*single=*/true);
    EXPECT_EQ(to_source(*single), "0.5f");
}

// ----------------------------------------------------------------- walk ----

TEST(Walk, VisitsAllNodesPreOrder) {
    auto mod = parse(kSample);
    int functions = 0;
    int loops = 0;
    int idents = 0;
    walk(*mod, [&](Node& n) {
        if (n.kind() == NodeKind::Function) ++functions;
        if (n.kind() == NodeKind::For) ++loops;
        if (n.kind() == NodeKind::Ident) ++idents;
        return true;
    });
    EXPECT_EQ(functions, 2);
    EXPECT_EQ(loops, 2);
    EXPECT_GT(idents, 5);
}

TEST(Walk, StopsDescendingWhenCallbackReturnsFalse) {
    auto mod = parse(kSample);
    int idents = 0;
    walk(*mod, [&](Node& n) {
        if (n.kind() == NodeKind::Ident) ++idents;
        return n.kind() != NodeKind::For; // don't descend into loops
    });
    EXPECT_EQ(idents, 1); // only `s` in `return s;` lies outside any loop
}

TEST(Walk, CollectFiltersByType) {
    auto mod = parse(kSample);
    auto loops = collect<For>(*mod);
    ASSERT_EQ(loops.size(), 2u);
    EXPECT_EQ(loops[0]->var, "i");
}

TEST(ParentMapTest, FindsParents) {
    auto mod = parse(kSample);
    ParentMap parents(*mod);
    auto loops = collect<For>(*mod);
    auto* fn = parents.enclosing<Function>(*loops[0]);
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->name, "dot");
}

TEST(ParentMapTest, SlotOfLocatesStatementPosition) {
    auto mod = parse(kSample);
    ParentMap parents(*mod);
    auto loops = collect<For>(*mod);
    auto slot = parents.slot_of(*loops[0]);
    EXPECT_EQ(slot.index, 1u); // after `double s = 0.0;`
}

TEST(LoopDepth, CountsEnclosingLoops) {
    auto mod = parse("void f(int n) {"
                     " for (int i = 0; i < n; i++) {"
                     "  for (int j = 0; j < n; j++) { int x = 0; x = x + 1; }"
                     " } }");
    auto loops = collect<For>(*mod);
    ASSERT_EQ(loops.size(), 2u);
    EXPECT_EQ(loop_depth(*mod, *loops[0]), 0);
    EXPECT_EQ(loop_depth(*mod, *loops[1]), 1);
}

// ---------------------------------------------------------------- clone ----

TEST(Clone, ProducesIdenticalSource) {
    auto mod = parse(kSample);
    auto copy = clone_module(*mod);
    EXPECT_EQ(to_source(*mod), to_source(*copy));
}

TEST(Clone, IsDeep) {
    auto mod = parse(kSample);
    auto copy = clone_module(*mod);
    // Mutate the copy; the original must not change.
    auto loops = collect<For>(*copy);
    loops[0]->pragmas.push_back("unroll 8");
    EXPECT_EQ(to_source(*mod).find("unroll 8"), std::string::npos);
    EXPECT_NE(to_source(*copy).find("unroll 8"), std::string::npos);
}

TEST(Clone, AssignsFreshIds) {
    auto mod = parse(kSample);
    auto copy = clone_module(*mod);
    EXPECT_NE(mod->functions[0]->id, copy->functions[0]->id);
}

// -------------------------------------------------------------- builder ----

TEST(Builder, BuildsPrintableFragments) {
    using namespace build;
    auto loop = for_loop("i", int_lit(0), ident("n"),
                         block([] {
                             std::vector<StmtPtr> body;
                             body.push_back(assign(
                                 index("a", ident("i")),
                                 mul(index("b", ident("i")), float_lit(2.0))));
                             return body;
                         }()));
    const std::string src = to_source(*loop);
    EXPECT_NE(src.find("for (int i = 0; i < n; i = i + 1)"),
              std::string::npos);
    EXPECT_NE(src.find("a[i] = b[i] * 2.0;"), std::string::npos);
}

TEST(Builder, FragmentsReparse) {
    using namespace build;
    std::vector<StmtPtr> stmts;
    stmts.push_back(var_decl(Type::Double, "t", float_lit(1.5)));
    stmts.push_back(ret(ident("t")));
    auto body = block(std::move(stmts));

    auto fn = std::make_unique<Function>();
    fn->ret = Type::Double;
    fn->name = "f";
    fn->body = std::move(body);
    auto mod = std::make_unique<Module>();
    mod->functions.push_back(std::move(fn));

    const std::string src = to_source(*mod);
    EXPECT_EQ(normalise(src), src);
}

// ------------------------------------------------------------------ loc ----

TEST(Loc, CountsNonBlankPrintedLines) {
    auto mod = parse(kSample);
    const int loc = count_loc(to_source(*mod));
    EXPECT_EQ(loc, 13); // 2 signatures + bodies + braces + pragma
}

} // namespace
} // namespace psaflow
