// End-to-end error-path tests for the psaflowc driver: every malformed
// invocation must exit with status 2 and print the usage banner, never
// crash or silently proceed. The binary path comes from CMake
// ($<TARGET_FILE:psaflowc>), so the test always runs the freshly built
// driver.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace {

struct CliResult {
    int exit_code = -1;
    std::string output; ///< stdout and stderr, interleaved
};

CliResult run_cli(const std::string& flags) {
    const std::string cmd =
        std::string(PSAFLOW_PSAFLOWC_PATH) + " " + flags + " 2>&1";
    CliResult result;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) return result;
    std::array<char, 4096> buf{};
    std::size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        result.output.append(buf.data(), n);
    const int status = pclose(pipe);
    if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
    return result;
}

void expect_usage_error(const std::string& flags) {
    const CliResult r = run_cli(flags);
    EXPECT_EQ(r.exit_code, 2) << "flags: " << flags << "\n" << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos)
        << "flags: " << flags << "\n" << r.output;
}

TEST(Cli, NoArgumentsPrintsUsage) { expect_usage_error(""); }

TEST(Cli, UnknownFlagPrintsUsage) { expect_usage_error("--frobnicate"); }

TEST(Cli, MalformedJobsValue) {
    expect_usage_error("--app nbody --jobs abc");
}

TEST(Cli, NegativeJobsValue) {
    const CliResult r = run_cli("--app nbody --jobs -1");
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("--jobs must be >= 0"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(Cli, MalformedBudgetValue) {
    expect_usage_error("--app nbody --budget nope");
}

TEST(Cli, TraceOutMissingValue) {
    expect_usage_error("--app nbody --trace-out");
}

TEST(Cli, UnknownAppFails) {
    const CliResult r = run_cli("--app no_such_app");
    EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(Cli, ListSucceeds) {
    const CliResult r = run_cli("--list");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("nbody"), std::string::npos) << r.output;
}

} // namespace
