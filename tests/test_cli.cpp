// End-to-end error-path tests for the psaflowc driver: every malformed
// invocation must exit with status 2 and print the usage banner, never
// crash or silently proceed. The binary path comes from CMake
// ($<TARGET_FILE:psaflowc>), so the test always runs the freshly built
// driver.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include <sys/wait.h>

namespace {

struct CliResult {
    int exit_code = -1;
    std::string output; ///< stdout and stderr, interleaved
};

CliResult run_cli(const std::string& flags) {
    const std::string cmd =
        std::string(PSAFLOW_PSAFLOWC_PATH) + " " + flags + " 2>&1";
    CliResult result;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) return result;
    std::array<char, 4096> buf{};
    std::size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        result.output.append(buf.data(), n);
    const int status = pclose(pipe);
    if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
    return result;
}

void expect_usage_error(const std::string& flags) {
    const CliResult r = run_cli(flags);
    EXPECT_EQ(r.exit_code, 2) << "flags: " << flags << "\n" << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos)
        << "flags: " << flags << "\n" << r.output;
}

TEST(Cli, NoArgumentsPrintsUsage) { expect_usage_error(""); }

TEST(Cli, UnknownFlagPrintsUsage) { expect_usage_error("--frobnicate"); }

TEST(Cli, MalformedJobsValue) {
    expect_usage_error("--app nbody --jobs abc");
}

TEST(Cli, NegativeJobsValue) {
    const CliResult r = run_cli("--app nbody --jobs -1");
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("--jobs must be >= 0"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(Cli, MalformedBudgetValue) {
    expect_usage_error("--app nbody --budget nope");
}

TEST(Cli, TraceOutMissingValue) {
    expect_usage_error("--app nbody --trace-out");
}

TEST(Cli, UnknownAppFails) {
    const CliResult r = run_cli("--app no_such_app");
    EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(Cli, ListSucceeds) {
    const CliResult r = run_cli("--list");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("nbody"), std::string::npos) << r.output;
}

// ------------------------------------------------------------- batch mode ----

namespace fs = std::filesystem;

/// Scratch directory for one batch test, removed on destruction.
struct BatchDir {
    fs::path path;

    explicit BatchDir(const std::string& name) {
        path = fs::path(testing::TempDir()) / ("psaflowc-batch-" + name);
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~BatchDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    [[nodiscard]] fs::path write(const std::string& file,
                                 const std::string& text) const {
        const fs::path p = path / file;
        std::ofstream out(p);
        out << text;
        return p;
    }
};

std::string slurp(const fs::path& p) {
    std::ifstream in(p);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

TEST(CliBatch, MissingManifestFileFails) {
    const CliResult r = run_cli("--batch /no/such/manifest.json");
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(CliBatch, MalformedManifestFails) {
    BatchDir dir("malformed");
    const auto manifest = dir.write("manifest.json", "{\"requests\": [,]}");
    const CliResult r = run_cli("--batch " + manifest.string());
    EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(CliBatch, RequestWithoutAppFails) {
    BatchDir dir("noapp");
    const auto manifest =
        dir.write("manifest.json", R"({"requests": [{"mode": "informed"}]})");
    const CliResult r = run_cli("--batch " + manifest.string());
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("app"), std::string::npos) << r.output;
}

TEST(CliBatch, MatchesSingleAppRunByteForByte) {
    BatchDir dir("identity");
    const fs::path single_out = dir.path / "single";
    const fs::path batch_out = dir.path / "batch";
    const CliResult single = run_cli("--app adpredictor --out " +
                                     single_out.string());
    ASSERT_EQ(single.exit_code, 0) << single.output;

    const auto manifest = dir.write(
        "manifest.json",
        "{\"out\": \"" + batch_out.string() + "\", \"requests\": [{\"app\": "
        "\"adpredictor\"}]}");
    const CliResult batch = run_cli("--batch " + manifest.string());
    ASSERT_EQ(batch.exit_code, 0) << batch.output;
    EXPECT_NE(batch.output.find("1/1 request(s) succeeded"),
              std::string::npos)
        << batch.output;

    // Identical designs and summary, request output under <out>/<app>-<i>.
    const fs::path req_out = batch_out / "adpredictor-0";
    ASSERT_TRUE(fs::exists(req_out / "adpredictor-summary.csv"));
    for (const auto& entry : fs::directory_iterator(single_out)) {
        const fs::path batch_file = req_out / entry.path().filename();
        ASSERT_TRUE(fs::exists(batch_file)) << batch_file;
        EXPECT_EQ(slurp(entry.path()), slurp(batch_file))
            << entry.path().filename();
    }
}

TEST(CliBatch, FailedRequestIsIsolated) {
    BatchDir dir("isolated");
    const auto manifest = dir.write(
        "manifest.json",
        "{\"out\": \"" + (dir.path / "out").string() +
            "\", \"requests\": [{\"app\": \"adpredictor\"}, "
            "{\"app\": \"no_such_app\"}]}");
    const CliResult r = run_cli("--batch " + manifest.string());
    EXPECT_EQ(r.exit_code, 1) << r.output; // some requests failed
    EXPECT_NE(r.output.find("1/2 request(s) succeeded"), std::string::npos)
        << r.output;
    // The good request still produced its outputs.
    EXPECT_TRUE(
        fs::exists(dir.path / "out" / "adpredictor-0" /
                   "adpredictor-summary.csv"))
        << r.output;
}

TEST(CliBatch, WarmCacheRunIsIdentical) {
    BatchDir dir("warm");
    const fs::path cache = dir.path / "cache";
    const fs::path cold_out = dir.path / "cold";
    const fs::path warm_out = dir.path / "warm";
    const std::string common =
        "--app adpredictor --cache-dir " + cache.string() + " --out ";

    const CliResult cold = run_cli(common + cold_out.string());
    ASSERT_EQ(cold.exit_code, 0) << cold.output;
    const CliResult warm = run_cli(common + warm_out.string());
    ASSERT_EQ(warm.exit_code, 0) << warm.output;

    // Identical stdout up to the differing --out directory names.
    auto normalised = [](std::string text, const std::string& dir) {
        for (std::size_t pos = text.find(dir); pos != std::string::npos;
             pos = text.find(dir, pos))
            text.replace(pos, dir.size(), "<out>");
        return text;
    };
    EXPECT_EQ(normalised(cold.output, cold_out.string()),
              normalised(warm.output, warm_out.string()));

    for (const auto& entry : fs::directory_iterator(cold_out)) {
        const fs::path warm_file = warm_out / entry.path().filename();
        ASSERT_TRUE(fs::exists(warm_file)) << warm_file;
        EXPECT_EQ(slurp(entry.path()), slurp(warm_file))
            << entry.path().filename();
    }
}

TEST(CliBatch, CacheClearEmptiesTheStore) {
    BatchDir dir("clear");
    const fs::path cache = dir.path / "cache";
    const CliResult fill = run_cli("--app adpredictor --cache-dir " +
                                   cache.string() + " --out " +
                                   (dir.path / "out").string());
    ASSERT_EQ(fill.exit_code, 0) << fill.output;

    bool had_entries = false;
    for (const auto& entry : fs::recursive_directory_iterator(cache)) {
        if (entry.is_regular_file()) had_entries = true;
    }
    EXPECT_TRUE(had_entries);

    const CliResult clear =
        run_cli("--cache-clear --cache-dir " + cache.string());
    EXPECT_EQ(clear.exit_code, 0) << clear.output;
    for (const auto& entry : fs::recursive_directory_iterator(cache)) {
        EXPECT_FALSE(entry.is_regular_file()) << entry.path();
    }

    // --cache-clear without a configured cache directory is an error.
    const CliResult no_dir = run_cli("--cache-clear");
    EXPECT_EQ(no_dir.exit_code, 2) << no_dir.output;
}

} // namespace
