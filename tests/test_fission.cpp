#include <gtest/gtest.h>

#include "analysis/hotspot.hpp"
#include "apps/apps.hpp"
#include "ast/printer.hpp"
#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "meta/query.hpp"
#include "platform/devices.hpp"
#include "platform/fpga.hpp"
#include "transform/extract.hpp"
#include "transform/fission.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::transform;
using psaflow::testing::parse_and_check;

interp::Arg integer(long long v) { return interp::Value::of_int(v); }

const char* kSplittable = R"(
void knl(int n, double* a, double* b, double* out) {
    for (int i = 0; i < n; i = i + 1) {
        double x = a[i] * 2.0;
        double y = x + b[i];
        double z = y * y;
        out[i] = z + x;
    }
}

void host(int n, double* a, double* b, double* out) {
    knl(n, a, b, out);
}
)";

std::vector<double> run_host(const ast::Module& mod, int n) {
    auto types = sema::check(mod);
    auto a = std::make_shared<interp::Buffer>(ast::Type::Double, 64, "a");
    auto b = std::make_shared<interp::Buffer>(ast::Type::Double, 64, "b");
    auto out = std::make_shared<interp::Buffer>(ast::Type::Double, 64, "out");
    for (int i = 0; i < 64; ++i) {
        a->store(i, 0.5 * i);
        b->store(i, 3.0 - 0.25 * i);
    }
    interp::Interpreter in(mod, types);
    in.call("host", {integer(n), a, b, out});
    return out->raw();
}

TEST(Fission, SplitsIntoTwoPartsWithSpills) {
    auto [mod, types] = parse_and_check(kSplittable);
    auto result = split_kernel(*mod, types, "knl", 2);

    EXPECT_EQ(result.part1, "knl_part1");
    EXPECT_EQ(result.part2, "knl_part2");
    // x and y are declared before the cut; x and y are used after it.
    EXPECT_EQ(result.spilled, (std::vector<std::string>{"x", "y"}));

    EXPECT_EQ(mod->find_function("knl"), nullptr);
    ASSERT_NE(mod->find_function("knl_part1"), nullptr);
    ASSERT_NE(mod->find_function("knl_part2"), nullptr);

    const std::string src = ast::to_source(*mod);
    EXPECT_NE(src.find("double knl_x_spill[n];"), std::string::npos);
    EXPECT_NE(src.find("knl_part1(n, a, b, out, knl_x_spill, knl_y_spill);"),
              std::string::npos);
    EXPECT_NE(src.find("x_spill[i] = x;"), std::string::npos);
    EXPECT_NE(src.find("double x = x_spill[i];"), std::string::npos);

    // Still type checks.
    EXPECT_NO_THROW((void)sema::check(*mod));
}

TEST(Fission, PreservesBehaviour) {
    auto [reference, rtypes] = parse_and_check(kSplittable);
    for (std::size_t cut = 1; cut <= 3; ++cut) {
        auto [mod, types] = parse_and_check(kSplittable);
        (void)split_kernel(*mod, types, "knl", cut);
        EXPECT_EQ(run_host(*mod, 64), run_host(*reference, 64))
            << "cut=" << cut;
        EXPECT_EQ(run_host(*mod, 7), run_host(*reference, 7))
            << "cut=" << cut;
    }
}

TEST(Fission, RecursiveSplitQuartersTheKernel) {
    auto [reference, rtypes] = parse_and_check(kSplittable);
    auto [mod, types] = parse_and_check(kSplittable);
    (void)split_kernel(*mod, types, "knl", 2);
    auto types2 = sema::check(*mod);
    (void)split_kernel(*mod, types2, "knl_part1", 1);
    EXPECT_EQ(run_host(*mod, 64), run_host(*reference, 64));
}

TEST(Fission, RejectsSequentialLoops) {
    auto [mod, types] = parse_and_check(R"(
void knl(int n, double* a) {
    for (int i = 0; i < n; i = i + 1) {
        double x = a[i + 1];
        a[i] = x;
    }
}

void host(int n, double* a) {
    knl(n, a);
}
)");
    EXPECT_THROW((void)split_kernel(*mod, types, "knl", 1), Error);
}

TEST(Fission, RejectsBadCutIndices) {
    auto [mod, types] = parse_and_check(kSplittable);
    EXPECT_THROW((void)split_kernel(*mod, types, "knl", 0), Error);
    EXPECT_THROW((void)split_kernel(*mod, types, "knl", 99), Error);
    EXPECT_THROW((void)split_kernel(*mod, types, "nope", 1), Error);
}

TEST(Fission, BalancedCutSplitsAreaEvenly) {
    auto [mod, types] = parse_and_check(R"(
void knl(int n, double* a) {
    for (int i = 0; i < n; i = i + 1) {
        double h = exp(a[i]) + exp(a[i] * 2.0);
        a[i] = h + 1.0;
        a[i] = a[i] * 2.0;
        a[i] = a[i] + 3.0;
    }
}

void host(int n, double* a) {
    knl(n, a);
}
)");
    // The exp-heavy first statement dominates: the balanced cut lands
    // right after it.
    EXPECT_EQ(balanced_cut_point(*mod, types, "knl"), 1u);
}

TEST(Fission, RushLarsenBecomesSynthesizableOnStratix) {
    // The paper's future-work scenario: Rush Larsen overmaps both FPGAs at
    // unroll 1; after loop splitting, each half fits the Stratix10.
    const auto& app = apps::rush_larsen();
    auto mod = frontend::parse_module(app.source, app.name);
    auto types = sema::check(*mod);
    auto report = analysis::detect_hotspots(*mod, types, app.workload);
    transform::extract_hotspot(*mod, types, *report.top()->loop, "rl_kernel");
    types = sema::check(*mod);

    platform::FpgaModel s10(platform::stratix10());
    const auto whole = s10.report(*mod->find_function("rl_kernel"), types, 1);
    ASSERT_TRUE(whole.overmapped); // precondition: the paper's observation

    const std::size_t cut = balanced_cut_point(*mod, types, "rl_kernel");
    ASSERT_GT(cut, 0u);
    auto split = split_kernel(*mod, types, "rl_kernel", cut);
    types = sema::check(*mod);

    const auto p1 = s10.report(*mod->find_function(split.part1), types, 1);
    const auto p2 = s10.report(*mod->find_function(split.part2), types, 1);
    EXPECT_FALSE(p1.overmapped);
    EXPECT_FALSE(p2.overmapped);

    // And behaviour is preserved on the real workload.
    auto reference = frontend::parse_module(app.source, app.name);
    auto run_buffers = [&](const ast::Module& m) {
        auto t = sema::check(m);
        auto args = app.workload.make_args(1.0);
        interp::Interpreter in(m, t);
        in.call("run", args);
        std::vector<std::vector<double>> out;
        for (const auto& arg : args) {
            if (const auto* buf = std::get_if<interp::BufferPtr>(&arg))
                out.push_back((*buf)->raw());
        }
        return out;
    };
    EXPECT_EQ(run_buffers(*reference), run_buffers(*mod));
}

} // namespace
} // namespace psaflow
