// Property-based suites (parameterised over the five benchmark
// applications): printer round-trips, clone equivalence and semantic
// preservation of the source-to-source transforms, verified by interpreting
// original vs. transformed programs on the real workloads.
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/hotspot.hpp"
#include "apps/apps.hpp"
#include "ast/clone.hpp"
#include "ast/printer.hpp"
#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "meta/query.hpp"
#include "transform/extract.hpp"
#include "transform/single_precision.hpp"
#include "transform/unroll.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using apps::Application;

class PerApplication : public ::testing::TestWithParam<std::string> {
protected:
    const Application& app() const {
        return apps::application_by_name(GetParam());
    }

    /// Run `module` on the app's workload and return all buffer contents.
    std::vector<std::vector<double>>
    run_buffers(const ast::Module& module) const {
        auto types = sema::check(module);
        auto args = app().workload.make_args(1.0);
        interp::Interpreter in(module, types);
        in.call(app().workload.entry, args);
        std::vector<std::vector<double>> out;
        for (const auto& arg : args) {
            if (const auto* buf = std::get_if<interp::BufferPtr>(&arg))
                out.push_back((*buf)->raw());
        }
        return out;
    }

    /// Parse the app and extract its hotspot kernel.
    struct Extracted {
        ast::ModulePtr module;
        std::string kernel;
    };
    Extracted extracted() const {
        Extracted out;
        out.module = frontend::parse_module(app().source, app().name);
        auto types = sema::check(*out.module);
        auto report =
            analysis::detect_hotspots(*out.module, types, app().workload);
        out.kernel = app().name + "_kernel";
        transform::extract_hotspot(*out.module, types, *report.top()->loop,
                                   out.kernel);
        return out;
    }
};

TEST_P(PerApplication, PrinterRoundTripIsIdempotent) {
    const std::string once = testing::normalise(app().source);
    EXPECT_EQ(testing::normalise(once), once);
}

TEST_P(PerApplication, CloneBehavesIdentically) {
    auto module = frontend::parse_module(app().source, app().name);
    auto copy = ast::clone_module(*module);
    EXPECT_EQ(run_buffers(*module), run_buffers(*copy));
}

TEST_P(PerApplication, HotspotExtractionPreservesBehaviour) {
    auto reference = frontend::parse_module(app().source, app().name);
    auto ex = extracted();
    EXPECT_EQ(run_buffers(*reference), run_buffers(*ex.module));
}

TEST_P(PerApplication, OuterUnrollPreservesBehaviour) {
    auto reference = frontend::parse_module(app().source, app().name);
    auto ex = extracted();
    auto& kernel = *ex.module->find_function(ex.kernel);
    auto loops = meta::outermost_for_loops(kernel);
    ASSERT_FALSE(loops.empty());
    transform::unroll_loop(*ex.module, *loops.front(), 3);
    EXPECT_EQ(run_buffers(*reference), run_buffers(*ex.module));
}

TEST_P(PerApplication, FixedInnerLoopFullUnrollPreservesBehaviour) {
    auto reference = frontend::parse_module(app().source, app().name);
    auto ex = extracted();
    auto& kernel = *ex.module->find_function(ex.kernel);
    auto loops = meta::outermost_for_loops(kernel);
    ASSERT_FALSE(loops.empty());
    bool any = false;
    for (ast::For* inner : meta::inner_for_loops(*loops.front())) {
        if (meta::has_fixed_bounds(*inner) &&
            meta::constant_trip_count(*inner) <= 64) {
            transform::fully_unroll_loop(*ex.module, *inner);
            any = true;
            break; // pointers into the nest are stale after the rewrite
        }
    }
    if (!any) GTEST_SKIP() << "no fixed-bound inner loop in this kernel";
    EXPECT_EQ(run_buffers(*reference), run_buffers(*ex.module));
}

TEST_P(PerApplication, SinglePrecisionWithinTolerance) {
    if (!app().allow_single_precision)
        GTEST_SKIP() << "application is precision-sensitive";

    auto reference = frontend::parse_module(app().source, app().name);
    auto ex = extracted();
    transform::employ_single_precision(*ex.module->find_function(ex.kernel));

    const auto ref = run_buffers(*reference);
    const auto got = run_buffers(*ex.module);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t b = 0; b < ref.size(); ++b) {
        ASSERT_EQ(ref[b].size(), got[b].size());
        for (std::size_t i = 0; i < ref[b].size(); ++i) {
            const double scale = std::max(1.0, std::abs(ref[b][i]));
            EXPECT_NEAR(got[b][i], ref[b][i], 2e-4 * scale)
                << "buffer " << b << " element " << i;
        }
    }
}

TEST_P(PerApplication, WorkloadScalesAreExactlyRepresentable) {
    // The scaling-law fit assumes make_args(2s) doubles the problem size.
    auto a1 = app().workload.make_args(1.0);
    auto a2 = app().workload.make_args(2.0);
    // First scalar argument is the problem size in every benchmark.
    const auto n1 = std::get<interp::Value>(a1[0]).as_int();
    const auto n2 = std::get<interp::Value>(a2[0]).as_int();
    EXPECT_EQ(n2, 2 * n1);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PerApplication,
                         ::testing::Values("nbody", "kmeans", "adpredictor",
                                           "rushlarsen", "bezier"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Unroll-factor sweep on a synthetic kernel with awkward bounds.
// ---------------------------------------------------------------------------

class UnrollSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(UnrollSweep, ExactForAllFactorBoundStepCombos) {
    const auto [factor, n, step] = GetParam();
    std::string src = "void f(int n, double* buf) {\n"
                      "    for (int i = 1; i < n; i += " +
                      std::to_string(step) +
                      ") {\n"
                      "        buf[i] = buf[i] * 3.0 + buf[i - 1];\n"
                      "    }\n"
                      "}\n";
    auto run = [&](bool unrolled) {
        auto mod = frontend::parse_module(src, "f");
        if (unrolled) {
            auto loops = meta::outermost_for_loops(*mod->find_function("f"));
            transform::unroll_loop(*mod, *loops.front(), factor);
        }
        auto types = sema::check(*mod);
        auto buf = std::make_shared<interp::Buffer>(ast::Type::Double, 128,
                                                    "buf");
        for (int i = 0; i < 128; ++i) buf->store(i, 0.125 * i - 4.0);
        interp::Interpreter in(*mod, types);
        in.call("f", {interp::Value::of_int(n), buf});
        return buf->raw();
    };
    EXPECT_EQ(run(false), run(true));
}

INSTANTIATE_TEST_SUITE_P(
    Combos, UnrollSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(0, 1, 17, 64, 127),
                       ::testing::Values(1, 2, 3)));

} // namespace
} // namespace psaflow
