// Functional correctness of the five benchmark applications: each HLC
// source is executed by the interpreter on its workload and checked against
// domain invariants (and, where cheap, a C++ re-implementation).
#include <cmath>

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "sema/type_check.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::apps;

struct RunState {
    ast::ModulePtr mod;
    sema::TypeInfo types;
    std::vector<interp::Arg> args;
};

RunState run_app(const Application& app, double scale = 1.0) {
    RunState st;
    st.mod = frontend::parse_module(app.source, app.name);
    st.types = sema::check(*st.mod);
    st.args = app.workload.make_args(scale);
    interp::Interpreter in(*st.mod, st.types);
    in.call(app.workload.entry, st.args);
    return st;
}

const interp::BufferPtr& buffer_arg(const RunState& st, std::size_t index) {
    return std::get<interp::BufferPtr>(st.args[index]);
}

TEST(Apps, AllFiveParseAndCheck) {
    for (const Application* app : all_applications()) {
        EXPECT_NO_THROW({
            auto mod = frontend::parse_module(app->source, app->name);
            (void)sema::check(*mod);
        }) << app->name;
    }
}

TEST(Apps, RegistryIsComplete) {
    EXPECT_EQ(all_applications().size(), 5u);
    EXPECT_EQ(application_by_name("nbody").name, "nbody");
    EXPECT_THROW((void)application_by_name("doom"), Error);
}

TEST(Apps, WorkloadsAreDeterministic) {
    for (const Application* app : all_applications()) {
        auto a = app->workload.make_args(1.0);
        auto b = app->workload.make_args(1.0);
        ASSERT_EQ(a.size(), b.size()) << app->name;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const auto* ba = std::get_if<interp::BufferPtr>(&a[i]);
            const auto* bb = std::get_if<interp::BufferPtr>(&b[i]);
            if (ba == nullptr) continue;
            ASSERT_NE(bb, nullptr);
            EXPECT_EQ((*ba)->raw(), (*bb)->raw()) << app->name << " arg " << i;
        }
    }
}

// ---------------------------------------------------------------- N-Body ---

TEST(NBody, MomentumApproximatelyConserved) {
    // Symmetric pairwise forces: total momentum drift stays tiny relative
    // to the momentum scale (softening breaks exact antisymmetry).
    const auto& app = nbody();
    auto args = app.workload.make_args(1.0);
    auto mod = frontend::parse_module(app.source, app.name);
    auto types = sema::check(*mod);

    auto momentum = [&](const std::vector<interp::Arg>& a) {
        const auto& vx = std::get<interp::BufferPtr>(a[6]);
        const auto& m = std::get<interp::BufferPtr>(a[9]);
        double total = 0.0;
        for (std::size_t i = 0; i < vx->size(); ++i)
            total += vx->load(static_cast<long long>(i)) *
                     m->load(static_cast<long long>(i));
        return total;
    };

    const double before = momentum(args);
    interp::Interpreter in(*mod, types);
    in.call("run", args);
    const double after = momentum(args);
    EXPECT_NEAR(after, before, 1e-6 * 64.0);
}

TEST(NBody, ParticlesActuallyMove) {
    const auto& app = nbody();
    auto fresh = app.workload.make_args(1.0);
    auto st = run_app(app);
    const auto& px_before = std::get<interp::BufferPtr>(fresh[3]);
    const auto& px_after = buffer_arg(st, 3);
    bool moved = false;
    for (std::size_t i = 0; i < px_after->size(); ++i) {
        if (px_after->load(static_cast<long long>(i)) !=
            px_before->load(static_cast<long long>(i)))
            moved = true;
    }
    EXPECT_TRUE(moved);
}

// --------------------------------------------------------------- K-Means ---

TEST(KMeans, AssignmentsMatchNearestCentroid) {
    const auto& app = kmeans();
    auto st = run_app(app);
    // run() ends with an update pass, so the stored assignment reflects the
    // *previous* centroids. Run one more assignment pass against the final
    // centroids before checking the nearest-centroid invariant.
    {
        interp::Interpreter in(*st.mod, st.types);
        in.call("kmeans_assign",
                {st.args[0], st.args[1], st.args[2], st.args[4], st.args[5],
                 st.args[6]});
    }
    const auto& points = buffer_arg(st, 4);
    const auto& centroids = buffer_arg(st, 5);
    const auto& assignment = buffer_arg(st, 6);

    const int n = 256;
    const int k = 8;
    const int dim = 8;
    for (int i = 0; i < n; ++i) {
        double best = 1e300;
        int bestc = 0;
        for (int c = 0; c < k; ++c) {
            double dist = 0.0;
            for (int d = 0; d < dim; ++d) {
                const double diff = points->load(i * dim + d) -
                                    centroids->load(c * dim + d);
                dist += diff * diff;
            }
            if (dist < best) {
                best = dist;
                bestc = c;
            }
        }
        EXPECT_EQ(static_cast<int>(assignment->load(i)), bestc) << i;
    }
}

TEST(KMeans, CentroidsAreClusterMeans) {
    const auto& app = kmeans();
    auto st = run_app(app);
    const auto& points = buffer_arg(st, 4);
    const auto& centroids = buffer_arg(st, 5);
    const auto& assignment = buffer_arg(st, 6);

    const int n = 256;
    const int k = 8;
    const int dim = 8;
    std::vector<double> sums(static_cast<std::size_t>(k * dim), 0.0);
    std::vector<int> counts(static_cast<std::size_t>(k), 0);
    for (int i = 0; i < n; ++i) {
        const int c = static_cast<int>(assignment->load(i));
        ASSERT_GE(c, 0);
        ASSERT_LT(c, k);
        ++counts[static_cast<std::size_t>(c)];
        for (int d = 0; d < dim; ++d)
            sums[static_cast<std::size_t>(c * dim + d)] +=
                points->load(i * dim + d);
    }
    // NOTE: the final update ran after the last assignment, so centroids
    // equal the means of the *final* assignment.
    for (int c = 0; c < k; ++c) {
        if (counts[static_cast<std::size_t>(c)] == 0) continue;
        for (int d = 0; d < dim; ++d) {
            EXPECT_NEAR(centroids->load(c * dim + d),
                        sums[static_cast<std::size_t>(c * dim + d)] /
                            counts[static_cast<std::size_t>(c)],
                        1e-9);
        }
    }
}

// ----------------------------------------------------------- AdPredictor ---

TEST(AdPredictor, PredictionsAreProbabilities) {
    const auto& app = adpredictor();
    auto st = run_app(app);
    const auto& preds = buffer_arg(st, 5);
    for (std::size_t i = 0; i < preds->size(); ++i) {
        const double p = preds->load(static_cast<long long>(i));
        EXPECT_GE(p, 0.0) << i;
        EXPECT_LE(p, 1.0) << i;
    }
}

TEST(AdPredictor, PredictionsVaryAcrossImpressions) {
    const auto& app = adpredictor();
    auto st = run_app(app);
    const auto& preds = buffer_arg(st, 5);
    double lo = 1.0;
    double hi = 0.0;
    for (std::size_t i = 0; i < preds->size(); ++i) {
        lo = std::min(lo, preds->load(static_cast<long long>(i)));
        hi = std::max(hi, preds->load(static_cast<long long>(i)));
    }
    EXPECT_GT(hi - lo, 0.01); // not a constant function
}

// ------------------------------------------------------------ Rush Larsen --

TEST(RushLarsen, GatesStayInUnitInterval) {
    const auto& app = rush_larsen();
    auto st = run_app(app);
    const auto& gates = buffer_arg(st, 4);
    for (std::size_t i = 0; i < gates->size(); ++i) {
        const double g = gates->load(static_cast<long long>(i));
        EXPECT_TRUE(std::isfinite(g)) << i;
        EXPECT_GE(g, -0.1) << i;
        EXPECT_LE(g, 1.1) << i;
    }
}

TEST(RushLarsen, VoltagesStayFiniteAndPlausible) {
    const auto& app = rush_larsen();
    auto st = run_app(app);
    const auto& voltage = buffer_arg(st, 3);
    for (std::size_t i = 0; i < voltage->size(); ++i) {
        const double v = voltage->load(static_cast<long long>(i));
        EXPECT_TRUE(std::isfinite(v)) << i;
        EXPECT_GT(v, -200.0) << i;
        EXPECT_LT(v, 200.0) << i;
    }
}

// ---------------------------------------------------------------- Bezier ---

TEST(Bezier, CornersInterpolateControlPoints) {
    // A Bezier patch interpolates its corner control points: the (u=0,v=0)
    // sample equals control point (0,0), and (u=1,v=1) equals (m,m).
    const auto& app = bezier();
    auto st = run_app(app);
    const auto& cx = buffer_arg(st, 4);
    const auto& outx = buffer_arg(st, 7);

    const int nu = 8;
    const int nv = 8;
    const int m = 15;
    const int ctrl_stride = m + 1;
    EXPECT_NEAR(outx->load(0), cx->load(0), 1e-9);
    EXPECT_NEAR(outx->load(nu * nv - 1),
                cx->load(m * ctrl_stride + m), 1e-9);
}

TEST(Bezier, SurfaceWithinControlHull) {
    // Convex-combination property: every sample lies within the min/max of
    // the control net (Bernstein weights are a partition of unity).
    const auto& app = bezier();
    auto st = run_app(app);
    const auto& cy = buffer_arg(st, 5);
    const auto& outy = buffer_arg(st, 8);
    double lo = 1e300;
    double hi = -1e300;
    for (std::size_t i = 0; i < cy->size(); ++i) {
        lo = std::min(lo, cy->load(static_cast<long long>(i)));
        hi = std::max(hi, cy->load(static_cast<long long>(i)));
    }
    for (std::size_t i = 0; i < outy->size(); ++i) {
        const double v = outy->load(static_cast<long long>(i));
        EXPECT_GE(v, lo - 1e-9) << i;
        EXPECT_LE(v, hi + 1e-9) << i;
    }
}

} // namespace
} // namespace psaflow
