// Tests for the disk-backed content-addressed store (support/cas): key
// hashing, payload serialisation, frame integrity under corruption, LRU
// eviction, concurrent writers, and the profile-payload round trip that
// underpins warm-run byte-identity.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "analysis/profile_cache.hpp"
#include "interp/profile.hpp"
#include "support/cas/cas.hpp"

using namespace psaflow;
namespace fs = std::filesystem;

namespace {

/// Fresh store root under the gtest temp dir, removed on destruction.
struct TempRoot {
    fs::path path;

    explicit TempRoot(const std::string& name) {
        path = fs::path(testing::TempDir()) / ("psaflow-cas-" + name);
        fs::remove_all(path);
    }
    ~TempRoot() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/// All .cas entry files currently on disk under `root`.
std::vector<fs::path> entry_files(const fs::path& root) {
    std::vector<fs::path> out;
    if (!fs::exists(root)) return out;
    for (const auto& e : fs::recursive_directory_iterator(root)) {
        if (e.is_regular_file() && e.path().extension() == ".cas")
            out.push_back(e.path());
    }
    return out;
}

void rewrite_file(const fs::path& path, const std::string& blob) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

} // namespace

// ------------------------------------------------------------------ Hasher --

TEST(CasHasher, LengthPrefixPreventsConcatenationAliasing) {
    const auto a = cas::Hasher().str("ab").str("c").digest();
    const auto b = cas::Hasher().str("a").str("bc").digest();
    EXPECT_NE(a, b);
}

TEST(CasHasher, SeededWithEngineVersion) {
    // A default Hasher must already differ from the raw FNV offset basis:
    // keys may never alias across engine revisions.
    EXPECT_NE(cas::Hasher().digest(), 0xcbf29ce484222325ULL);
}

TEST(CasHasher, RealHashesBitPatterns) {
    const auto pos = cas::Hasher().real(0.0).digest();
    const auto neg = cas::Hasher().real(-0.0).digest();
    EXPECT_NE(pos, neg); // -0.0 and 0.0 are distinct inputs
    EXPECT_EQ(cas::Hasher().real(1.5).digest(),
              cas::Hasher().real(1.5).digest());
}

TEST(CasHasher, Deterministic) {
    const auto one =
        cas::Hasher().str("interp-profile").u64(7).boolean(true).digest();
    const auto two =
        cas::Hasher().str("interp-profile").u64(7).boolean(true).digest();
    EXPECT_EQ(one, two);
}

// --------------------------------------------------------- Writer / Reader --

TEST(CasPayload, WriterReaderRoundTrip) {
    cas::Writer w;
    w.u32(42);
    w.u64(0xdeadbeefcafef00dULL);
    w.i64(-17);
    w.boolean(true);
    w.real(-0.0);
    w.real(std::nan(""));
    w.str(std::string("hello\0world", 11)); // embedded NUL must survive
    w.str("");

    cas::Reader r(w.payload());
    EXPECT_EQ(r.u32(), 42u);
    EXPECT_EQ(r.u64(), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(r.i64(), -17);
    EXPECT_TRUE(r.boolean());
    const double neg_zero = r.real();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero)); // bit-exact, not value-equal
    EXPECT_TRUE(std::isnan(r.real()));
    EXPECT_EQ(r.str(), std::string("hello\0world", 11));
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.complete());
}

TEST(CasPayload, ReaderLatchesFailureOnTruncation) {
    cas::Writer w;
    w.u64(1);
    const std::string payload = w.payload();
    cas::Reader r(payload.substr(0, payload.size() - 1));
    (void)r.u64();
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.complete());
}

TEST(CasPayload, ReaderCompleteRequiresFullConsumption) {
    cas::Writer w;
    w.u32(1);
    w.u32(2);
    cas::Reader r(w.payload());
    EXPECT_EQ(r.u32(), 1u);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.complete()); // one u32 left unread
}

// ---------------------------------------------------------------- CasStore --

TEST(CasStore, PutGetRoundTrip) {
    TempRoot root("roundtrip");
    cas::CasStore store(root.path);
    store.put(0x1234, "payload-bytes");
    const auto got = store.get(0x1234);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "payload-bytes");
    EXPECT_EQ(store.stats().writes, 1u);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().misses, 0u);
}

TEST(CasStore, AbsentKeyIsMiss) {
    TempRoot root("miss");
    cas::CasStore store(root.path);
    EXPECT_FALSE(store.get(0x9999).has_value());
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST(CasStore, RemoteFetchIsReadThroughOnLocalMiss) {
    TempRoot root("remote-fetch");
    cas::CasStore store(root.path);
    int fetches = 0;
    store.set_remote(
        [&](std::uint64_t key) -> std::optional<std::string> {
            ++fetches;
            if (key == 0xabc) return std::string("from-peer");
            return std::nullopt;
        },
        /*publish=*/nullptr);

    // Local miss → remote hit → cached locally; the second get never
    // leaves the process.
    auto got = store.get(0xabc);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "from-peer");
    got = store.get(0xabc);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(fetches, 1) << "read-through should cache";

    // Remote miss stays a miss and is counted as one.
    EXPECT_FALSE(store.get(0xdef).has_value());
    EXPECT_EQ(fetches, 2);

    // get_local never consults the remote tier (the wire handlers use it
    // to serve peers without recursing).
    EXPECT_FALSE(store.get_local(0x123).has_value());
    EXPECT_EQ(fetches, 2);
}

TEST(CasStore, PutPublishesToRemoteBestEffort) {
    TempRoot root("remote-publish");
    cas::CasStore store(root.path);
    std::vector<std::uint64_t> published;
    store.set_remote(
        /*fetch=*/nullptr,
        [&](std::uint64_t key, std::string_view payload) {
            published.push_back(key);
            return payload.size() % 2 == 0; // alternate success/failure
        });
    store.put(1, "even");
    store.put(2, "odd--");
    ASSERT_EQ(published.size(), 2u);
    EXPECT_EQ(published[0], 1u);
    // A failed publish is invisible to the caller: both entries read back.
    EXPECT_TRUE(store.get_local(1).has_value());
    EXPECT_TRUE(store.get_local(2).has_value());
}

TEST(CasStore, PersistsAcrossReopen) {
    TempRoot root("reopen");
    {
        cas::CasStore store(root.path);
        store.put(7, "seven");
        store.put(8, "eight");
    }
    cas::CasStore reopened(root.path);
    EXPECT_EQ(reopened.size_bytes(), 2 * 40u + 5 + 5); // header + payload
    const auto seven = reopened.get(7);
    const auto eight = reopened.get(8);
    ASSERT_TRUE(seven.has_value());
    ASSERT_TRUE(eight.has_value());
    EXPECT_EQ(*seven, "seven");
    EXPECT_EQ(*eight, "eight");
}

TEST(CasStore, TruncatedEntryIsCorruptMissAndDeleted) {
    TempRoot root("truncated");
    cas::CasStore store(root.path);
    store.put(11, "some payload worth truncating");
    const auto files = entry_files(root.path);
    ASSERT_EQ(files.size(), 1u);
    const std::string blob = read_file(files[0]);
    rewrite_file(files[0], blob.substr(0, blob.size() / 2));

    EXPECT_FALSE(store.get(11).has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_FALSE(fs::exists(files[0])); // corrupt entries are removed
}

TEST(CasStore, BitFlippedPayloadFailsChecksum) {
    TempRoot root("bitflip");
    cas::CasStore store(root.path);
    store.put(12, "checksummed payload");
    const auto files = entry_files(root.path);
    ASSERT_EQ(files.size(), 1u);
    std::string blob = read_file(files[0]);
    blob[blob.size() - 1] ^= 0x40; // flip one payload bit
    rewrite_file(files[0], blob);

    EXPECT_FALSE(store.get(12).has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(files[0]));
}

TEST(CasStore, FormatVersionMismatchIsMiss) {
    TempRoot root("version");
    cas::CasStore store(root.path);
    store.put(13, "versioned payload");
    const auto files = entry_files(root.path);
    ASSERT_EQ(files.size(), 1u);
    std::string blob = read_file(files[0]);
    blob[8] = static_cast<char>(cas::CasStore::kFormatVersion + 1);
    rewrite_file(files[0], blob);

    EXPECT_FALSE(store.get(13).has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(CasStore, LruEvictionUnderSmallCap) {
    TempRoot root("lru");
    const std::string payload(100, 'x'); // 140 bytes per entry with header
    cas::CasStore store(root.path, /*max_bytes=*/3 * 140);
    store.put(1, payload);
    store.put(2, payload);
    store.put(3, payload);
    EXPECT_EQ(store.stats().evictions, 0u);

    // Touch 1 so 2 becomes the LRU entry, then overflow the cap.
    ASSERT_TRUE(store.get(1).has_value());
    store.put(4, payload);
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_LE(store.size_bytes(), store.max_bytes());

    EXPECT_FALSE(store.get(2).has_value()); // evicted
    EXPECT_TRUE(store.get(1).has_value());  // survived (recently used)
    EXPECT_TRUE(store.get(3).has_value());
    EXPECT_TRUE(store.get(4).has_value());
    EXPECT_EQ(entry_files(root.path).size(), 3u);
}

TEST(CasStore, ReputtingRefreshesRecencyWithoutGrowth) {
    TempRoot root("reput");
    const std::string payload(100, 'y');
    cas::CasStore store(root.path, /*max_bytes=*/2 * 140);
    store.put(1, payload);
    store.put(2, payload);
    store.put(1, payload); // refresh, not a new entry
    EXPECT_EQ(store.stats().evictions, 0u);
    store.put(3, payload); // now 2 is LRU and must go
    EXPECT_FALSE(store.get(2).has_value());
    EXPECT_TRUE(store.get(1).has_value());
    EXPECT_TRUE(store.get(3).has_value());
}

TEST(CasStore, ClearRemovesEverything) {
    TempRoot root("clear");
    cas::CasStore store(root.path);
    store.put(21, "a");
    store.put(22, "b");
    store.clear();
    EXPECT_EQ(store.size_bytes(), 0u);
    EXPECT_TRUE(entry_files(root.path).empty());
    EXPECT_FALSE(store.get(21).has_value());
}

TEST(CasStore, ConcurrentWritersAndReaders) {
    TempRoot root("concurrent");
    cas::CasStore store(root.path);
    constexpr int kThreads = 8;
    constexpr int kKeysPerThread = 16;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&store, t] {
            for (int k = 0; k < kKeysPerThread; ++k) {
                // Half the keys are shared across all threads (racing
                // writers of identical content), half are private.
                const bool shared = (k % 2) == 0;
                const std::uint64_t key =
                    shared ? static_cast<std::uint64_t>(1000 + k)
                           : static_cast<std::uint64_t>(2000 + t * 100 + k);
                const std::string payload =
                    "payload-" + std::to_string(key);
                store.put(key, payload);
                const auto got = store.get(key);
                ASSERT_TRUE(got.has_value());
                ASSERT_EQ(*got, payload);
            }
        });
    }
    for (auto& t : threads) t.join();

    // Every key is present with the exact bytes its writers agreed on.
    for (int k = 0; k < kKeysPerThread; k += 2) {
        const std::uint64_t key = static_cast<std::uint64_t>(1000 + k);
        const auto got = store.get(key);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, "payload-" + std::to_string(key));
    }
    EXPECT_EQ(store.stats().corrupt, 0u);
}

TEST(CasStore, ConfigureGlobalStore) {
    TempRoot root("global");
    cas::configure(root.path.string());
    ASSERT_NE(cas::store(), nullptr);
    EXPECT_EQ(cas::store()->root(), root.path);
    cas::store()->put(31, "via-global");
    const auto got = cas::store()->get(31);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "via-global");

    cas::configure(""); // disable again so later tests see no disk cache
    EXPECT_EQ(cas::store(), nullptr);
}

// -------------------------------------------------- profile payload codec --

namespace {

interp::ExecutionProfile sample_profile() {
    interp::ExecutionProfile p;
    interp::LoopStats outer;
    outer.entries = 1;
    outer.trips = 64;
    outer.cost = 1234.5;
    outer.self_cost = 12.25;
    outer.flops = 512.0;
    outer.mem_bytes = 4096.0;
    interp::LoopStats inner;
    inner.entries = 64;
    inner.trips = 4096;
    inner.cost = 1200.0;
    inner.self_cost = 1200.0;
    inner.flops = 500.0;
    inner.mem_bytes = 4000.0;
    p.loops[ast::Node::Id{57}] = outer;
    p.loops[ast::Node::Id{91}] = inner;
    p.total_cost = 1250.75;
    p.total_flops = 512.0;
    p.total_call_flops = 16.0;
    p.total_mem_bytes = 4096.0;
    p.focus_function = "kernel";
    p.focus_calls = 3;
    p.focus_cost = 1100.0;
    p.focus_flops = 480.0;
    p.focus_call_flops = 8.0;
    p.focus_mem_bytes = 3900.0;
    interp::BufferAccess buf;
    buf.buffer_name = "data";
    buf.elem_bytes = 8;
    buf.min_read = 0;
    buf.max_read = 63;
    buf.min_write = 1;
    buf.max_write = 62;
    buf.reads = 64;
    buf.writes = 62;
    p.focus_buffers.push_back(buf);
    p.focus_args_alias = true;
    return p;
}

} // namespace

TEST(ProfilePayload, RoundTripKeyedByPosition) {
    const auto profile = sample_profile();
    // The module's pre-order For order: node 57 first, node 91 second.
    const std::vector<ast::Node::Id> loop_order{ast::Node::Id{57},
                                                ast::Node::Id{91}};
    const std::string payload =
        analysis::serialize_profile_payload(profile, loop_order);

    interp::ExecutionProfile loaded;
    std::size_t loop_count = 0;
    ASSERT_TRUE(analysis::parse_profile_payload(payload, loaded, loop_count));
    EXPECT_EQ(loop_count, 2u);

    // Loaded stats are keyed by pre-order position, not original node id.
    const auto* outer = loaded.loop(ast::Node::Id{0});
    const auto* inner = loaded.loop(ast::Node::Id{1});
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->trips, 64);
    EXPECT_EQ(outer->cost, 1234.5);
    EXPECT_EQ(inner->entries, 64);
    EXPECT_EQ(inner->self_cost, 1200.0);

    EXPECT_EQ(loaded.total_cost, profile.total_cost);
    EXPECT_EQ(loaded.total_call_flops, profile.total_call_flops);
    EXPECT_EQ(loaded.focus_function, "kernel");
    EXPECT_EQ(loaded.focus_calls, 3);
    EXPECT_EQ(loaded.focus_mem_bytes, profile.focus_mem_bytes);
    ASSERT_EQ(loaded.focus_buffers.size(), 1u);
    EXPECT_EQ(loaded.focus_buffers[0].buffer_name, "data");
    EXPECT_EQ(loaded.focus_buffers[0].max_read, 63);
    EXPECT_EQ(loaded.focus_buffers[0].writes, 62);
    EXPECT_TRUE(loaded.focus_args_alias);
}

TEST(ProfilePayload, RejectsTruncatedPayload) {
    const std::string payload = analysis::serialize_profile_payload(
        sample_profile(), {ast::Node::Id{57}, ast::Node::Id{91}});
    interp::ExecutionProfile loaded;
    std::size_t loop_count = 0;
    EXPECT_FALSE(analysis::parse_profile_payload(
        std::string_view(payload).substr(0, payload.size() - 3), loaded,
        loop_count));
    EXPECT_FALSE(analysis::parse_profile_payload("", loaded, loop_count));
}

TEST(ProfilePayload, RejectsVersionMismatch) {
    std::string payload = analysis::serialize_profile_payload(
        sample_profile(), {ast::Node::Id{57}});
    payload[0] = static_cast<char>(payload[0] + 1); // bump the u32 version
    interp::ExecutionProfile loaded;
    std::size_t loop_count = 0;
    EXPECT_FALSE(analysis::parse_profile_payload(payload, loaded, loop_count));
}
