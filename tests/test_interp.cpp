#include <cmath>

#include <gtest/gtest.h>

#include "ast/walk.hpp"
#include "interp/interpreter.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::interp;
using psaflow::testing::parse_and_check;

Value num(double v) { return Value::of_double(v); }
Value integer(long long v) { return Value::of_int(v); }

TEST(Interp, EvaluatesArithmetic) {
    auto [mod, types] =
        parse_and_check("double f(double a, double b) { return a * b + 2.0; }");
    Interpreter in(*mod, types);
    EXPECT_DOUBLE_EQ(in.call("f", {num(3.0), num(4.0)}).as_double(), 14.0);
}

TEST(Interp, IntegerDivisionTruncates) {
    auto [mod, types] = parse_and_check("int f(int a, int b) { return a / b; }");
    Interpreter in(*mod, types);
    EXPECT_EQ(in.call("f", {integer(7), integer(2)}).as_int(), 3);
    EXPECT_EQ(in.call("f", {integer(-7), integer(2)}).as_int(), -3);
}

TEST(Interp, DivisionByZeroThrows) {
    auto [mod, types] = parse_and_check("int f(int a) { return a / 0; }");
    Interpreter in(*mod, types);
    EXPECT_THROW((void)in.call("f", {integer(1)}), InterpError);
}

TEST(Interp, LoopsAccumulate) {
    auto [mod, types] = parse_and_check(R"(
int sum_to(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += i;
    }
    return s;
}
)");
    Interpreter in(*mod, types);
    EXPECT_EQ(in.call("sum_to", {integer(10)}).as_int(), 45);
    EXPECT_EQ(in.call("sum_to", {integer(0)}).as_int(), 0);
}

TEST(Interp, WhileLoops) {
    auto [mod, types] = parse_and_check(R"(
int collatz_steps(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
    }
    return steps;
}
)");
    Interpreter in(*mod, types);
    EXPECT_EQ(in.call("collatz_steps", {integer(6)}).as_int(), 8);
}

TEST(Interp, BuffersReadAndWrite) {
    auto [mod, types] = parse_and_check(R"(
void saxpy(int n, float* y, float* x, float a) {
    for (int i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
    }
}
)");
    auto x = std::make_shared<Buffer>(ast::Type::Float, 4, "x");
    auto y = std::make_shared<Buffer>(ast::Type::Float, 4, "y");
    for (int i = 0; i < 4; ++i) {
        x->store(i, i + 1.0);
        y->store(i, 1.0);
    }
    Interpreter in(*mod, types);
    in.call("saxpy", {integer(4), y, x, Value::of_float(2.0)});
    EXPECT_FLOAT_EQ(static_cast<float>(y->load(0)), 3.0f);
    EXPECT_FLOAT_EQ(static_cast<float>(y->load(3)), 9.0f);
}

TEST(Interp, BufferOutOfBoundsThrows) {
    auto [mod, types] =
        parse_and_check("void f(double* a, int i) { a[i] = 1.0; }");
    auto buf = std::make_shared<Buffer>(ast::Type::Double, 4, "a");
    Interpreter in(*mod, types);
    EXPECT_THROW(in.call("f", {buf, integer(4)}), InterpError);
    EXPECT_THROW(in.call("f", {buf, integer(-1)}), InterpError);
}

TEST(Interp, LocalArrays) {
    auto [mod, types] = parse_and_check(R"(
double f(int n) {
    double tmp[8];
    for (int i = 0; i < n; i++) {
        tmp[i] = i * 2.0;
    }
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += tmp[i];
    }
    return s;
}
)");
    Interpreter in(*mod, types);
    EXPECT_DOUBLE_EQ(in.call("f", {integer(8)}).as_double(), 56.0);
}

TEST(Interp, UserFunctionCallsAndArrayPassing) {
    auto [mod, types] = parse_and_check(R"(
double dot(int n, double* a, double* b) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += a[i] * b[i];
    }
    return s;
}

double norm2(int n, double* a) {
    return dot(n, a, a);
}
)");
    auto a = std::make_shared<Buffer>(ast::Type::Double, 3, "a");
    a->store(0, 1.0);
    a->store(1, 2.0);
    a->store(2, 2.0);
    Interpreter in(*mod, types);
    EXPECT_DOUBLE_EQ(in.call("norm2", {integer(3), a}).as_double(), 9.0);
}

TEST(Interp, FloatArithmeticRoundsToSingle) {
    auto [mod, types] = parse_and_check(R"(
float f(float a, float b) { return a * b; }
double g(double a, double b) { return a * b; }
)");
    Interpreter in(*mod, types);
    const double a = 1.0000001;
    const double b = 1.0000003;
    const double ff =
        in.call("f", {Value::of_float(a), Value::of_float(b)}).as_double();
    const double gg = in.call("g", {num(a), num(b)}).as_double();
    EXPECT_EQ(ff, static_cast<double>(static_cast<float>(a) *
                                      static_cast<float>(b)));
    EXPECT_NE(ff, gg);
}

TEST(Interp, FloatBuffersRoundOnStore) {
    auto [mod, types] =
        parse_and_check("void f(float* a, double v) { a[0] = v; }");
    auto buf = std::make_shared<Buffer>(ast::Type::Float, 1, "a");
    Interpreter in(*mod, types);
    in.call("f", {buf, num(0.1)});
    EXPECT_EQ(buf->load(0), static_cast<double>(0.1f));
}

TEST(Interp, BuiltinCalls) {
    auto [mod, types] = parse_and_check(
        "double f(double x) { return exp(log(x)) + fmax(1.0, 2.0); }");
    Interpreter in(*mod, types);
    EXPECT_NEAR(in.call("f", {num(5.0)}).as_double(), 7.0, 1e-12);
}

TEST(Interp, ShortCircuitEvaluation) {
    // Division by zero on the rhs must not execute when lhs decides.
    auto [mod, types] = parse_and_check(R"(
bool f(int a) { return a > 0 || 1 / a > 0; }
)");
    Interpreter in(*mod, types);
    EXPECT_TRUE(in.call("f", {integer(3)}).as_bool());
    EXPECT_THROW((void)in.call("f", {integer(0)}), InterpError);
}

TEST(Interp, MaxStepsAborts) {
    auto [mod, types] = parse_and_check(R"(
void f() {
    int x = 0;
    while (0 < 1) {
        x = x + 1;
    }
}
)");
    InterpOptions opt;
    opt.max_steps = 10'000;
    Interpreter in(*mod, types, opt);
    EXPECT_THROW(in.call("f", {}), InterpError);
}

// ------------------------------------------------------------ profiling ----

TEST(Profile, LoopTripCounts) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* a) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 4; j++) {
            a[i] = a[i] + 1.0;
        }
    }
}
)");
    auto buf = std::make_shared<Buffer>(ast::Type::Double, 8, "a");
    auto run = run_function(*mod, types, "f", {integer(8), buf});

    auto loops = ast::collect<ast::For>(*mod);
    ASSERT_EQ(loops.size(), 2u);
    const auto* outer = run.profile.loop(loops[0]->id);
    const auto* inner = run.profile.loop(loops[1]->id);
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->entries, 1);
    EXPECT_EQ(outer->trips, 8);
    EXPECT_EQ(inner->entries, 8);
    EXPECT_EQ(inner->trips, 32);
    EXPECT_DOUBLE_EQ(inner->avg_trip_count(), 4.0);
}

TEST(Profile, CostAttributionNestsProperly) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* a) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * 2.0;
    }
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            a[i] = a[i] + a[j];
        }
    }
}
)");
    auto buf = std::make_shared<Buffer>(ast::Type::Double, 16, "a");
    auto run = run_function(*mod, types, "f", {integer(16), buf});

    auto loops = ast::collect<ast::For>(*mod);
    ASSERT_EQ(loops.size(), 3u);
    const auto* first = run.profile.loop(loops[0]->id);
    const auto* second = run.profile.loop(loops[1]->id);
    // The O(n^2) nest must dominate the O(n) loop.
    EXPECT_GT(second->cost, 4.0 * first->cost);
    // Total cost covers both loops.
    EXPECT_GE(run.profile.total_cost, first->cost + second->cost);
}

TEST(Profile, FlopsCountedOnlyForFloatingOps) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* a, int* idx) {
    for (int i = 0; i < n; i++) {
        idx[i] = i * 2;
        a[i] = a[i] * 2.0;
    }
}
)");
    auto a = std::make_shared<Buffer>(ast::Type::Double, 8, "a");
    auto idx = std::make_shared<Buffer>(ast::Type::Int, 8, "idx");
    auto run = run_function(*mod, types, "f", {integer(8), a, idx});
    // Exactly one double multiply per iteration.
    EXPECT_DOUBLE_EQ(run.profile.total_flops, 8.0);
}

TEST(Profile, FocusFunctionDataInOut) {
    auto [mod, types] = parse_and_check(R"(
void kernel(int n, double* in, double* out) {
    for (int i = 0; i < n; i++) {
        out[i] = in[i] * 2.0;
    }
}

void run(int n, double* in, double* out) {
    kernel(n, in, out);
}
)");
    auto in_buf = std::make_shared<Buffer>(ast::Type::Double, 32, "in");
    auto out_buf = std::make_shared<Buffer>(ast::Type::Double, 32, "out");
    InterpOptions opt;
    opt.focus_function = "kernel";
    auto run = run_function(*mod, types, "run",
                            {integer(32), in_buf, out_buf}, opt);

    EXPECT_EQ(run.profile.focus_calls, 1);
    EXPECT_FALSE(run.profile.focus_args_alias);
    const auto* in_acc = run.profile.buffer("in");
    const auto* out_acc = run.profile.buffer("out");
    ASSERT_NE(in_acc, nullptr);
    ASSERT_NE(out_acc, nullptr);
    EXPECT_EQ(in_acc->bytes_in(), 32 * 8);
    EXPECT_EQ(in_acc->bytes_out(), 0);
    EXPECT_EQ(out_acc->bytes_out(), 32 * 8);
    EXPECT_EQ(run.profile.focus_bytes_in(), 32 * 8);
    EXPECT_EQ(run.profile.focus_bytes_out(), 32 * 8);
}

TEST(Profile, AliasDetection) {
    auto [mod, types] = parse_and_check(R"(
void kernel(int n, double* a, double* b) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i];
    }
}

void run(int n, double* a) {
    kernel(n, a, a);
}
)");
    auto a = std::make_shared<Buffer>(ast::Type::Double, 8, "a");
    InterpOptions opt;
    opt.focus_function = "kernel";
    auto run = run_function(*mod, types, "run", {integer(8), a}, opt);
    EXPECT_TRUE(run.profile.focus_args_alias);
}

TEST(Profile, FocusCostIsSubsetOfTotal) {
    auto [mod, types] = parse_and_check(R"(
void kernel(int n, double* a) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * 3.0;
    }
}

void run(int n, double* a) {
    for (int i = 0; i < n; i++) {
        a[i] = i * 1.0;
    }
    kernel(n, a);
}
)");
    auto a = std::make_shared<Buffer>(ast::Type::Double, 64, "a");
    InterpOptions opt;
    opt.focus_function = "kernel";
    auto run = run_function(*mod, types, "run", {integer(64), a}, opt);
    EXPECT_GT(run.profile.focus_cost, 0.0);
    EXPECT_LT(run.profile.focus_cost, run.profile.total_cost);
}

} // namespace
} // namespace psaflow
