#include <gtest/gtest.h>

#include "analysis/characterize.hpp"
#include "analysis/dependence.hpp"
#include "analysis/hotspot.hpp"
#include "analysis/intensity.hpp"
#include "analysis/profile_cache.hpp"
#include "ast/clone.hpp"
#include "ast/walk.hpp"
#include "meta/query.hpp"
#include "test_util.hpp"

namespace psaflow {
namespace {

using namespace psaflow::analysis;
using namespace psaflow::ast;
using psaflow::testing::parse_and_check;

interp::Arg integer(long long v) { return interp::Value::of_int(v); }

// -------------------------------------------------------------- hotspot ----

TEST(Hotspot, RanksQuadraticNestAboveLinearLoop) {
    auto [mod, types] = parse_and_check(R"(
void app(int n, double* a) {
    for (int i = 0; i < n; i++) {
        a[i] = i * 1.0;
    }
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            a[i] = a[i] + a[j] * 0.5;
        }
    }
}
)");
    Workload w;
    w.entry = "app";
    w.make_args = [](double scale) {
        const int n = static_cast<int>(32 * scale);
        return std::vector<interp::Arg>{
            integer(n),
            std::make_shared<interp::Buffer>(Type::Double, 256, "a")};
    };
    auto report = detect_hotspots(*mod, types, w);
    ASSERT_EQ(report.candidates.size(), 2u);
    const auto* top = report.top();
    ASSERT_NE(top, nullptr);
    // The O(n^2) nest is the second outermost loop in the source.
    auto loops = meta::outermost_for_loops(*mod->find_function("app"));
    EXPECT_EQ(top->loop, loops[1]);
    EXPECT_GT(top->fraction, 0.8);
    EXPECT_EQ(top->trips, 32);
}

TEST(Hotspot, FindsLoopsInCalledFunctions) {
    auto [mod, types] = parse_and_check(R"(
void work(int n, double* a) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * 2.0 + 1.0;
    }
}

void app(int n, double* a) {
    for (int t = 0; t < 3; t++) {
        work(n, a);
    }
}
)");
    Workload w;
    w.entry = "app";
    w.make_args = [](double) {
        return std::vector<interp::Arg>{
            integer(64),
            std::make_shared<interp::Buffer>(Type::Double, 64, "a")};
    };
    auto report = detect_hotspots(*mod, types, w);
    // Candidates: the t-loop in app and the i-loop in work. Self-cost
    // attribution ranks the loop doing the work, not the driver loop
    // around the calls.
    ASSERT_EQ(report.candidates.size(), 2u);
    EXPECT_EQ(report.candidates[0].function->name, "work");
    EXPECT_GT(report.candidates[0].fraction, 0.5);
}

// ----------------------------------------------------------- dependence ----

const For& only_loop(const Module& mod, const std::string& fn) {
    auto loops =
        meta::outermost_for_loops(*mod.find_function(fn));
    EXPECT_EQ(loops.size(), 1u);
    return *loops[0];
}

TEST(Dependence, ElementwiseMapIsParallel) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* a, double* b) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] * 2.0;
    }
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_TRUE(info.parallel);
    EXPECT_TRUE(info.reductions.empty());
    EXPECT_TRUE(info.carried.empty());
}

TEST(Dependence, StridedLayoutIsParallel) {
    // K-Means point layout: points[i*dim + d].
    auto [mod, types] = parse_and_check(R"(
void f(int n, int dim, double* pts, double* out) {
    for (int i = 0; i < n; i++) {
        for (int d = 0; d < dim; d++) {
            out[i * dim + d] = pts[i * dim + d] * 0.5;
        }
    }
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_TRUE(info.parallel) << (info.carried.empty() ? "" : info.carried[0]);
}

TEST(Dependence, StencilOffsetIsCarried) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* a) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i + 1] * 0.5;
    }
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_FALSE(info.parallel);
    ASSERT_FALSE(info.carried.empty());
}

TEST(Dependence, ScalarSumIsReduction) {
    auto [mod, types] = parse_and_check(R"(
double f(int n, double* a) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += a[i];
    }
    return s;
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_TRUE(info.parallel);
    ASSERT_EQ(info.reductions.size(), 1u);
    EXPECT_EQ(info.reductions[0].var, "s");
    EXPECT_EQ(info.reductions[0].op, '+');
}

TEST(Dependence, ExplicitSumFormIsReduction) {
    auto [mod, types] = parse_and_check(R"(
double f(int n, double* a) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s = s + a[i];
    }
    return s;
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    ASSERT_EQ(info.reductions.size(), 1u);
    EXPECT_EQ(info.reductions[0].op, '+');
}

TEST(Dependence, ProductReduction) {
    auto [mod, types] = parse_and_check(R"(
double f(int n, double* a) {
    double p = 1.0;
    for (int i = 0; i < n; i++) {
        p *= a[i];
    }
    return p;
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    ASSERT_EQ(info.reductions.size(), 1u);
    EXPECT_EQ(info.reductions[0].op, '*');
}

TEST(Dependence, ReadOfAccumulatorBlocksReduction) {
    auto [mod, types] = parse_and_check(R"(
double f(int n, double* a) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += a[i];
        a[i] = s;
    }
    return s;
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_FALSE(info.parallel);
}

TEST(Dependence, PrivateScalarsDoNotBlock) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* a, double* b) {
    for (int i = 0; i < n; i++) {
        double best = 1e30;
        if (b[i] < best) {
            best = b[i];
        }
        a[i] = best;
    }
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_TRUE(info.parallel);
}

TEST(Dependence, HistogramIsArrayAccumulation) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, int* bin, double* hist) {
    for (int i = 0; i < n; i++) {
        hist[bin[i]] += 1.0;
    }
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_FALSE(info.parallel);
    ASSERT_EQ(info.array_accumulations.size(), 1u);
    EXPECT_EQ(info.array_accumulations[0], "hist");
}

TEST(Dependence, LoopInvariantIndexAccumulation) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, int k, double* a, double* out) {
    for (int i = 0; i < n; i++) {
        out[k] += a[i];
    }
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_FALSE(info.parallel);
    ASSERT_EQ(info.array_accumulations.size(), 1u);
}

TEST(Dependence, InductionVariableMutationIsCarried) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* a) {
    for (int i = 0; i < n; i++) {
        a[i] = 0.0;
        i = i + 1;
    }
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_FALSE(info.parallel);
}

TEST(Dependence, CallWritingArrayIsCarried) {
    auto [mod, types] = parse_and_check(R"(
void helper(int i, double* a) {
    a[i] = 1.0;
}

void f(int n, double* a) {
    for (int i = 0; i < n; i++) {
        helper(i, a);
    }
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_FALSE(info.parallel);
}

TEST(Dependence, PureCallIsFine) {
    auto [mod, types] = parse_and_check(R"(
double square(double x) {
    return x * x;
}

void f(int n, double* a) {
    for (int i = 0; i < n; i++) {
        a[i] = square(a[i]);
    }
}
)");
    auto info = analyze_dependence(*mod, only_loop(*mod, "f"));
    EXPECT_TRUE(info.parallel);
}

TEST(Dependence, InnerLoopAccumulatorSeenFromInnerLoop) {
    // AdPredictor shape: the inner fixed loop accumulates into a scalar
    // declared in the outer body — a reduction w.r.t. the *inner* loop.
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* w, double* out) {
    for (int i = 0; i < n; i++) {
        double s = 0.0;
        for (int j = 0; j < 12; j++) {
            s += w[j];
        }
        out[i] = s;
    }
}
)");
    auto outer_loops = meta::outermost_for_loops(*mod->find_function("f"));
    auto inner = meta::inner_for_loops(*outer_loops[0]);
    ASSERT_EQ(inner.size(), 1u);

    auto outer_info = analyze_dependence(*mod, *outer_loops[0]);
    EXPECT_TRUE(outer_info.parallel); // s is private to each i

    auto inner_info = analyze_dependence(*mod, *inner[0]);
    EXPECT_TRUE(inner_info.has_reductions()); // s accumulates across j
}

// -------------------------------------------------------------- intensity --

TEST(Intensity, CountsPerIterationWork) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* a, double* b) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] * 2.0 + 1.0;
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    auto si = static_intensity(*loops[0], types);
    EXPECT_TRUE(si.exact);
    EXPECT_DOUBLE_EQ(si.flops, 2.0);  // mul + add
    EXPECT_DOUBLE_EQ(si.bytes, 16.0); // read b[i], write a[i]
    EXPECT_DOUBLE_EQ(si.flops_per_byte(), 0.125);
}

TEST(Intensity, FixedInnerLoopsMultiply) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* a, double* w) {
    for (int i = 0; i < n; i++) {
        double s = 0.0;
        for (int j = 0; j < 8; j++) {
            s += w[j] * a[i];
        }
        a[i] = s;
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    auto si = static_intensity(*loops[0], types);
    EXPECT_TRUE(si.exact);
    // Per outer iteration: inner 8 * (mul + add) = 16 flops, plus final store.
    EXPECT_DOUBLE_EQ(si.flops, 16.0);
}

TEST(Intensity, BuiltinCallsWeighted) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, double* a) {
    for (int i = 0; i < n; i++) {
        a[i] = exp(a[i]);
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    auto si = static_intensity(*loops[0], types);
    EXPECT_DOUBLE_EQ(si.flops, 8.0); // exp weight
}

TEST(Intensity, UnknownBoundsFlagged) {
    auto [mod, types] = parse_and_check(R"(
void f(int n, int m, double* a) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < m; j++) {
            a[j] = a[j] + 1.0;
        }
    }
}
)");
    auto loops = meta::outermost_for_loops(*mod->find_function("f"));
    auto si = static_intensity(*loops[0], types);
    EXPECT_FALSE(si.exact);
}

// ---------------------------------------------------------- characterize ---

TEST(Characterize, FitsQuadraticScaling) {
    auto [mod, types] = parse_and_check(R"(
void kernel(int n, double* a) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            a[i] = a[i] + a[j] * 0.5;
        }
    }
}

void app(int n, double* a) {
    kernel(n, a);
}
)");
    Workload w;
    w.entry = "app";
    w.profile_scale = 1.0;
    w.make_args = [](double scale) {
        const int n = static_cast<int>(16 * scale);
        return std::vector<interp::Arg>{
            integer(n),
            std::make_shared<interp::Buffer>(Type::Double, 512, "a")};
    };
    auto ch = characterize_kernel(*mod, types, "kernel", w);

    EXPECT_NEAR(ch.flops.exponent, 2.0, 0.1);    // O(n^2) flops
    EXPECT_NEAR(ch.footprint.exponent, 1.0, 0.1); // O(n) data
    EXPECT_FALSE(ch.args_alias);
    EXPECT_EQ(ch.kernel_calls, 1);

    // Extrapolation: 4x the scale -> 16x the flops.
    EXPECT_NEAR(ch.flops.at(4.0) / ch.flops.at(1.0), 16.0, 2.0);
    // Arithmetic intensity grows with n for O(n^2)/O(n).
    EXPECT_GT(ch.flops_per_byte(8.0), ch.flops_per_byte(1.0));
}

TEST(Characterize, DetectsAliasedKernelArgs) {
    auto [mod, types] = parse_and_check(R"(
void kernel(int n, double* a, double* b) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] + 1.0;
    }
}

void app(int n, double* a) {
    kernel(n, a, a);
}
)");
    Workload w;
    w.entry = "app";
    w.make_args = [](double scale) {
        const int n = static_cast<int>(8 * scale);
        return std::vector<interp::Arg>{
            integer(n),
            std::make_shared<interp::Buffer>(Type::Double, 64, "a")};
    };
    auto ch = characterize_kernel(*mod, types, "kernel", w);
    EXPECT_TRUE(ch.args_alias);
}

TEST(Characterize, LoopTripLawsTrackProblemSize) {
    auto [mod, types] = parse_and_check(R"(
void kernel(int n, double* a) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 4; j++) {
            a[i] = a[i] + 1.0;
        }
    }
}

void app(int n, double* a) {
    kernel(n, a);
}
)");
    Workload w;
    w.entry = "app";
    w.make_args = [](double scale) {
        const int n = static_cast<int>(16 * scale);
        return std::vector<interp::Arg>{
            integer(n),
            std::make_shared<interp::Buffer>(Type::Double, 64, "a")};
    };
    auto ch = characterize_kernel(*mod, types, "kernel", w);
    ASSERT_EQ(ch.loops.size(), 2u);
    // Outer loop trips scale linearly; fixed inner loop does not scale.
    EXPECT_NEAR(ch.loops[0].trips_per_entry.exponent, 1.0, 0.05);
    EXPECT_NEAR(ch.loops[1].trips_per_entry.exponent, 0.0, 0.05);
    EXPECT_DOUBLE_EQ(ch.loops[1].trips_per_entry.base, 4.0);
}

TEST(Characterize, ThrowsWhenKernelNeverCalled) {
    auto [mod, types] = parse_and_check(R"(
void kernel(int n) { }
void app(int n) { }
)");
    Workload w;
    w.entry = "app";
    w.make_args = [](double) {
        return std::vector<interp::Arg>{integer(1)};
    };
    EXPECT_THROW((void)characterize_kernel(*mod, types, "kernel", w), Error);
}

// --------------------------------------------------------- profile cache ----

TEST(ProfileCache, RemapsLoopStatsOntoClonedNodeIds) {
    auto [mod, types] = parse_and_check(R"(
void run(int n, double* a) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 4; j++) {
            a[i] = a[i] * 2.0 + 1.0;
        }
    }
}
)");
    const auto make_args = [] {
        std::vector<interp::Arg> args;
        args.push_back(integer(6));
        args.emplace_back(
            std::make_shared<interp::Buffer>(Type::Double, 6, "a"));
        return args;
    };

    auto& cache = ProfileCache::global();
    cache.clear();
    const auto before = cache.stats();

    const auto first = cache.run(*mod, types, "run", make_args());
    EXPECT_EQ(cache.stats().misses, before.misses + 1);

    // A clone prints identically but all nodes carry fresh ids, so a naive
    // cache hit would hand back stats keyed by ids that do not occur in the
    // clone at all.
    auto clone = ast::clone_module(*mod);
    auto clone_types = sema::check(*clone);
    const auto second = cache.run(*clone, clone_types, "run", make_args());
    EXPECT_EQ(cache.stats().hits, before.hits + 1);

    const auto orig_loops = meta::for_loops(*mod);
    const auto clone_loops = meta::for_loops(*clone);
    ASSERT_EQ(orig_loops.size(), 2u);
    ASSERT_EQ(clone_loops.size(), 2u);
    for (std::size_t i = 0; i < clone_loops.size(); ++i) {
        ASSERT_NE(orig_loops[i]->id, clone_loops[i]->id);
        const auto* orig = first.loop(orig_loops[i]->id);
        const auto* remapped = second.loop(clone_loops[i]->id);
        ASSERT_NE(orig, nullptr);
        ASSERT_NE(remapped, nullptr) << "stats not remapped onto clone ids";
        EXPECT_EQ(remapped->entries, orig->entries);
        EXPECT_EQ(remapped->trips, orig->trips);
        EXPECT_DOUBLE_EQ(remapped->cost, orig->cost);
        EXPECT_DOUBLE_EQ(remapped->self_cost, orig->self_cost);
        // Stale original ids must not leak into the remapped profile.
        EXPECT_EQ(second.loop(orig_loops[i]->id), nullptr);
    }
    EXPECT_EQ(second.loops.size(), first.loops.size());
    EXPECT_DOUBLE_EQ(second.total_cost, first.total_cost);

    // The outer loop enters once and trips n times; the fixed inner loop
    // enters n times — a sanity anchor that the stats are the real ones.
    EXPECT_EQ(first.loop(orig_loops[0]->id)->entries, 1);
    EXPECT_EQ(first.loop(orig_loops[1]->id)->entries, 6);
    cache.clear();
}

} // namespace
} // namespace psaflow
